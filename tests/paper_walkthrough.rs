//! The complete paper walkthrough as one integration test: every figure
//! and listing of Sections 3–5, asserted structurally (see EXPERIMENTS.md
//! for the paper-vs-measured record).

use muml_integration::prelude::*;
use muml_integration::railcab::{
    correct_shuttle, distance_coordination, front_context, rear_inputs, rear_outputs, scenario,
};

#[test]
fn figure_1_pattern_verifies() {
    let u = Universe::new();
    let pattern = distance_coordination(&u);
    let report = verify_pattern(&pattern).expect("checkable");
    assert!(report.ok(), "{:?}", report.violation.map(|c| c.description));
    // constraint + two role invariants + deadlock freedom were checked
    assert_eq!(report.properties.len(), 4);
}

#[test]
fn figure_3_chaotic_automaton_over_rear_interface() {
    let u = Universe::new();
    let mc = chaotic_automaton(&u, "chaos", rear_inputs(&u), rear_outputs(&u), None);
    assert_eq!(mc.state_count(), 2);
    // s_∀ accepts every interaction (2^6 member labels on each edge)
    let s_all = mc.find_state("s_all").unwrap();
    assert_eq!(mc.transitions_from(s_all).len(), 2);
    let s_delta = mc.find_state("s_delta").unwrap();
    assert!(mc.is_deadlock(s_delta));
}

#[test]
fn figure_4_initial_synthesis() {
    let u = Universe::new();
    let (m0, a0) = scenario::fig4_initial(&u);
    assert_eq!(m0.state_count(), 1);
    assert_eq!(m0.transition_count(), 0);
    assert_eq!(a0.state_count(), 4);
    // Lemma 4 / Theorem 1: the real shuttle refines the initial abstraction
    // (checked prop-free on both sides; the chaos wildcard covers s_∀/s_δ).
    let chaos = u.prop("__chaos__");
    let shuttle = correct_shuttle(&u);
    assert!(m0.observation_conforming(&shuttle_automaton(&u)));
    let trivial = IncompleteAutomaton::trivial(
        &u,
        "shuttle2",
        rear_inputs(&u),
        rear_outputs(&u),
        "noConvoy::default",
    );
    let closure = chaotic_closure(&trivial, Some(chaos));
    let opts = muml_integration::automata::RefineOptions {
        wildcard_props: muml_integration::automata::PropSet::singleton(chaos),
        ..Default::default()
    };
    let bare = muml_integration::automata::restrict_interface(
        &shuttle_automaton(&u),
        rear_inputs(&u),
        rear_outputs(&u),
        muml_integration::automata::PropSet::EMPTY,
    )
    .unwrap();
    assert_eq!(
        muml_integration::automata::refines_with(&bare, &closure, &opts).unwrap(),
        None
    );
    drop(shuttle);
}

/// The correct shuttle's true behaviour as an automaton (the hidden machine
/// mirrored — used only for validating the theorems, never by the method).
fn shuttle_automaton(u: &Universe) -> Automaton {
    AutomatonBuilder::new(u, "shuttle2")
        .inputs([
            "convoyProposalRejected",
            "startConvoy",
            "breakConvoyRejected",
            "breakConvoyAccepted",
        ])
        .outputs(["convoyProposal", "breakConvoyProposal"])
        .state("noConvoy::default")
        .initial("noConvoy::default")
        .state("noConvoy::wait")
        .state("convoy")
        .transition(
            "noConvoy::default",
            [],
            ["convoyProposal"],
            "noConvoy::wait",
        )
        .transition(
            "noConvoy::wait",
            ["convoyProposalRejected"],
            [],
            "noConvoy::default",
        )
        .transition("noConvoy::wait", ["startConvoy"], [], "convoy")
        .transition("convoy", [], [], "convoy")
        .build()
        .unwrap()
}

#[test]
fn figure_5_context_structure() {
    let u = Universe::new();
    let ctx = front_context(&u);
    assert_eq!(ctx.state_count(), 4);
    for name in ["noConvoy::default", "noConvoy::answer", "convoy", "break"] {
        assert!(ctx.find_state(name).is_some(), "missing {name}");
    }
}

#[test]
fn listing_1_1_reaches_chaos() {
    let u = Universe::new();
    let text = scenario::listing_1_1(&u);
    // The counterexample walks the negotiation into the chaotic closure and
    // manifests the deadlock there, as in the paper.
    assert!(text.contains("convoyProposal!"), "{text}");
    assert!(text.contains("s_delta"), "{text}");
}

#[test]
fn listings_1_2_and_1_3_match_paper_format() {
    let u = Universe::new();
    let (minimal, full) = scenario::listings_1_2_and_1_3(&u);
    // Listing 1.2 — exactly the two message records.
    let expected_minimal = "\
[Message] name=\"convoyProposal\", portName=\"rearRole\", type=\"outgoing\"
[Message] name=\"convoyProposalRejected\", portName=\"rearRole\", type=\"incoming\"
";
    assert_eq!(minimal, expected_minimal);
    // Listing 1.3 — the blocking state: the faulty shuttle is in `convoy`
    // when the rejection arrives.
    assert!(full.contains("[CurrentState] name=\"noConvoy\""));
    assert!(full.contains("[Timing] count=1"));
    assert!(full.contains("[CurrentState] name=\"convoy\""));
    assert!(full.contains(
        "[Message] name=\"convoyProposalRejected\", portName=\"rearRole\", type=\"incoming\""
    ));
}

#[test]
fn figure_6_listing_1_4_faulty_shuttle() {
    let u = Universe::new();
    let (report, fig6_dot) = scenario::integrate_faulty(&u);
    match &report.verdict {
        IntegrationVerdict::RealFault {
            property, rendered, ..
        } => {
            // Listing 1.4, structurally identical:
            assert!(rendered.contains("shuttle2.convoyProposal!"));
            assert!(rendered.contains("shuttle1.convoyProposal?"));
            assert!(rendered.contains("shuttle1.noConvoy::answer, shuttle2.convoy"));
            assert!(property.contains("shuttle2.convoy"));
        }
        v => panic!("expected the conflict, got {v:?}"),
    }
    // Figure 6: the synthesized model shows the premature convoy entry.
    assert!(fig6_dot.contains("convoy"));
    // Claim C3: fast conflict detection.
    assert!(report.stats.iterations <= 5, "{}", report.stats.iterations);
}

#[test]
fn figure_7_listing_1_5_correct_shuttle() {
    let u = Universe::new();
    let (report, fig7_dot) = scenario::integrate_correct(&u);
    assert!(report.verdict.proven());
    assert!(fig7_dot.contains("noConvoy::default"));
    assert!(fig7_dot.contains("noConvoy::wait"));
    let listing = scenario::listing_1_5(&u);
    for needle in [
        "[CurrentState] name=\"noConvoy::default\"",
        "[Message] name=\"convoyProposal\", portName=\"rearRole\", type=\"outgoing\"",
        "[Timing] count=1",
        "[CurrentState] name=\"noConvoy::wait\"",
        "[Message] name=\"convoyProposalRejected\", portName=\"rearRole\", type=\"incoming\"",
        "[Message] name=\"startConvoy\", portName=\"rearRole\", type=\"incoming\"",
        "[CurrentState] name=\"convoy\"",
    ] {
        assert!(listing.contains(needle), "missing {needle} in\n{listing}");
    }
}

#[test]
fn figure_2_process_narrative() {
    let u = Universe::new();
    let (report, _) = scenario::integrate_correct(&u);
    let narrative = muml_integration::core::render_report(&report);
    assert!(narrative.contains("PROVEN"));
    assert!(narrative.contains("iteration 0"));
    // every iteration before the proof learned something or tested
    assert!(report.stats.tests_executed > 0);
}
