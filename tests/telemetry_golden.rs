//! Golden-event test: the RailCab faulty-component walkthrough (Figure 6 /
//! Listing 1.4) must emit exactly the pinned sequence of loop events. The
//! fingerprint is timing-free — `Collector::kinds` ignores the nanosecond
//! fields — so the test is deterministic across machines.

use muml_integration::obs::{json, Collector, JsonWriter, LoopEvent, RunOutcome};
use muml_integration::prelude::*;
use muml_integration::railcab::{faulty_shuttle, scenario};

fn run_faulty() -> (IntegrationReport, Collector) {
    let u = Universe::new();
    let mut shuttle = faulty_shuttle(&u);
    let mut sink = Collector::new();
    let report = scenario::integrate_with(&u, &mut shuttle, &mut sink);
    (report, sink)
}

#[test]
fn faulty_walkthrough_event_sequence_is_pinned() {
    let (report, sink) = run_faulty();
    assert!(!report.verdict.proven());
    // Iteration 0: a deadlock counterexample that the shuttle realizes —
    // the frontier probe learns fresh behaviour and the loop continues.
    // Iteration 1: the pattern constraint itself is violated and the
    // counterexample is confirmed — a real fault, fast conflict detection
    // (claim C3).
    // The `learn_step` after `frontier_probed` attributes the probe-learned
    // knowledge to iteration 0 (it used to surface only as a widened
    // baseline of iteration 1's learn step).
    // The `trace_cache_used` events report the prefix-sharing trace cache:
    // iteration 0's frontier probes seed the trie, and iteration 1's
    // counterexample test is answered from it without re-driving the rig.
    assert_eq!(
        sink.kinds(),
        vec![
            "run_started",
            "initial_abstraction",
            "iteration_started",
            "composed",
            "recomposed",
            "model_checked",
            "counterexample_extracted",
            "replay_executed",
            "learn_step",
            "trace_cache_used",
            "frontier_probed",
            "learn_step",
            "iteration_started",
            "composed",
            "recomposed",
            "model_checked",
            "counterexample_extracted",
            "trace_cache_used",
            "replay_executed",
            "learn_step",
            "run_finished",
        ]
    );
}

#[test]
fn faulty_walkthrough_event_payloads_match_the_paper_narrative() {
    let (report, sink) = run_faulty();
    match &sink.events[0] {
        LoopEvent::RunStarted {
            components,
            properties,
        } => {
            assert_eq!(components, &["shuttle2".to_owned()]);
            assert_eq!(*properties, 1);
        }
        e => panic!("expected run_started, got {e:?}"),
    }
    // The trivial initial abstraction M_l^0 (Figure 4a): one state, no
    // known transitions or refusals.
    match &sink.events[1] {
        LoopEvent::InitialAbstraction {
            states,
            transitions,
            refusals,
            ..
        } => {
            assert_eq!((*states, *transitions, *refusals), (1, 0, 0));
        }
        e => panic!("expected initial_abstraction, got {e:?}"),
    }
    // Iteration 0 checks fail on deadlock freedom; iteration 1 on the
    // pattern constraint.
    let checked: Vec<&LoopEvent> = sink
        .events
        .iter()
        .filter(|e| e.kind() == "model_checked")
        .collect();
    assert_eq!(checked.len(), 2);
    for e in &checked {
        match e {
            LoopEvent::ModelChecked {
                holds,
                violated,
                fixpoint_iterations,
                labeled_states,
                ..
            } => {
                assert!(!holds);
                assert!(violated.is_some());
                assert!(*fixpoint_iterations > 0);
                assert!(*labeled_states > 0);
            }
            _ => unreachable!(),
        }
    }
    match checked[1] {
        LoopEvent::ModelChecked { violated, .. } => {
            let v = violated.as_deref().unwrap();
            assert!(v.contains("shuttle2.convoy"), "{v}");
            assert!(v.contains("front.noConvoy"), "{v}");
        }
        _ => unreachable!(),
    }
    // The confirmed counterexample of iteration 1 is not a deadlock.
    let cexs: Vec<&LoopEvent> = sink
        .events
        .iter()
        .filter(|e| e.kind() == "counterexample_extracted")
        .collect();
    // The checker returns *shortest* counterexamples: the very first one
    // is the empty trace (the trivial closure deadlocks immediately).
    match cexs[0] {
        LoopEvent::CounterexampleExtracted {
            deadlock, length, ..
        } => {
            assert!(deadlock);
            assert_eq!(*length, 0);
        }
        _ => unreachable!(),
    }
    match cexs[1] {
        LoopEvent::CounterexampleExtracted { deadlock, .. } => assert!(!deadlock),
        _ => unreachable!(),
    }
    // The first recompose is necessarily cold; every recomposed event
    // accounts for the full product (dirty + reused = composed states).
    let recomposed: Vec<&LoopEvent> = sink
        .events
        .iter()
        .filter(|e| e.kind() == "recomposed")
        .collect();
    assert_eq!(recomposed.len(), 2);
    match recomposed[0] {
        LoopEvent::Recomposed {
            mode,
            reused_states,
            ..
        } => {
            assert_eq!(mode, "cold");
            assert_eq!(*reused_states, 0);
        }
        _ => unreachable!(),
    }
    // The probe-attributed learn step (iteration 0, after the frontier
    // probe) reports the fresh knowledge with nonzero deltas.
    let learns: Vec<&LoopEvent> = sink
        .events
        .iter()
        .filter(|e| e.kind() == "learn_step")
        .collect();
    assert_eq!(learns.len(), 3);
    match learns[1] {
        LoopEvent::LearnStep {
            iteration,
            delta_states,
            delta_transitions,
            delta_refusals,
            ..
        } => {
            assert_eq!(*iteration, 0);
            assert!(delta_states + delta_transitions + delta_refusals > 0);
        }
        _ => unreachable!(),
    }
    // A replay drives each input at most three times (live, re-record,
    // replay); the trace cache may answer a repeat word with fewer — and
    // iteration 1's counterexample is a full hit with zero driven steps.
    let replays: Vec<(usize, usize)> = sink
        .events
        .iter()
        .filter_map(|e| match e {
            LoopEvent::ReplayExecuted {
                steps,
                driven_steps,
                ..
            } => Some((*steps, *driven_steps)),
            _ => None,
        })
        .collect();
    for &(steps, driven) in &replays {
        assert!(driven <= steps * 3, "{driven} > {steps}*3");
    }
    let (steps, driven) = *replays.last().unwrap();
    assert!(steps > 0);
    assert_eq!(driven, 0, "iteration 1's test is served from the cache");
    match sink.events.last().unwrap() {
        LoopEvent::RunFinished {
            iterations,
            outcome,
            ..
        } => {
            assert_eq!(*iterations, 2);
            assert_eq!(*outcome, RunOutcome::RealFault);
        }
        e => panic!("expected run_finished, got {e:?}"),
    }
    // The aggregate stats agree with the event stream.
    assert_eq!(report.stats.iterations, 2);
    assert_eq!(
        report.stats.checker_fixpoint_iterations,
        checked
            .iter()
            .map(|e| match e {
                LoopEvent::ModelChecked {
                    fixpoint_iterations,
                    ..
                } => *fixpoint_iterations,
                _ => unreachable!(),
            })
            .sum::<u64>()
    );
    assert!(report.stats.timings.total_ns() > 0);
}

#[test]
fn faulty_walkthrough_round_trips_through_json_lines() {
    let (_, sink) = run_faulty();
    let mut writer = JsonWriter::new(Vec::new());
    for e in &sink.events {
        muml_integration::obs::EventSink::emit(&mut writer, e);
    }
    let bytes = writer.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), sink.events.len());
    for (line, event) in lines.iter().zip(&sink.events) {
        let parsed = json::parse(line).unwrap();
        assert_eq!(parsed, event.to_json());
        assert_eq!(
            parsed.get("event").and_then(json::Json::as_str),
            Some(event.kind())
        );
    }
}

#[test]
fn session_without_sink_matches_verify_integration() {
    // The builder is a pure re-packaging of `verify_integration` — both
    // entry points must agree on the walkthrough verdict and stats.
    let u = Universe::new();
    let mut s1 = faulty_shuttle(&u);
    let mut s2 = faulty_shuttle(&u);
    let via_session = scenario::integrate(&u, &mut s1);
    let via_fn = {
        let ctx = muml_integration::railcab::front_context(&u);
        let props = vec![scenario::pattern_constraint(&u)];
        let mut units = [LegacyUnit::new(&mut s2, scenario::rear_port_map(&u))];
        verify_integration(&u, &ctx, &props, &mut units, &IntegrationConfig::default()).unwrap()
    };
    assert_eq!(via_session.verdict.proven(), via_fn.verdict.proven());
    assert_eq!(via_session.stats.iterations, via_fn.stats.iterations);
    assert_eq!(
        via_session.stats.tests_executed,
        via_fn.stats.tests_executed
    );
    assert_eq!(via_session.stats.driven_steps, via_fn.stats.driven_steps);
}
