//! Fleet determinism (DESIGN.md §11): the aggregated [`FleetReport`] —
//! minus timing and worker attribution, i.e. its `fingerprint()` — must be
//! identical however the campaign is sharded: one worker, four workers, or
//! a shuffled submission order.
//!
//! This is the end-to-end counterpart of the unit tests inside
//! `muml-fleet`: it runs the real RailCab campaign (variants × faults)
//! through the real worker pool three times and compares canonical JSON.

use std::time::Duration;

use muml_bench::campaign::{railcab_campaign, CampaignOptions};
use muml_fleet::{run_fleet, FleetConfig, Job};
use muml_obs::NullFleetSink;

/// Zero harness latency and a modest job cap keep the three debug-mode
/// campaign runs inside the tier-1 test budget.
fn options() -> CampaignOptions {
    CampaignOptions {
        latency: Duration::ZERO,
        max_jobs: Some(12),
        ..CampaignOptions::default()
    }
}

/// A deterministic shuffle: interleave the two halves of the job list so
/// submission order differs from id order without any RNG.
fn riffle(jobs: Vec<Job>) -> Vec<Job> {
    let mut front: Vec<Job> = Vec::new();
    let mut back: Vec<Job> = Vec::new();
    for (i, job) in jobs.into_iter().enumerate() {
        if i % 2 == 0 {
            front.push(job);
        } else {
            back.push(job);
        }
    }
    back.extend(front.into_iter().rev());
    back
}

#[test]
fn report_fingerprint_is_independent_of_workers_and_submission_order() {
    let opts = options();

    let serial = run_fleet(
        railcab_campaign(&opts),
        &FleetConfig::default().with_workers(1),
        &mut NullFleetSink,
    );
    let pooled = run_fleet(
        railcab_campaign(&opts),
        &FleetConfig::default().with_workers(4),
        &mut NullFleetSink,
    );
    let shuffled = run_fleet(
        riffle(railcab_campaign(&opts)),
        &FleetConfig::default().with_workers(4),
        &mut NullFleetSink,
    );

    assert_eq!(serial.results.len(), 12);
    assert_eq!(serial.fingerprint(), pooled.fingerprint());
    assert_eq!(serial.fingerprint(), shuffled.fingerprint());

    // The fingerprint is not vacuous: it pins ids, names, outcomes, and
    // iteration counts of every job.
    let fp = serial.fingerprint();
    assert!(fp.contains("\"jobs\":12"), "{fp}");
    assert!(fp.contains("baseline"), "{fp}");
}

#[test]
fn shuffled_submission_still_assigns_results_by_job_id() {
    let opts = options();
    let report = run_fleet(
        riffle(railcab_campaign(&opts)),
        &FleetConfig::default().with_workers(3),
        &mut NullFleetSink,
    );
    let ids: Vec<usize> = report.results.iter().map(|r| r.request.id).collect();
    let expected: Vec<usize> = (0..ids.len()).collect();
    assert_eq!(ids, expected, "results must be sorted by generation id");
}
