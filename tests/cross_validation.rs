//! Cross-validation of the synthesis driver against ground truth: the
//! driver never sees the component's internals, but the test harness does —
//! so we can model check the *true* composition directly and require that
//! the driver's verdict coincides (soundness and completeness on the
//! workload family), including under randomly seeded faults.
//!
//! Random inputs come from `muml-testkit` (deterministic splitmix64 cases).

use muml_bench::workload::{counter_workload, seed_fault};
use muml_integration::prelude::*;
use muml_testkit::{cases, Rng};

/// The true automaton of the (possibly faulted) counter: mirrors the
/// hidden Mealy machine rule for rule by exhaustively querying a clone.
fn true_counter_automaton(w: &muml_bench::workload::CounterWorkload) -> Automaton {
    let u = &w.universe;
    let up = u.signals(["up"]);
    let letters = [SignalSet::EMPTY, up];
    let mut b = AutomatonBuilder::new(u, "true").input("up").output("top");
    // Discover states by BFS over the clone.
    let mut seen: Vec<String> = Vec::new();
    let mut work: Vec<Vec<SignalSet>> = vec![Vec::new()]; // access words
    let mut edges: Vec<(String, Label, String)> = Vec::new();
    while let Some(access) = work.pop() {
        let mut probe = w.component.clone();
        probe.reset();
        for &a in &access {
            probe.step(a);
        }
        let here = probe.observable_state();
        if seen.contains(&here) {
            continue;
        }
        seen.push(here.clone());
        b = b.state(&here);
        for &a in &letters {
            let mut probe = w.component.clone();
            probe.reset();
            for &x in &access {
                probe.step(x);
            }
            let out = probe.step(a);
            let next = probe.observable_state();
            edges.push((here.clone(), Label::new(a, out), next));
            let mut ext = access.clone();
            ext.push(a);
            work.push(ext);
        }
    }
    for (f, l, t) in edges {
        b = b.state(&t);
        b = b.transition_guard(&f, muml_integration::automata::Guard::Exact(l), &t);
    }
    b.initial("c0").build().expect("true model is well-formed")
}

fn driver_verdict(w: &muml_bench::workload::CounterWorkload) -> bool {
    let mut component = w.component.clone();
    let mut units = [LegacyUnit::new(&mut component, PortMap::with_default("p"))];
    let report = verify_integration(
        &w.universe,
        &w.context,
        &[],
        &mut units,
        &IntegrationConfig::default(),
    )
    .expect("terminates");
    report.verdict.proven()
}

fn ground_truth(w: &muml_bench::workload::CounterWorkload) -> bool {
    let truth = true_counter_automaton(w);
    let comp = compose2(&w.context, &truth).expect("composes");
    let mut checker = Checker::new(&comp.automaton);
    checker.satisfies(&Formula::deadlock_free())
}

#[test]
fn verdicts_match_ground_truth_fault_free() {
    for (n, k) in [(4, 2), (6, 3), (8, 5), (10, 4)] {
        let w = counter_workload(n, k);
        assert!(ground_truth(&w), "workload n={n} k={k} should be clean");
        assert!(driver_verdict(&w), "driver must prove n={n} k={k}");
    }
}

#[test]
fn verdicts_match_ground_truth_with_reachable_fault() {
    for d in 1..5 {
        let mut w = counter_workload(8, 6);
        seed_fault(&mut w, d);
        assert!(!ground_truth(&w), "fault at depth {d} must break the truth");
        assert!(!driver_verdict(&w), "driver must catch the fault at {d}");
    }
}

#[test]
fn unreachable_fault_does_not_matter() {
    // fault beyond the context's reach: the *integration* is still correct
    let mut w = counter_workload(8, 2);
    seed_fault(&mut w, 5);
    assert!(ground_truth(&w));
    assert!(driver_verdict(&w));
}

/// For arbitrary sizes, context depths, and fault placements, the
/// driver's verdict equals direct model checking of the real
/// composition — soundness (no false positives) *and* no false
/// negatives, executably.
#[test]
fn driver_agrees_with_ground_truth() {
    cases(24, |rng| {
        let n = rng.range(3..=8);
        let k_frac = 0.1 + rng.f64() * 0.8;
        let fault = if rng.bool() { Some(rng.below(7)) } else { None };
        let k = ((n as f64 - 2.0) * k_frac).max(1.0) as usize;
        let mut w = counter_workload(n, k.min(n - 2));
        if let Some(d) = fault {
            let d = d % (n - 1);
            seed_fault(&mut w, d);
        }
        assert_eq!(driver_verdict(&w), ground_truth(&w));
    });
}

/// Fully randomized cross-validation: arbitrary deterministic components
/// against arbitrary (possibly nondeterministic) contexts, driver verdict
/// vs. direct model checking of the true composition.
mod randomized {
    use super::*;

    /// Component spec: a total deterministic Mealy machine over inputs
    /// {go}, outputs {rsp}. Per state and input-letter (∅ or {go}):
    /// (emit_rsp, next_state).
    #[derive(Debug, Clone)]
    struct CompSpec {
        states: usize,
        /// `rules[s][letter] = (emit, next)`; letter 0 = ∅, letter 1 = {go}
        rules: Vec<[(bool, usize); 2]>,
    }

    fn gen_comp(rng: &mut Rng, max_states: usize) -> CompSpec {
        let n = rng.range(1..=max_states);
        let rules = rng.vec(n, |r| [(r.bool(), r.below(n)), (r.bool(), r.below(n))]);
        CompSpec { states: n, rules }
    }

    /// Context spec over outputs {go}, inputs {rsp}: a nondeterministic
    /// automaton; transition = (from, sends_go, expects_rsp, to).
    #[derive(Debug, Clone)]
    struct CtxSpec {
        states: usize,
        trans: Vec<(usize, bool, bool, usize)>,
    }

    fn gen_ctx(rng: &mut Rng, max_states: usize, max_trans: usize) -> CtxSpec {
        let n = rng.range(1..=max_states);
        let n_trans = rng.range(1..=max_trans);
        let trans = rng.vec(n_trans, |r| (r.below(n), r.bool(), r.bool(), r.below(n)));
        CtxSpec { states: n, trans }
    }

    fn build_component(u: &Universe, spec: &CompSpec) -> HiddenMealy {
        let mut b = MealyBuilder::new(u, "rand").input("go").output("rsp");
        for s in 0..spec.states {
            b = b.state(&format!("q{s}"));
        }
        b = b.initial("q0");
        for (s, rules) in spec.rules.iter().enumerate() {
            for (letter, &(emit, next)) in rules.iter().enumerate() {
                let ins: Vec<&str> = if letter == 1 { vec!["go"] } else { vec![] };
                let outs: Vec<&str> = if emit { vec!["rsp"] } else { vec![] };
                b = b.rule(&format!("q{s}"), ins, outs, &format!("q{next}"));
            }
        }
        b.build().expect("component spec builds")
    }

    fn build_component_automaton(u: &Universe, spec: &CompSpec) -> Automaton {
        let mut b = AutomatonBuilder::new(u, "true").input("go").output("rsp");
        for s in 0..spec.states {
            b = b.state(&format!("q{s}"));
        }
        b = b.initial("q0");
        for (s, rules) in spec.rules.iter().enumerate() {
            for (letter, &(emit, next)) in rules.iter().enumerate() {
                let ins: Vec<&str> = if letter == 1 { vec!["go"] } else { vec![] };
                let outs: Vec<&str> = if emit { vec!["rsp"] } else { vec![] };
                b = b.transition(&format!("q{s}"), ins, outs, &format!("q{next}"));
            }
        }
        b.build().expect("component automaton builds")
    }

    fn build_context(u: &Universe, spec: &CtxSpec) -> Automaton {
        let mut b = AutomatonBuilder::new(u, "rctx").output("go").input("rsp");
        for s in 0..spec.states {
            b = b.state(&format!("d{s}"));
        }
        b = b.initial("d0");
        for &(f, go, rsp, t) in &spec.trans {
            let outs: Vec<&str> = if go { vec!["go"] } else { vec![] };
            let ins: Vec<&str> = if rsp { vec!["rsp"] } else { vec![] };
            b = b.transition(&format!("d{f}"), ins, outs, &format!("d{t}"));
        }
        b.build().expect("context spec builds")
    }

    /// The driver's verdict always equals direct model checking of the
    /// real composition — over arbitrary deterministic components and
    /// arbitrary contexts.
    #[test]
    fn driver_matches_truth_on_random_systems() {
        cases(48, |rng| {
            let comp = gen_comp(rng, 4);
            let ctx = gen_ctx(rng, 3, 6);
            let u = Universe::new();
            let mut component = build_component(&u, &comp);
            let context = build_context(&u, &ctx);
            let truth_auto = build_component_automaton(&u, &comp);
            let truth_comp = compose2(&context, &truth_auto).unwrap();
            let mut checker = Checker::new(&truth_comp.automaton);
            let truth = checker.satisfies(&Formula::deadlock_free());

            let mut units = [LegacyUnit::new(&mut component, PortMap::with_default("p"))];
            let report =
                verify_integration(&u, &context, &[], &mut units, &IntegrationConfig::default())
                    .expect("driver terminates");
            assert_eq!(
                report.verdict.proven(),
                truth,
                "driver disagreed with ground truth"
            );
        });
    }

    /// Same, with batched counterexamples — the optimization must never
    /// change a verdict.
    #[test]
    fn batched_driver_matches_truth_on_random_systems() {
        cases(48, |rng| {
            let comp = gen_comp(rng, 4);
            let ctx = gen_ctx(rng, 3, 6);
            let u = Universe::new();
            let mut component = build_component(&u, &comp);
            let context = build_context(&u, &ctx);
            let truth_auto = build_component_automaton(&u, &comp);
            let truth_comp = compose2(&context, &truth_auto).unwrap();
            let mut checker = Checker::new(&truth_comp.automaton);
            let truth = checker.satisfies(&Formula::deadlock_free());

            let mut units = [LegacyUnit::new(&mut component, PortMap::with_default("p"))];
            let report = verify_integration(
                &u,
                &context,
                &[],
                &mut units,
                &IntegrationConfig::default().with_batch_counterexamples(8),
            )
            .expect("driver terminates");
            assert_eq!(report.verdict.proven(), truth);
        });
    }
}
