//! Integration through the full architectural stack: a pattern with a
//! delay-1 wireless connector, context extraction for the legacy role
//! (`CoordinationPattern::context_for`), and the synthesis loop against a
//! legacy component speaking the role-qualified signals.

use muml_integration::prelude::*;
use muml_integration::railcab::distance_coordination;

/// A deterministic legacy implementation of the rear role over the
/// role-qualified signals (it tolerates the connector's delay by waiting
/// quietly between messages).
fn rear_legacy(u: &Universe) -> HiddenMealy {
    MealyBuilder::new(u, "shuttle2")
        .input("rearRole.convoyProposalRejected")
        .input("rearRole.startConvoy")
        .input("rearRole.breakConvoyRejected")
        .input("rearRole.breakConvoyAccepted")
        .output("rearRole.convoyProposal")
        .output("rearRole.breakConvoyProposal")
        .state("noConvoy::default")
        .initial("noConvoy::default")
        .state("noConvoy::wait")
        .state("convoy")
        .rule(
            "noConvoy::default",
            [],
            ["rearRole.convoyProposal"],
            "noConvoy::wait",
        )
        .rule(
            "noConvoy::wait",
            ["rearRole.convoyProposalRejected"],
            [],
            "noConvoy::default",
        )
        .rule("noConvoy::wait", ["rearRole.startConvoy"], [], "convoy")
        .rule("convoy", [], [], "convoy")
        .build()
        .unwrap()
}

/// Like [`rear_legacy`] but entering convoy mode immediately after
/// proposing — the Figure-6 conflict, now across the real connector.
fn rear_legacy_faulty(u: &Universe) -> HiddenMealy {
    MealyBuilder::new(u, "shuttle2")
        .input("rearRole.convoyProposalRejected")
        .input("rearRole.startConvoy")
        .input("rearRole.breakConvoyRejected")
        .input("rearRole.breakConvoyAccepted")
        .output("rearRole.convoyProposal")
        .output("rearRole.breakConvoyProposal")
        .state("noConvoy")
        .initial("noConvoy")
        .state("convoy")
        .rule("noConvoy", [], ["rearRole.convoyProposal"], "convoy")
        .rule("convoy", ["rearRole.convoyProposalRejected"], [], "convoy")
        .rule("convoy", ["rearRole.startConvoy"], [], "convoy")
        .rule("convoy", [], [], "convoy")
        .build()
        .unwrap()
}

fn integrate(u: &Universe, shuttle: &mut HiddenMealy) -> muml_integration::core::IntegrationReport {
    let pattern = distance_coordination(u);
    let ctx = pattern.context_for("rearRole").expect("role exists");
    // The constraint, phrased over the legacy component's monitored states
    // (via the default prop mapper: state `convoy` of `shuttle2` fulfils
    // `shuttle2.convoy`).
    let constraint = parse(u, "AG !(shuttle2.convoy & frontRole.noConvoy)").unwrap();
    let mut ports = PortMap::with_default("rearRole");
    ports.assign(
        ctx.component_inputs.union(ctx.component_outputs),
        "rearRole",
    );
    let mut units = [LegacyUnit::new(shuttle, ports)];
    verify_integration(
        u,
        &ctx.automaton,
        &[constraint],
        &mut units,
        &IntegrationConfig::default(),
    )
    .expect("loop terminates")
}

#[test]
fn context_interface_matches_component() {
    let u = Universe::new();
    let pattern = distance_coordination(&u);
    let ctx = pattern.context_for("rearRole").unwrap();
    let shuttle = rear_legacy(&u);
    assert!(muml_integration::core::interface_matches(
        &shuttle,
        ctx.component_inputs,
        ctx.component_outputs
    ));
}

#[test]
fn correct_rear_shuttle_is_proven_across_the_connector() {
    let u = Universe::new();
    let mut shuttle = rear_legacy(&u);
    let report = integrate(&u, &mut shuttle);
    assert!(report.verdict.proven(), "{:?}", report.verdict);
    // The negotiation states were learned; the connector's delay shows up
    // as quiet waiting steps, not as extra component states.
    let (states, _) = report.learned_sizes()[0];
    assert_eq!(states, 3);
}

#[test]
fn faulty_rear_shuttle_is_caught_across_the_connector() {
    let u = Universe::new();
    let mut shuttle = rear_legacy_faulty(&u);
    let report = integrate(&u, &mut shuttle);
    match &report.verdict {
        IntegrationVerdict::RealFault { property, .. } => {
            assert!(property.contains("shuttle2.convoy"));
            assert!(property.contains("frontRole.noConvoy"));
        }
        v => panic!("expected the conflict, got {v:?}"),
    }
}

#[test]
fn port_refinement_of_a_component_statechart() {
    // A component whose RTSC implements the full rear role protocol
    // refines it (here: the role statechart itself as the implementation).
    let u = Universe::new();
    let pattern = distance_coordination(&u);
    let full = Component::new(
        "shuttleImpl",
        muml_integration::railcab::rear_role_rtsc(&u),
        &[("DistanceCoordination", "rearRole")],
    );
    let check = check_port_refinement(&pattern, "rearRole", &full).unwrap();
    assert!(check.ok(), "{check:?}");

    // Dropping the break-convoy branch *blocks guaranteed behaviour* (the
    // role's convoy state can always propose to break): Definition 4's
    // refusal condition rejects it.
    let reduced = RtscBuilder::new(&u, "reducedImpl")
        .input("rearRole.convoyProposalRejected")
        .input("rearRole.startConvoy")
        .input("rearRole.breakConvoyRejected")
        .input("rearRole.breakConvoyAccepted")
        .output("rearRole.convoyProposal")
        .output("rearRole.breakConvoyProposal")
        .state("noConvoy")
        .prop("noConvoy", "rearRole.noConvoy")
        .prop("noConvoy", "rearRole.fullBraking")
        .substate("noConvoy", "default")
        .substate("noConvoy", "wait")
        .prop("noConvoy::wait", "rearRole.waiting")
        .initial("noConvoy")
        .state("convoy")
        .prop("convoy", "rearRole.convoy")
        .transition(
            "noConvoy::default",
            "noConvoy::wait",
            [],
            ["rearRole.convoyProposal"],
        )
        .transition(
            "noConvoy::wait",
            "noConvoy::default",
            ["rearRole.convoyProposalRejected"],
            [],
        )
        .transition("noConvoy::wait", "convoy", ["rearRole.startConvoy"], [])
        .build()
        .unwrap();
    let reduced = Component::new(
        "reducedImpl",
        reduced,
        &[("DistanceCoordination", "rearRole")],
    );
    let check = check_port_refinement(&pattern, "rearRole", &reduced).unwrap();
    assert!(
        matches!(
            check,
            muml_integration::arch::PortCheck::Violation(
                muml_integration::automata::RefinementFailure::RefusalNotMatched { .. }
            )
        ),
        "{check:?}"
    );
}

#[test]
fn shuttle_component_operates_as_both_roles() {
    // "The shuttle component must conform to the DistanceCoordination
    // pattern and has to operate as both a rearRole and a frontRole": the
    // component behaviour is the *product* of a rear-port implementation
    // and a front-port implementation; each projection must refine its role
    // (Lemma 3 restriction + Definition 4).
    use muml_integration::arch::check_port_refinement_automaton;
    use muml_integration::railcab::{front_role_pattern_rtsc, rear_role_rtsc};
    use muml_integration::rtsc::flatten;

    let u = Universe::new();
    let pattern = distance_coordination(&u);
    // Port implementations: the role protocols themselves (maximally
    // permissive correct implementations).
    let rear_port = flatten(&rear_role_rtsc(&u)).unwrap();
    let front_port = flatten(&front_role_pattern_rtsc(&u)).unwrap();
    // The shuttle's overall behaviour: both ports running in parallel
    // (orthogonal interfaces — the kernel's composition).
    let shuttle = compose2(&rear_port, &front_port).unwrap().automaton;
    assert!(rear_port.orthogonal_to(&front_port));
    for role in ["rearRole", "frontRole"] {
        let check = check_port_refinement_automaton(&pattern, role, &shuttle).unwrap();
        assert!(check.ok(), "{role}: {check:?}");
    }
}

#[test]
fn timed_retry_shuttle_is_proven_over_a_lossy_uplink() {
    // The full stack under degraded QoS: the context is the front role
    // composed with an *uplink-lossy* connector (a nondeterministic
    // context), and the legacy shuttle implements the timeout-retry
    // behaviour as a counting chain of quiet wait states (legacy binaries
    // have no declarative clocks — they count periods).
    let u = Universe::new();
    let pattern = distance_coordination(&u);
    let kinds_owned = pattern.connector.kinds.clone();
    let kinds: Vec<(&str, &str)> = kinds_owned
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let lossy_up = PatternBuilder::new(&u, "LossyUplink")
        .role(
            "rearRole",
            muml_integration::railcab::rear_role_with_timeout(&u, 6),
        )
        .role(
            "frontRole",
            muml_integration::railcab::front_role_pattern_rtsc(&u),
        )
        .connector(ChannelSpec::lossy_for(
            "wireless",
            &kinds,
            1,
            &["rearRole.convoyProposal"],
        ))
        .constraint(parse(&u, "AG !(shuttle2.convoy & frontRole.noConvoy)").unwrap())
        .build()
        .unwrap();
    let ctx = lossy_up.context_for("rearRole").unwrap();

    // Timeout-retry shuttle: propose, count 6 quiet periods, re-propose.
    let mut b = MealyBuilder::new(&u, "shuttle2")
        .input("rearRole.convoyProposalRejected")
        .input("rearRole.startConvoy")
        .input("rearRole.breakConvoyRejected")
        .input("rearRole.breakConvoyAccepted")
        .output("rearRole.convoyProposal")
        .output("rearRole.breakConvoyProposal")
        .state("noConvoy")
        .initial("noConvoy")
        .state("convoy")
        .rule("noConvoy", [], ["rearRole.convoyProposal"], "wait0");
    for i in 0..6 {
        let here = format!("wait{i}");
        b = b.state(&here);
        b = b.rule(&here, ["rearRole.convoyProposalRejected"], [], "noConvoy");
        b = b.rule(&here, ["rearRole.startConvoy"], [], "convoy");
        if i < 5 {
            b = b.rule(&here, [], [], &format!("wait{}", i + 1));
        } else {
            // timeout: give up and re-propose next period
            b = b.rule(&here, [], [], "noConvoy");
        }
    }
    b = b.rule("convoy", [], [], "convoy");
    let mut shuttle = b.build().unwrap();

    let mut ports = PortMap::with_default("rearRole");
    ports.assign(
        ctx.component_inputs.union(ctx.component_outputs),
        "rearRole",
    );
    let mut units = [LegacyUnit::new(&mut shuttle, ports)];
    let report = verify_integration(
        &u,
        &ctx.automaton,
        &[parse(&u, "AG !(shuttle2.convoy & frontRole.noConvoy)").unwrap()],
        &mut units,
        &IntegrationConfig::default(),
    )
    .expect("loop terminates");
    assert!(report.verdict.proven(), "{:?}", report.verdict);
    // The retry chain was learned.
    assert!(report.learned[0].find_state("wait5").is_some());
}
