//! **muml-integration** — correct legacy component integration for
//! Mechatronic UML by combined formal verification and testing.
//!
//! A from-scratch Rust reproduction of *Giese, Henkler, Hirsch: Combining
//! Formal Verification and Testing for Correct Legacy Component Integration
//! in Mechatronic UML* (Architecting Dependable Systems V, LNCS 5135,
//! 2008). See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every figure and listing.
//!
//! # The problem
//!
//! A Mechatronic UML architecture coordinates real-time components through
//! verified *coordination patterns*. When one component is **legacy code**
//! (no model, only an interface and a binary), neither testing alone (the
//! interaction space of distributed real-time components is too large) nor
//! model checking alone (there is no model to check) suffices.
//!
//! # The method
//!
//! Synthesize a *safe over-approximation* of the legacy component from its
//! interface (the chaotic closure of an incomplete automaton), then
//! iterate: model check the context composed with the abstraction — a
//! successful check **proves** the integration (Lemma 5) without ever
//! learning the whole component; a counterexample becomes a **test input**
//! executed on the real component via deterministic replay — a confirmed
//! trace is a **real fault** with zero false negatives (Lemma 6); a
//! diverging trace refines the abstraction (Definitions 11/12, Lemma 7)
//! and the loop repeats, terminating for finite deterministic components
//! (Theorem 2).
//!
//! # Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`automata`] | `muml-automata` | discrete-time I/O automata, composition, refinement `⊑`, chaotic closure, learning |
//! | [`logic`] | `muml-logic` | CCTL model checker with counterexample runs |
//! | [`rtsc`] | `muml-rtsc` | Real-Time Statecharts and queue connectors |
//! | [`arch`] | `muml-arch` | coordination patterns, roles, components, ports |
//! | [`legacy`] | `muml-legacy` | black-box runtime, monitoring, deterministic replay |
//! | [`core`] | `muml-core` | **the paper's contribution**: the iterative synthesis loop |
//! | [`obs`] | `muml-obs` | structured loop telemetry: events, sinks, phase timers |
//! | [`store`] | `muml-store` | content-addressed warm-start store: fingerprinted snapshots of learned abstractions |
//! | [`fleet`] | `muml-fleet` | concurrent batch verification: worker pool, job deadlines, deterministic campaign reports |
//! | [`inference`] | `muml-inference` | baselines: `L*`, W-method, black-box checking |
//! | [`railcab`] | `muml-railcab` | the RailCab shuttle-convoy case study |
//!
//! # Quickstart
//!
//! ```
//! use muml_integration::prelude::*;
//!
//! let u = Universe::new();
//! // The known context: sends `go`, expects `done` one period later.
//! let context = AutomatonBuilder::new(&u, "ctx")
//!     .output("go").input("done")
//!     .state("send").initial("send")
//!     .state("wait")
//!     .transition("send", [], ["go"], "wait")
//!     .transition("wait", ["done"], [], "send")
//!     .build().unwrap();
//! // The legacy black box (simulated here by a hidden Mealy machine).
//! let mut legacy = MealyBuilder::new(&u, "legacy")
//!     .input("go").output("done")
//!     .state("idle").initial("idle")
//!     .state("busy")
//!     .rule("idle", ["go"], [], "busy")
//!     .rule("busy", [], ["done"], "idle")
//!     .build().unwrap();
//! // Run the loop through the session builder, collecting every phase of
//! // the verify → test → learn cycle as structured events.
//! let mut sink = Collector::new();
//! let report = IntegrationSession::new(&u, &context)
//!     .unit(LegacyUnit::new(&mut legacy, PortMap::with_default("port")))
//!     .config(IntegrationConfig::default().with_batch_counterexamples(4))
//!     .sink(&mut sink)
//!     .run()
//!     .unwrap();
//! assert!(report.verdict.proven());
//! assert!(sink.kinds().contains(&"model_checked"));
//! ```

#![warn(missing_docs)]

pub use muml_arch as arch;
pub use muml_automata as automata;
pub use muml_core as core;
pub use muml_fleet as fleet;
pub use muml_inference as inference;
pub use muml_legacy as legacy;
pub use muml_logic as logic;
pub use muml_obs as obs;
pub use muml_railcab as railcab;
pub use muml_rtsc as rtsc;
pub use muml_store as store;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use muml_arch::{
        check_port_refinement, verify_pattern, Component, CoordinationPattern, PatternBuilder,
    };
    pub use muml_automata::{
        chaotic_automaton, chaotic_closure, compose, compose2, refines, Automaton,
        AutomatonBuilder, IncompleteAutomaton, Label, Observation, SignalSet, Universe,
    };
    pub use muml_core::{
        verify_integration, CancelToken, IntegrationConfig, IntegrationReport, IntegrationSession,
        IntegrationVerdict, LegacyUnit,
    };
    pub use muml_fleet::{
        run_fleet, FleetConfig, FleetReport, Job, JobOutcome, JobRegistry, JobRequest, ResolveError,
    };
    pub use muml_legacy::{
        execute_expected_trace, record_live, replay, HiddenMealy, LegacyComponent, MealyBuilder,
        PortMap, StateObservable,
    };
    pub use muml_logic::{check, check_all, parse, Checker, Formula, Verdict};
    pub use muml_obs::{
        Collector, EventSink, FleetCollector, FleetEvent, FleetSink, JsonWriter, LoopEvent,
        NullFleetSink, Renderer, RunOutcome,
    };
    pub use muml_rtsc::{channel_automaton, flatten, ChannelSpec, CmpOp, RtscBuilder};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let u = Universe::new();
        let m = AutomatonBuilder::new(&u, "m")
            .state("s")
            .initial("s")
            .build()
            .unwrap();
        assert_eq!(m.state_count(), 1);
        assert!(parse(&u, "AG !deadlock").unwrap().is_compositional());
    }
}
