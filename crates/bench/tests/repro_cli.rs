//! CLI-contract tests for the `repro` binary: exit codes and usage text.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn unknown_artefact_exits_2_and_lists_fleet() {
    let out = repro(&["no-such-artefact"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artefact"), "{stderr}");
    // The usage text must enumerate every artefact, fleet included.
    assert!(stderr.contains("fleet"), "{stderr}");
    assert!(stderr.contains("check"), "{stderr}");
    assert!(stderr.contains("--jobs"), "{stderr}");
}

#[test]
fn unknown_flag_exits_2() {
    let out = repro(&["fleet", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn jobs_flag_requires_a_positive_integer() {
    for args in [
        &["fleet", "--jobs"] as &[&str],
        &["fleet", "--jobs", "zero-ish"],
        &["fleet", "--jobs", "0"],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--jobs requires"),
            "{args:?}"
        );
    }
}

#[test]
fn jobs_flag_is_fleet_only() {
    let out = repro(&["fig3", "--jobs", "4"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs is only supported for `fleet`"));
}

#[test]
fn json_flag_is_rejected_for_unsupported_artefacts() {
    let out = repro(&["fig3", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--json is only supported"), "{stderr}");
    assert!(stderr.contains("fleet"), "{stderr}");
    // `storm` is a JSON-capable artefact and must be advertised as such.
    assert!(stderr.contains("storm"), "{stderr}");
}

#[test]
fn usage_text_lists_storm() {
    let out = repro(&["no-such-artefact"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("storm"), "{stderr}");
}

#[test]
fn storm_rejects_jobs_flag() {
    let out = repro(&["storm", "--jobs", "4"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs is only supported for `fleet`"));
}

#[test]
fn clients_flag_contract() {
    // `--clients` is serve-only and must be a positive integer.
    let out = repro(&["fleet", "--clients", "4"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--clients is only supported for `serve`")
    );
    for args in [
        &["serve", "--clients"] as &[&str],
        &["serve", "--clients", "many"],
        &["serve", "--clients", "0"],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--clients requires"),
            "{args:?}"
        );
    }
    // The usage text advertises both the artefact and its flag.
    let usage = repro(&["no-such-artefact"]);
    let stderr = String::from_utf8_lossy(&usage.stderr);
    assert!(stderr.contains("serve"), "{stderr}");
    assert!(stderr.contains("--clients"), "{stderr}");
}

#[test]
fn serve_runs_clean_and_writes_the_artefact() {
    // The daemon load test binds a loopback socket, drives it with 8
    // clients, and must exit 0 (wire-vs-fleet verdict divergence panics)
    // while writing BENCH_serve.json into the working directory.
    let dir = std::env::temp_dir().join(format!("repro-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--json"])
        .current_dir(&dir)
        .output()
        .expect("repro binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("wire verdicts match direct run_fleet"),
        "{stdout}"
    );
    assert!(stdout.contains("rejected (typed)"), "{stdout}");
    let artefact = std::fs::read_to_string(dir.join("BENCH_serve.json")).unwrap();
    assert!(artefact.contains("\"artefact\":\"serve\""), "{artefact}");
    assert!(
        artefact.contains("\"verdicts_match_fleet\":true"),
        "{artefact}"
    );
    assert!(artefact.contains("\"served_after\":true"), "{artefact}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_flag_is_warm_only() {
    let out = repro(&["fleet", "--store", "/tmp/x"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--store is only supported for `warm`"));
    let out = repro(&["warm", "--store"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--store requires"));
}

#[test]
fn warm_runs_clean_twice_and_writes_the_artefact() {
    // First run against a persistent store: cold, must show the seeded
    // run's ≥2× step reduction (the assertion is built in — a regression
    // panics). Second run against the same store is the cache-poisoning
    // guard: every cell now seeds from the first run's snapshots, and any
    // flipped verdict panics inside warm_campaign.
    let dir = std::env::temp_dir().join(format!("repro-warm-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");
    for (pass, prewarmed) in [("cold", false), ("prewarmed", true)] {
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["warm", "--json", "--store", store.to_str().unwrap()])
            .current_dir(&dir)
            .output()
            .expect("repro binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{pass} pass stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("verdicts identical"), "{pass}: {stdout}");
        let artefact = std::fs::read_to_string(dir.join("BENCH_warm.json")).unwrap();
        assert!(artefact.contains("\"artefact\":\"warm\""), "{artefact}");
        assert!(
            artefact.contains("\"verdicts_identical\":true"),
            "{artefact}"
        );
        assert!(
            artefact.contains(&format!("\"store_prewarmed\":{prewarmed}")),
            "{pass}: {artefact}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn storm_runs_clean_and_writes_the_artefact() {
    // The full sweep runs in a few seconds; `--json` must exit 0 (the
    // soundness assertion is built in — a flipped verdict panics) and
    // write BENCH_storm.json into the working directory.
    let dir = std::env::temp_dir().join(format!("repro-storm-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["storm", "--json"])
        .current_dir(&dir)
        .output()
        .expect("repro binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conclusive"), "{stdout}");
    let artefact = std::fs::read_to_string(dir.join("BENCH_storm.json")).unwrap();
    assert!(artefact.contains("\"verdicts_sound\":true"), "{artefact}");
    assert!(artefact.contains("\"artefact\":\"storm\""), "{artefact}");
    std::fs::remove_dir_all(&dir).ok();
}
