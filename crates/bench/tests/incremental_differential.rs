//! End-to-end differential test for `IntegrationConfig::incremental`:
//! randomized counter workloads (random size, context restrictiveness, and
//! optional fault depth) must produce *identical* integration reports —
//! verdict, iteration count, per-iteration product sizes, violated
//! properties, rendered counterexample traces, and learned-model sizes —
//! whether the loop recomposes incrementally or rebuilds cold.

use muml_bench::workload::{counter_workload, seed_fault};
use muml_core::{verify_integration, IntegrationConfig, IntegrationReport, LegacyUnit};
use muml_legacy::PortMap;

struct Lcg(u64);

impl Lcg {
    fn below(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % n
    }
}

fn run(n: usize, k: usize, fault_depth: Option<usize>, incremental: bool) -> IntegrationReport {
    let mut w = counter_workload(n, k);
    if let Some(d) = fault_depth {
        seed_fault(&mut w, d);
    }
    let mut units = [LegacyUnit::new(
        &mut w.component,
        PortMap::with_default("p"),
    )];
    verify_integration(
        &w.universe,
        &w.context,
        &[],
        &mut units,
        &IntegrationConfig::default().with_incremental(incremental),
    )
    .expect("counter loop terminates")
}

fn assert_reports_identical(tag: &str, cold: &IntegrationReport, incr: &IntegrationReport) {
    assert_eq!(
        cold.verdict.proven(),
        incr.verdict.proven(),
        "{tag}: verdicts diverge"
    );
    assert_eq!(
        cold.stats.iterations, incr.stats.iterations,
        "{tag}: iteration counts diverge"
    );
    assert_eq!(
        cold.iterations.len(),
        incr.iterations.len(),
        "{tag}: iteration-record counts diverge"
    );
    for (a, b) in cold.iterations.iter().zip(&incr.iterations) {
        let i = a.index;
        assert_eq!(
            a.composed_states, b.composed_states,
            "{tag} iteration {i}: product sizes diverge"
        );
        assert_eq!(
            a.violated, b.violated,
            "{tag} iteration {i}: violated properties diverge"
        );
        assert_eq!(
            a.counterexample, b.counterexample,
            "{tag} iteration {i}: counterexample traces diverge"
        );
        assert_eq!(
            a.outcome, b.outcome,
            "{tag} iteration {i}: outcomes diverge"
        );
        assert_eq!(
            a.knowledge, b.knowledge,
            "{tag} iteration {i}: learned knowledge diverges"
        );
    }
    assert_eq!(
        cold.learned_sizes(),
        incr.learned_sizes(),
        "{tag}: learned models diverge"
    );
    // Cold mode must never have taken the splice path.
    assert_eq!(cold.stats.recompose_incremental, 0, "{tag}");
}

#[test]
fn randomized_counter_loops_agree_between_cold_and_incremental() {
    let mut rng = Lcg(0x6D616368696E65);
    let mut incremental_splices = 0usize;
    let mut fault_runs = 0usize;
    for case in 0..24 {
        let n = 4 + rng.below(12) as usize; // component size 4..=15
        let k = 2 + rng.below((n - 3) as u64) as usize; // pushes 2..=n-2
        let fault_depth = if rng.below(2) == 0 {
            fault_runs += 1;
            Some(1 + rng.below((n - 2) as u64) as usize) // depth 1..=n-2
        } else {
            None
        };
        let tag = format!("case {case}: n={n} k={k} fault={fault_depth:?}");
        let cold = run(n, k, fault_depth, false);
        let incr = run(n, k, fault_depth, true);
        assert_reports_identical(&tag, &cold, &incr);
        incremental_splices += incr.stats.recompose_incremental;
    }
    assert!(
        incremental_splices > 0,
        "no run ever took the incremental splice path"
    );
    assert!(fault_runs > 0, "the fault matrix was never sampled");
}
