//! Experiment runners for the tables T-A … T-E of DESIGN.md.
//!
//! Every runner measures all methods with the *same* cost metric, taken
//! directly from the component: lifetime resets and symbols driven. The
//! paper's claims under test:
//!
//! * **C3 — fast conflict detection**: a fault reachable under the context
//!   is found after few iterations/steps, with no false negatives.
//! * **C4 — partial learning**: the paper's approach learns only the
//!   context-relevant fraction of the component; full regular inference
//!   (`L*` + conformance) always learns everything and pays the
//!   Vasilevskii/Chow suite, exponential in the state-bound gap.

use muml_core::{verify_integration, IntegrationConfig, IntegrationVerdict, LegacyUnit};
use muml_inference::{
    black_box_check, learn, BbcConfig, BbcVerdict, CexProcessing, ComponentOracle, LstarLimits,
    WMethodOracle,
};
use muml_legacy::{LegacyComponent, PortMap};
use muml_logic::{check_all, Formula, Verdict};

use crate::workload::{
    counter_alphabet, counter_workload, seed_fault, twin_workload, CounterWorkload,
};

/// The cost of one method on one workload.
#[derive(Debug, Clone)]
pub struct MethodCost {
    /// Method name.
    pub method: &'static str,
    /// Outcome summary (`proven`, `fault`, `verified`, …).
    pub outcome: String,
    /// Component resets performed.
    pub resets: u64,
    /// Input symbols driven into the component.
    pub steps: u64,
    /// States of the final learned model / hypothesis.
    pub learned_states: usize,
    /// Verification iterations (ours) or refinement rounds (baselines).
    pub rounds: usize,
}

/// Runs the paper's approach on a counter workload.
pub fn run_ours(w: &CounterWorkload) -> MethodCost {
    let mut component = w.component.clone();
    let u = &w.universe;
    let ports = PortMap::with_default("port");
    let report = {
        let mut units = [LegacyUnit::new(&mut component, ports)];
        verify_integration(
            u,
            &w.context,
            &[],
            &mut units,
            &IntegrationConfig::default(),
        )
        .expect("integration terminates")
    };
    let outcome = match &report.verdict {
        IntegrationVerdict::Proven => "proven".to_owned(),
        IntegrationVerdict::RealFault { .. } => "fault".to_owned(),
        IntegrationVerdict::Inconclusive { .. } => "inconclusive".to_owned(),
    };
    MethodCost {
        method: "ours",
        outcome,
        resets: component.resets(),
        steps: component.total_steps(),
        learned_states: report.learned_sizes()[0].0,
        rounds: report.stats.iterations,
    }
}

/// Runs plain `L*` with a W-method equivalence oracle (bound = true state
/// count), then model checks the learned model against the context —
/// "learn everything, then verify".
pub fn run_lstar_then_check(w: &CounterWorkload) -> MethodCost {
    run_lstar_variant(w, CexProcessing::AddAllPrefixes, "lstar+check")
}

/// Like [`run_lstar_then_check`] with Rivest–Schapire counterexample
/// processing — the query-optimized `L*` variant.
pub fn run_lstar_rs_then_check(w: &CounterWorkload) -> MethodCost {
    run_lstar_variant(w, CexProcessing::RivestSchapire, "lstar-rs+check")
}

fn run_lstar_variant(
    w: &CounterWorkload,
    cex_processing: CexProcessing,
    method: &'static str,
) -> MethodCost {
    let mut component = w.component.clone();
    let u = &w.universe;
    let interface = component.interface();
    let alphabet = counter_alphabet(u);
    let (hypothesis, rounds) = {
        let mut oracle = ComponentOracle::new(&mut component);
        let mut eq = WMethodOracle::new(w.n);
        let res = learn(
            &mut oracle,
            alphabet,
            &mut eq,
            &LstarLimits {
                cex_processing,
                ..LstarLimits::default()
            },
        );
        (res.hypothesis, res.rounds)
    };
    let hyp_auto = hypothesis.to_automaton(u, "hypothesis", interface);
    let comp = muml_automata::compose2(&w.context, &hyp_auto).expect("composes");
    let verdict = check_all(&comp.automaton, &[Formula::deadlock_free()]).expect("checkable");
    let outcome = match verdict {
        Verdict::Holds => "verified".to_owned(),
        Verdict::Violated(_) => "fault".to_owned(),
    };
    MethodCost {
        method,
        outcome,
        resets: component.resets(),
        steps: component.total_steps(),
        learned_states: hypothesis.state_count,
        rounds,
    }
}

/// Runs black-box checking (adaptive model checking).
pub fn run_bbc(w: &CounterWorkload) -> MethodCost {
    let mut component = w.component.clone();
    let u = &w.universe;
    let alphabet = counter_alphabet(u);
    let res = black_box_check(
        u,
        &w.context,
        &[],
        &mut component,
        alphabet,
        &BbcConfig {
            max_states: w.n,
            max_rounds: 500,
        },
    )
    .expect("bbc runs");
    let outcome = match res.verdict {
        BbcVerdict::Verified => "verified".to_owned(),
        BbcVerdict::RealFault { .. } => "fault".to_owned(),
        BbcVerdict::Inconclusive => "inconclusive".to_owned(),
    };
    MethodCost {
        method: "bbc",
        outcome,
        resets: component.resets(),
        steps: component.total_steps(),
        learned_states: res.hypothesis_states,
        rounds: res.rounds,
    }
}

/// Table T-A: method comparison over growing component sizes
/// (`k = n / 2` pushes — a moderately restrictive context).
pub fn table_a(sizes: &[usize]) -> Vec<(usize, Vec<MethodCost>)> {
    sizes
        .iter()
        .map(|&n| {
            let w = counter_workload(n, n / 2);
            let rows = vec![
                run_ours(&w),
                run_lstar_then_check(&w),
                run_lstar_rs_then_check(&w),
                run_bbc(&w),
            ];
            (n, rows)
        })
        .collect()
}

/// Table T-B: context restrictiveness sweep for a fixed component size —
/// the learned fraction of the paper's approach tracks `k`, the baselines'
/// does not.
pub fn table_b(n: usize, pushes: &[usize]) -> Vec<(usize, MethodCost, MethodCost)> {
    pushes
        .iter()
        .map(|&k| {
            let w = counter_workload(n, k);
            (k, run_ours(&w), run_lstar_then_check(&w))
        })
        .collect()
}

/// Table T-C: steps until a seeded fault at depth `d` is *confirmed* (the
/// context pushes deep enough to reach it). All methods must report the
/// fault — no false negatives.
pub fn table_c(n: usize, depths: &[usize]) -> Vec<(usize, Vec<MethodCost>)> {
    depths
        .iter()
        .map(|&d| {
            let mut w = counter_workload(n, n - 2);
            seed_fault(&mut w, d);
            let rows = vec![run_ours(&w), run_lstar_then_check(&w), run_bbc(&w)];
            (d, rows)
        })
        .collect()
}

/// Table T-E: multi-legacy (twin counters) vs. the equivalent single run.
pub fn table_e(n: usize, k: usize) -> (MethodCost, MethodCost) {
    // Single counter, same push budget.
    let single = run_ours(&counter_workload(n, k));
    // Twin counters learned in parallel.
    let w = twin_workload(n, k);
    let u = &w.universe;
    let mut left = w.left.clone();
    let mut right = w.right.clone();
    let report = {
        let mut units = [
            LegacyUnit::new(&mut left, PortMap::with_default("p1")),
            LegacyUnit::new(&mut right, PortMap::with_default("p2")),
        ];
        verify_integration(
            u,
            &w.context,
            &[],
            &mut units,
            &IntegrationConfig::default(),
        )
        .expect("twin integration terminates")
    };
    let twin = MethodCost {
        method: "ours-twin",
        outcome: match &report.verdict {
            IntegrationVerdict::Proven => "proven".to_owned(),
            IntegrationVerdict::RealFault { .. } => "fault".to_owned(),
            IntegrationVerdict::Inconclusive { .. } => "inconclusive".to_owned(),
        },
        resets: left.resets() + right.resets(),
        steps: left.total_steps() + right.total_steps(),
        learned_states: report.learned_sizes().iter().map(|(s, _)| s).sum(),
        rounds: report.stats.iterations,
    };
    (single, twin)
}

/// Renders a table of `(param, rows)` as aligned text.
pub fn render_rows(header: &str, param_name: &str, table: &[(usize, Vec<MethodCost>)]) -> String {
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    out.push_str(&format!(
        "{param_name:>6} {:<12} {:<10} {:>8} {:>10} {:>8} {:>7}\n",
        "method", "outcome", "resets", "steps", "states", "rounds"
    ));
    for (p, rows) in table {
        for r in rows {
            out.push_str(&format!(
                "{p:>6} {:<12} {:<10} {:>8} {:>10} {:>8} {:>7}\n",
                r.method, r.outcome, r.resets, r.steps, r.learned_states, r.rounds
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_proves_restricted_counter_with_partial_learning() {
        let w = counter_workload(8, 3);
        let cost = run_ours(&w);
        assert_eq!(cost.outcome, "proven");
        // Only the context-reachable prefix is learned.
        assert!(cost.learned_states <= 5, "{cost:?}");
        assert!(cost.learned_states < w.n);
    }

    #[test]
    fn lstar_learns_everything() {
        let w = counter_workload(6, 2);
        let cost = run_lstar_then_check(&w);
        assert_eq!(cost.outcome, "verified");
        assert_eq!(cost.learned_states, 6); // the whole component
    }

    #[test]
    fn rivest_schapire_variant_agrees_and_is_no_costlier() {
        let w = counter_workload(8, 4);
        let plain = run_lstar_then_check(&w);
        let rs = run_lstar_rs_then_check(&w);
        assert_eq!(plain.outcome, rs.outcome);
        assert_eq!(plain.learned_states, rs.learned_states);
        assert!(
            rs.steps <= plain.steps,
            "rs {} vs plain {}",
            rs.steps,
            plain.steps
        );
    }

    #[test]
    fn all_methods_confirm_reachable_fault() {
        let mut w = counter_workload(6, 4);
        seed_fault(&mut w, 2);
        for cost in [run_ours(&w), run_lstar_then_check(&w), run_bbc(&w)] {
            assert_eq!(cost.outcome, "fault", "{cost:?}");
        }
    }

    #[test]
    fn ours_is_cheaper_under_restrictive_context() {
        // claim C4, quantified: with k ≪ n the paper's approach drives far
        // fewer symbols than full learning.
        let w = counter_workload(10, 2);
        let ours = run_ours(&w);
        let lstar = run_lstar_then_check(&w);
        assert_eq!(ours.outcome, "proven");
        assert_eq!(lstar.outcome, "verified");
        assert!(
            ours.steps < lstar.steps,
            "ours {} vs lstar {}",
            ours.steps,
            lstar.steps
        );
        assert!(ours.learned_states < lstar.learned_states);
    }

    #[test]
    fn twin_integration_terminates() {
        let (single, twin) = table_e(4, 2);
        assert_eq!(single.outcome, "proven");
        assert_eq!(twin.outcome, "proven");
        assert!(twin.learned_states >= single.learned_states);
    }

    #[test]
    fn render_is_aligned() {
        let table = vec![(4usize, vec![run_ours(&counter_workload(4, 2))])];
        let text = render_rows("T-A", "n", &table);
        assert!(text.contains("ours"));
        assert!(text.contains("resets"));
    }
}
