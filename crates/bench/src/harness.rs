//! A minimal micro-benchmark harness for the `[[bench]]` targets.
//!
//! The workspace builds hermetically without a crate registry, so
//! `criterion` is not available; this module provides the small subset the
//! benches need: named groups, per-benchmark sample counts, and a
//! min/median/mean report on stderr-free stdout. Timings use
//! [`std::time::Instant`] and results pass through [`std::hint::black_box`]
//! so the optimizer cannot elide the measured work.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark group: a named collection of measurements that prints a
/// table row per benchmark as it runs.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Creates a group; `samples` defaults to 20.
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group {
            name: name.to_owned(),
            samples: 20,
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size(0)");
        self.samples = samples;
        self
    }

    /// Runs `f` once untimed (warm-up) and then `samples` timed times,
    /// reporting min/median/mean wall-clock per call.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "  {}/{id}: min {} median {} mean {} ({} samples)",
            self.name,
            fmt(min),
            fmt(median),
            fmt(mean),
            self.samples
        );
    }

    /// Ends the group (purely cosmetic; mirrors the criterion API shape).
    pub fn finish(&mut self) {
        println!();
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1.0e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1.0e6)
    } else {
        format!("{:.2}s", ns as f64 / 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let mut calls = 0usize;
        let mut g = Group::new("test");
        g.sample_size(5).bench("count", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 6); // 1 warm-up + 5 samples
    }
}
