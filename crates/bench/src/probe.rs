//! Probe benchmark: the prefix-sharing trace cache and parallel frontier
//! probes against the uncached serial executor, on frontier-heavy counter
//! workloads with simulated harness latency.
//!
//! Each cell runs the identical integration twice:
//!
//! 1. **serial** — trace cache disabled, one worker: every counterexample
//!    test and frontier probe re-drives the rig from reset (the
//!    `3·(|w|+1)` record/replay cost per word);
//! 2. **cached** — trace cache enabled, four workers: repeated words are
//!    served from the trie, frontier probes resume from the checkpoint at
//!    the end of the shared prefix, and batches run on cloned rigs.
//!
//! The benchmark *hard-asserts* that both runs agree on the verdict and on
//! the final learned models (snapshot-for-snapshot — the cache is a pure
//! accelerator), and that the cached run drives the rig through at most
//! half of the serial run's steps across the campaign. The per-step
//! [`LatentComponent`](muml_legacy::LatentComponent) latency weights the
//! wall-clock numbers the way a real test rig would: with a slow rig, the
//! saved steps dominate the run time.

use std::time::{Duration, Instant};

use muml_automata::IncompleteSnapshot;
use muml_core::{verify_integration, IntegrationConfig, IntegrationReport, LegacyUnit};
use muml_legacy::{LatentComponent, PortMap};
use muml_obs::json::Json;

use crate::workload::{counter_workload, seed_fault};

/// One campaign cell: a counter workload, optionally fault-seeded.
#[derive(Debug, Clone, Copy)]
struct ProbeCell {
    name: &'static str,
    n: usize,
    k: usize,
    fault_depth: Option<usize>,
}

const CELLS: [ProbeCell; 4] = [
    ProbeCell {
        name: "counter-n10-k8/correct",
        n: 10,
        k: 8,
        fault_depth: None,
    },
    ProbeCell {
        name: "counter-n12-k10/correct",
        n: 12,
        k: 10,
        fault_depth: None,
    },
    ProbeCell {
        name: "counter-n12-k10/early-top[6]",
        n: 12,
        k: 10,
        fault_depth: Some(6),
    },
    ProbeCell {
        name: "counter-n8-k6/early-top[3]",
        n: 8,
        k: 6,
        fault_depth: Some(3),
    },
];

/// One cell across the two runs.
#[derive(Debug, Clone)]
pub struct ProbeJobRow {
    /// Cell name (`workload/fault`).
    pub name: String,
    /// The (identical) verdict of both runs.
    pub outcome: String,
    /// Rig steps the serial run drove.
    pub driven_serial: usize,
    /// Rig steps the cached run drove.
    pub driven_cached: usize,
    /// Test executions of the serial run.
    pub tests_serial: usize,
    /// Test executions of the cached run.
    pub tests_cached: usize,
    /// Full trace-cache hits of the cached run.
    pub cache_hits: usize,
    /// Rig steps the cache saved versus its serial counterfactual.
    pub cache_saved: usize,
    /// Pooled probe/quorum batches of the cached run.
    pub parallel_batches: usize,
    /// Counterexample tests skipped by the dedup guard.
    pub dedup_skipped: usize,
}

/// Aggregated result of [`probe_campaign`].
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// Per-cell rows, in campaign order.
    pub jobs: Vec<ProbeJobRow>,
    /// Simulated per-step rig latency, in microseconds.
    pub latency_us: u64,
    /// Total rig steps of the serial runs.
    pub serial_driven: usize,
    /// Total rig steps of the cached runs.
    pub cached_driven: usize,
    /// Wall-clock nanoseconds of the serial runs.
    pub serial_nanos: u64,
    /// Wall-clock nanoseconds of the cached runs.
    pub cached_nanos: u64,
}

fn snapshots(report: &IntegrationReport) -> Vec<IncompleteSnapshot> {
    report.learned.iter().map(|m| m.to_snapshot()).collect()
}

/// Runs the two-way campaign and asserts verdict identity, learned-model
/// identity, and the ≥2× driven-step reduction.
pub fn probe_campaign(latency: Duration) -> ProbeReport {
    let mut jobs = Vec::with_capacity(CELLS.len());
    let mut serial_driven = 0usize;
    let mut cached_driven = 0usize;
    let mut serial_nanos = 0u64;
    let mut cached_nanos = 0u64;

    for cell in CELLS {
        let run = |trace_cache: bool, parallelism: usize| -> IntegrationReport {
            let mut w = counter_workload(cell.n, cell.k);
            if let Some(d) = cell.fault_depth {
                seed_fault(&mut w, d);
            }
            let mut component = LatentComponent::new(w.component, latency);
            let mut units = [LegacyUnit::new(
                &mut component,
                PortMap::with_default("port"),
            )];
            verify_integration(
                &w.universe,
                &w.context,
                &[],
                &mut units,
                &IntegrationConfig::default()
                    .with_trace_cache(trace_cache)
                    .with_test_parallelism(parallelism),
            )
            .expect("integration terminates")
        };

        let t = Instant::now();
        let serial = run(false, 1);
        serial_nanos += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let cached = run(true, 4);
        cached_nanos += t.elapsed().as_nanos() as u64;

        // The cache is a pure accelerator: it may only change how fast the
        // verdict is reached, never which one — nor what was learned.
        assert_eq!(
            format!("{:?}", cached.verdict),
            format!("{:?}", serial.verdict),
            "{}: cached and serial runs must agree on the verdict",
            cell.name
        );
        assert_eq!(
            snapshots(&cached),
            snapshots(&serial),
            "{}: cached and serial runs must learn identical models",
            cell.name
        );
        assert!(
            cached.stats.trace_cache_hits > 0,
            "{}: the frontier-heavy workload must actually exercise the cache",
            cell.name
        );

        serial_driven += serial.stats.driven_steps;
        cached_driven += cached.stats.driven_steps;
        jobs.push(ProbeJobRow {
            name: cell.name.to_owned(),
            outcome: format!("{:?}", serial.verdict)
                .split([' ', '{'])
                .next()
                .unwrap_or("unknown")
                .to_owned(),
            driven_serial: serial.stats.driven_steps,
            driven_cached: cached.stats.driven_steps,
            tests_serial: serial.stats.tests_executed,
            tests_cached: cached.stats.tests_executed,
            cache_hits: cached.stats.trace_cache_hits,
            cache_saved: cached.stats.trace_cache_saved_steps,
            parallel_batches: cached.stats.parallel_batches,
            dedup_skipped: cached.stats.dedup_skipped,
        });
    }

    let report = ProbeReport {
        jobs,
        latency_us: latency.as_micros() as u64,
        serial_driven,
        cached_driven,
        serial_nanos,
        cached_nanos,
    };
    assert!(
        report.cached_driven * 2 <= report.serial_driven,
        "trace cache must halve the driven rig steps (serial {} vs cached {})",
        report.serial_driven,
        report.cached_driven
    );
    report
}

impl ProbeReport {
    /// Fraction of the serial run's rig steps the cache avoided.
    pub fn driven_reduction(&self) -> f64 {
        if self.serial_driven == 0 {
            return 0.0;
        }
        1.0 - self.cached_driven as f64 / self.serial_driven as f64
    }

    /// Wall-clock speedup of the cached runs over the serial runs.
    pub fn speedup(&self) -> f64 {
        if self.cached_nanos == 0 {
            return 0.0;
        }
        self.serial_nanos as f64 / self.cached_nanos as f64
    }

    /// The `BENCH_probe.json` document.
    pub fn to_json(&self) -> Json {
        let job_json = |j: &ProbeJobRow| {
            Json::Object(vec![
                ("name".into(), Json::Str(j.name.clone())),
                ("outcome".into(), Json::Str(j.outcome.clone())),
                ("driven_serial".into(), Json::from_usize(j.driven_serial)),
                ("driven_cached".into(), Json::from_usize(j.driven_cached)),
                ("tests_serial".into(), Json::from_usize(j.tests_serial)),
                ("tests_cached".into(), Json::from_usize(j.tests_cached)),
                ("cache_hits".into(), Json::from_usize(j.cache_hits)),
                ("cache_saved".into(), Json::from_usize(j.cache_saved)),
                (
                    "parallel_batches".into(),
                    Json::from_usize(j.parallel_batches),
                ),
                ("dedup_skipped".into(), Json::from_usize(j.dedup_skipped)),
            ])
        };
        Json::Object(vec![
            ("artefact".into(), Json::Str("probe".into())),
            // Reaching serialization means every hard assertion held:
            // identical verdicts, identical learned models, ≥2× fewer
            // driven steps.
            ("verdicts_identical".into(), Json::Bool(true)),
            ("learned_identical".into(), Json::Bool(true)),
            ("latency_us".into(), Json::from_u64(self.latency_us)),
            ("serial_driven".into(), Json::from_usize(self.serial_driven)),
            ("cached_driven".into(), Json::from_usize(self.cached_driven)),
            (
                "driven_reduction".into(),
                Json::Float(self.driven_reduction()),
            ),
            ("serial_nanos".into(), Json::from_u64(self.serial_nanos)),
            ("cached_nanos".into(), Json::from_u64(self.cached_nanos)),
            ("speedup".into(), Json::Float(self.speedup())),
            (
                "jobs".into(),
                Json::Array(self.jobs.iter().map(job_json).collect()),
            ),
        ])
    }

    /// Human-readable per-cell table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<30} {:>10} {:>13} {:>13} {:>10} {:>10} {:>8}\n",
            "cell", "outcome", "driven serial", "driven cached", "hits", "saved", "deduped"
        ));
        for j in &self.jobs {
            out.push_str(&format!(
                "{:<30} {:>10} {:>13} {:>13} {:>10} {:>10} {:>8}\n",
                j.name,
                j.outcome,
                j.driven_serial,
                j.driven_cached,
                j.cache_hits,
                j.cache_saved,
                j.dedup_skipped
            ));
        }
        out.push_str(&format!(
            "total driven: serial {} / cached {} ({:.0}% saved), \
             wall: {:.2}ms vs {:.2}ms ({:.1}x) at {}us/step\n",
            self.serial_driven,
            self.cached_driven,
            100.0 * self.driven_reduction(),
            self.serial_nanos as f64 / 1e6,
            self.cached_nanos as f64 / 1e6,
            self.speedup(),
            self.latency_us
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_campaign_halves_the_rig_work() {
        // The hard assertions (verdict identity, learned-model identity,
        // ≥2× step reduction) live inside probe_campaign; completing is
        // the test. Zero latency keeps the suite fast.
        let report = probe_campaign(Duration::ZERO);
        assert_eq!(report.jobs.len(), 4);
        assert!(report.driven_reduction() >= 0.5);
        assert!(report
            .jobs
            .iter()
            .any(|j| j.dedup_skipped > 0 || j.cache_hits > 0));
        let doc = report.to_json();
        assert_eq!(
            doc.get("artefact").and_then(Json::as_str),
            Some("probe"),
            "{doc:?}"
        );
        assert!(report.render().contains("total driven: serial"));
    }
}
