//! Warm-start benchmark: the RailCab campaign against a content-addressed
//! store, twice.
//!
//! Three runs of the identical variants × faults matrix:
//!
//! 1. **baseline** — store disabled, the reference verdicts;
//! 2. **run 1** — store attached (normally empty): every cell misses, runs
//!    cold, and persists its final learned model;
//! 3. **run 2** — same store: every cell seeds from its snapshot.
//!
//! The benchmark *hard-asserts* that all three runs agree verdict-for-
//! verdict (the store is a pure accelerator — a snapshot may only change
//! how fast a verdict is reached, never which one), and that run 2 drives
//! the rig through at most half of run 1's steps when the store started
//! empty. When the store was pre-warmed (run 1 already hit), the step
//! reduction is not comparable and only the verdict identity is checked —
//! which is exactly the cache-poisoning guard a CI re-run wants.

use std::path::Path;

use muml_fleet::{run_fleet, FleetConfig, FleetReport, JobOutcome};
use muml_obs::json::Json;
use muml_obs::NullFleetSink;

use crate::campaign::{railcab_campaign, CampaignOptions};

/// One campaign cell across the three runs.
#[derive(Debug, Clone)]
pub struct WarmJobRow {
    /// Job name (`variant/fault` or `variant/baseline`).
    pub name: String,
    /// The (identical) outcome name of all three runs.
    pub outcome: String,
    /// Rig steps the cell drove in run 1 (cold).
    pub driven_cold: usize,
    /// Rig steps the cell drove in run 2 (seeded).
    pub driven_warm: usize,
    /// Test executions (membership queries) of run 1.
    pub tests_cold: usize,
    /// Test executions of run 2.
    pub tests_warm: usize,
}

/// Aggregated result of [`warm_campaign`].
#[derive(Debug, Clone)]
pub struct WarmReport {
    /// Per-cell rows, in job-id order.
    pub jobs: Vec<WarmJobRow>,
    /// Whether the store already held snapshots before run 1 (a CI re-run
    /// against a cached store); suspends the step-reduction assertion.
    pub store_prewarmed: bool,
    /// Total rig steps of the store-disabled baseline.
    pub baseline_driven: usize,
    /// Total rig steps of run 1.
    pub run1_driven: usize,
    /// Total rig steps of run 2.
    pub run2_driven: usize,
    /// Total test executions of run 1.
    pub run1_tests: usize,
    /// Total test executions of run 2.
    pub run2_tests: usize,
}

fn outcomes(report: &FleetReport) -> Vec<(usize, JobOutcome)> {
    report
        .results
        .iter()
        .map(|r| (r.request.id, r.outcome.clone()))
        .collect()
}

/// Whether `dir` already holds at least one snapshot (any `*.json` beside
/// the index).
fn has_snapshots(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries.filter_map(Result::ok).any(|e| {
        let path = e.path();
        path.extension().is_some_and(|x| x == "json")
            && path.file_name().is_some_and(|n| n != "index.json")
    })
}

/// Runs the three-way campaign against the store rooted at `store_dir` and
/// asserts verdict identity (always) and the ≥2× driven-step reduction
/// (when the store started empty).
pub fn warm_campaign(store_dir: &Path) -> WarmReport {
    let options = CampaignOptions {
        latency: std::time::Duration::ZERO,
        ..CampaignOptions::default()
    };
    let store_prewarmed = has_snapshots(store_dir);

    let run = |config: FleetConfig| -> FleetReport {
        run_fleet(railcab_campaign(&options), &config, &mut NullFleetSink)
    };
    let baseline = run(FleetConfig::default().with_workers(4));
    let run1 = run(FleetConfig::default().with_workers(4).with_store(store_dir));
    let run2 = run(FleetConfig::default().with_workers(4).with_store(store_dir));

    assert_eq!(
        outcomes(&run1),
        outcomes(&baseline),
        "store-backed run 1 must reproduce the store-disabled verdicts"
    );
    assert_eq!(
        outcomes(&run2),
        outcomes(&baseline),
        "seeded run 2 must reproduce the store-disabled verdicts"
    );

    let driven =
        |r: &FleetReport| -> usize { r.results.iter().map(|j| j.stats.driven_steps).sum() };
    let tests =
        |r: &FleetReport| -> usize { r.results.iter().map(|j| j.stats.tests_executed).sum() };
    let report = WarmReport {
        jobs: run1
            .results
            .iter()
            .zip(&run2.results)
            .map(|(cold, warm)| WarmJobRow {
                name: cold.request.name.clone(),
                outcome: cold.outcome.name().to_owned(),
                driven_cold: cold.stats.driven_steps,
                driven_warm: warm.stats.driven_steps,
                tests_cold: cold.stats.tests_executed,
                tests_warm: warm.stats.tests_executed,
            })
            .collect(),
        store_prewarmed,
        baseline_driven: driven(&baseline),
        run1_driven: driven(&run1),
        run2_driven: driven(&run2),
        run1_tests: tests(&run1),
        run2_tests: tests(&run2),
    };
    if !store_prewarmed {
        assert!(
            report.run2_driven * 2 <= report.run1_driven,
            "seeded run must drive at most half the cold run's rig steps \
             (cold {} vs warm {})",
            report.run1_driven,
            report.run2_driven
        );
    }
    report
}

impl WarmReport {
    /// Fraction of run 1's driven steps that run 2 avoided.
    pub fn driven_reduction(&self) -> f64 {
        if self.run1_driven == 0 {
            return 0.0;
        }
        1.0 - self.run2_driven as f64 / self.run1_driven as f64
    }

    /// Fraction of run 1's test executions that run 2 avoided.
    pub fn test_reduction(&self) -> f64 {
        if self.run1_tests == 0 {
            return 0.0;
        }
        1.0 - self.run2_tests as f64 / self.run1_tests as f64
    }

    /// The `BENCH_warm.json` document (schema: DESIGN.md §16).
    pub fn to_json(&self) -> Json {
        let job_json = |j: &WarmJobRow| {
            Json::Object(vec![
                ("name".into(), Json::Str(j.name.clone())),
                ("outcome".into(), Json::Str(j.outcome.clone())),
                ("driven_cold".into(), Json::from_usize(j.driven_cold)),
                ("driven_warm".into(), Json::from_usize(j.driven_warm)),
                ("tests_cold".into(), Json::from_usize(j.tests_cold)),
                ("tests_warm".into(), Json::from_usize(j.tests_warm)),
            ])
        };
        Json::Object(vec![
            ("artefact".into(), Json::Str("warm".into())),
            // Reaching serialization means every hard assertion held.
            ("verdicts_identical".into(), Json::Bool(true)),
            ("store_prewarmed".into(), Json::Bool(self.store_prewarmed)),
            (
                "baseline_driven".into(),
                Json::from_usize(self.baseline_driven),
            ),
            ("run1_driven".into(), Json::from_usize(self.run1_driven)),
            ("run2_driven".into(), Json::from_usize(self.run2_driven)),
            ("run1_tests".into(), Json::from_usize(self.run1_tests)),
            ("run2_tests".into(), Json::from_usize(self.run2_tests)),
            (
                "driven_reduction".into(),
                Json::Float(self.driven_reduction()),
            ),
            ("test_reduction".into(), Json::Float(self.test_reduction())),
            (
                "jobs".into(),
                Json::Array(self.jobs.iter().map(job_json).collect()),
            ),
        ])
    }

    /// Human-readable per-cell table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:>12} {:>12} {:>12} {:>11} {:>11}\n",
            "job", "outcome", "driven cold", "driven warm", "tests cold", "tests warm"
        ));
        for j in &self.jobs {
            out.push_str(&format!(
                "{:<36} {:>12} {:>12} {:>12} {:>11} {:>11}\n",
                j.name, j.outcome, j.driven_cold, j.driven_warm, j.tests_cold, j.tests_warm
            ));
        }
        out.push_str(&format!(
            "total driven: baseline {} / cold {} / warm {} ({:.0}% saved), \
             tests: cold {} / warm {} ({:.0}% saved)\n",
            self.baseline_driven,
            self.run1_driven,
            self.run2_driven,
            100.0 * self.driven_reduction(),
            self.run1_tests,
            self.run2_tests,
            100.0 * self.test_reduction()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn warm_campaign_halves_the_rig_work() {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "muml-warm-bench-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // The assertions (verdict identity, ≥2× step reduction) live
        // inside warm_campaign; completing is the test.
        let report = warm_campaign(&dir);
        assert!(!report.store_prewarmed);
        assert!(!report.jobs.is_empty());
        assert!(report.driven_reduction() >= 0.5);
        // A second invocation sees the warmed store and still agrees.
        let again = warm_campaign(&dir);
        assert!(again.store_prewarmed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
