//! `repro` — regenerates every figure, listing, and experiment table of the
//! paper (DESIGN.md §3 maps each artefact to its command).
//!
//! ```text
//! repro fig1|fig2|fig3|fig4|fig5|fig6|fig7
//! repro fig2 --json          # also writes BENCH_loop.json (loop telemetry)
//! repro listing1_1|listing1_2|listing1_3|listing1_4|listing1_5
//! repro table_a|table_b|table_c|table_d|table_e|table_f
//! repro check                # old vs new checker kernel, printed
//! repro check --json         # also writes BENCH_check.json
//! repro fleet [--jobs N]     # batch campaign, 1 worker vs N workers
//! repro fleet --json         # also writes BENCH_fleet.json
//! repro incr                 # incremental vs cold recompose+check
//! repro incr --json          # also writes BENCH_incr.json
//! repro storm                # flake storm: verdicts under rig fault rates
//! repro storm --json         # also writes BENCH_storm.json
//! repro serve [--clients N]  # daemon load test: N concurrent wire clients
//! repro serve --json         # also writes BENCH_serve.json
//! repro warm [--store DIR]   # warm-start: campaign twice against a store
//! repro warm --json          # also writes BENCH_warm.json
//! repro probe                # trace cache + parallel probes vs serial
//! repro probe --json         # also writes BENCH_probe.json
//! repro all
//! ```

use std::time::Instant;

use muml_automata::{
    chaotic_closure, compose, compose2, to_dot, Automaton, ComposeOptions, Composition,
    LazyProduct, Universe,
};
use muml_bench::experiments::{render_rows, table_a, table_b, table_c, table_e};
use muml_bench::workload::{counter_workload, ticker_workload};
use muml_core::{
    default_mapper, initial_knowledge, render_report, IntegrationReport, IntegrationVerdict,
};
use muml_logic::{
    check_all_with, fused_check_all, parse, Checker, Formula, ReferenceChecker, Verdict,
};
use muml_obs::json::Json;
use muml_obs::{Collector, LoopEvent, NullSink};
use muml_railcab::scenario;

const KNOWN: [&str; 26] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "listing1_1",
    "listing1_2",
    "listing1_3",
    "listing1_4",
    "listing1_5",
    "table_a",
    "table_b",
    "table_c",
    "table_d",
    "table_e",
    "table_f",
    "check",
    "fleet",
    "incr",
    "storm",
    "serve",
    "warm",
    "probe",
    "chaos",
];

/// The artefacts that support `--json`, and the file each one writes. Both
/// the usage text and the `--json` gate in `main` derive from this table,
/// so a new JSON-emitting subcommand is one entry here plus its dispatch
/// arm.
const JSON_SUBCOMMANDS: [(&str, &str); 9] = [
    ("fig2", "BENCH_loop.json"),
    ("check", "BENCH_check.json"),
    ("fleet", "BENCH_fleet.json"),
    ("incr", "BENCH_incr.json"),
    ("storm", "BENCH_storm.json"),
    ("serve", "BENCH_serve.json"),
    ("warm", "BENCH_warm.json"),
    ("probe", "BENCH_probe.json"),
    ("chaos", "BENCH_chaos.json"),
];

fn json_subcommand_names() -> String {
    JSON_SUBCOMMANDS
        .iter()
        .map(|(name, _)| format!("`{name}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn usage() {
    eprintln!("usage: repro <artefact> [--json] [--jobs N] [--clients N] [--store DIR]");
    eprintln!("  artefacts: {} or `all`", KNOWN.join("|"));
    let supported = JSON_SUBCOMMANDS
        .iter()
        .map(|(name, file)| format!("`{name}` (writes {file})"))
        .collect::<Vec<_>>()
        .join(", ");
    eprintln!("  --json is supported for {supported}");
    eprintln!("  --jobs N sets the `fleet` worker-pool size (default 4)");
    eprintln!("  --clients N sets the `serve` concurrent-client count (default 8)");
    eprintln!("  --store DIR sets the `warm` store directory (default: a fresh temp dir)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut workers: Option<usize> = None;
    let mut clients: Option<usize> = None;
    let mut store: Option<std::path::PathBuf> = None;
    let mut what: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--jobs" => {
                let value = iter.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n >= 1 => workers = Some(n),
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        usage();
                        std::process::exit(2);
                    }
                }
            }
            "--clients" => {
                let value = iter.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n >= 1 => clients = Some(n),
                    _ => {
                        eprintln!("--clients requires a positive integer");
                        usage();
                        std::process::exit(2);
                    }
                }
            }
            "--store" => match iter.next() {
                Some(dir) => store = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("--store requires a directory path");
                    usage();
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                usage();
                std::process::exit(2);
            }
            artefact => {
                what.get_or_insert_with(|| artefact.to_owned());
            }
        }
    }
    let what = what.as_deref().unwrap_or("all");
    if json && !JSON_SUBCOMMANDS.iter().any(|(name, _)| *name == what) {
        eprintln!("--json is only supported for {}", json_subcommand_names());
        usage();
        std::process::exit(2);
    }
    if workers.is_some() && what != "fleet" {
        eprintln!("--jobs is only supported for `fleet`");
        usage();
        std::process::exit(2);
    }
    if clients.is_some() && what != "serve" {
        eprintln!("--clients is only supported for `serve`");
        usage();
        std::process::exit(2);
    }
    if store.is_some() && what != "warm" {
        eprintln!("--store is only supported for `warm`");
        usage();
        std::process::exit(2);
    }
    if what == "all" {
        for k in KNOWN {
            run(k);
        }
    } else if KNOWN.contains(&what) {
        match (what, json) {
            ("fig2", true) => run_fig2_json(),
            ("check", _) => run_check(json),
            ("fleet", _) => run_fleet_cmd(workers.unwrap_or(4), json),
            ("incr", _) => run_incr(json),
            ("storm", _) => run_storm(json),
            ("serve", _) => run_serve_cmd(clients.unwrap_or(8), json),
            ("warm", _) => run_warm(json, store),
            ("probe", _) => run_probe(json),
            ("chaos", _) => run_chaos(json),
            _ => run(what),
        }
    } else {
        eprintln!("unknown artefact `{what}`");
        usage();
        std::process::exit(2);
    }
}

/// `repro fig2 --json`: run the Figure-2 walkthrough (correct shuttle) with
/// an event sink and write `BENCH_loop.json` — one per-iteration record per
/// loop round (phase timings, composed size, checker work, counterexample
/// length, replay steps, learning deltas) plus run-level totals.
fn run_fig2_json() {
    let u = Universe::new();
    // Warm-up pass: on this small artefact the phase timings are
    // microsecond-scale, so first-touch costs (allocator arenas, lazy
    // binding, page faults) would otherwise land in iteration 0 and
    // dominate the recorded numbers.
    let mut warm = muml_railcab::correct_shuttle(&u);
    let _ = scenario::integrate_with(&u, &mut warm, &mut NullSink);

    // Best of three: the workload is deterministic (only the `nanos`
    // payloads vary), and at this scale a single scheduler preemption can
    // double a run's timings, so the fastest run is the stable estimate.
    let mut best: Option<(Collector, IntegrationReport)> = None;
    for _ in 0..3 {
        let mut shuttle = muml_railcab::correct_shuttle(&u);
        let mut sink = Collector::new();
        let report = scenario::integrate_with(&u, &mut shuttle, &mut sink);
        let faster = match &best {
            None => true,
            Some((_, b)) => {
                report.stats.timings.check_ns + report.stats.timings.compose_ns
                    < b.stats.timings.check_ns + b.stats.timings.compose_ns
            }
        };
        if faster {
            best = Some((sink, report));
        }
    }
    let (sink, report) = best.expect("ran at least once");

    let mut iterations: Vec<Json> = Vec::new();
    for index in 0.. {
        let events = sink.iteration(index);
        if events.is_empty() {
            break;
        }
        iterations.push(iteration_record(index, &events));
    }
    let stats = &report.stats;
    let doc = Json::Object(vec![
        ("artefact".into(), Json::Str("fig2".into())),
        (
            "outcome".into(),
            Json::Str(
                if report.verdict.proven() {
                    "proven"
                } else {
                    "real_fault"
                }
                .into(),
            ),
        ),
        ("iterations".into(), Json::Array(iterations)),
        (
            "totals".into(),
            Json::Object(vec![
                ("iterations".into(), Json::from_usize(stats.iterations)),
                (
                    "peak_composed_states".into(),
                    Json::from_usize(stats.peak_composed_states),
                ),
                (
                    "tests_executed".into(),
                    Json::from_usize(stats.tests_executed),
                ),
                ("test_steps".into(), Json::from_usize(stats.test_steps)),
                ("driven_steps".into(), Json::from_usize(stats.driven_steps)),
                (
                    "checker_fixpoint_iterations".into(),
                    Json::from_u64(stats.checker_fixpoint_iterations),
                ),
                (
                    "checker_labeled_states".into(),
                    Json::from_u64(stats.checker_labeled_states),
                ),
                (
                    "expanded_labels".into(),
                    Json::from_u64(stats.expanded_labels),
                ),
                ("family_guards".into(), Json::from_u64(stats.family_guards)),
                (
                    "compose_ns".into(),
                    Json::from_u64(stats.timings.compose_ns),
                ),
                ("check_ns".into(), Json::from_u64(stats.timings.check_ns)),
                ("test_ns".into(), Json::from_u64(stats.timings.test_ns)),
                ("learn_ns".into(), Json::from_u64(stats.timings.learn_ns)),
                ("probe_ns".into(), Json::from_u64(stats.timings.probe_ns)),
            ]),
        ),
        (
            "events".into(),
            Json::Array(sink.events.iter().map(LoopEvent::to_json).collect()),
        ),
    ]);
    std::fs::write("BENCH_loop.json", doc.encode() + "\n").expect("write BENCH_loop.json");
    println!(
        "wrote BENCH_loop.json: {} iterations, {} events, outcome {}",
        report.stats.iterations,
        sink.events.len(),
        if report.verdict.proven() {
            "proven"
        } else {
            "real_fault"
        }
    );
}

/// Folds one iteration's events into a flat record.
fn iteration_record(index: usize, events: &[&LoopEvent]) -> Json {
    let mut product_states = 0usize;
    let mut composed_transitions = 0usize;
    let mut expanded_labels = 0u64;
    let mut family_guards = 0u64;
    let mut compose_ns = 0u64;
    let mut holds = false;
    let mut fixpoint_iterations = 0u64;
    let mut labeled_states = 0u64;
    let mut check_ns = 0u64;
    let mut counterexample_length: Option<usize> = None;
    let mut replay_steps = 0usize;
    let mut driven_steps = 0usize;
    let mut test_ns = 0u64;
    let mut delta_states = 0usize;
    let mut delta_transitions = 0usize;
    let mut delta_refusals = 0usize;
    let mut probes = 0usize;
    let mut probe_ns = 0u64;
    for e in events {
        match e {
            LoopEvent::Composed {
                product_states: ps,
                transitions,
                expanded_labels: el,
                family_guards: fg,
                nanos,
                ..
            } => {
                product_states = *ps;
                composed_transitions = *transitions;
                expanded_labels += el;
                family_guards += fg;
                compose_ns += nanos;
            }
            LoopEvent::ModelChecked {
                holds: h,
                fixpoint_iterations: fi,
                labeled_states: ls,
                nanos,
                ..
            } => {
                holds = *h;
                fixpoint_iterations += fi;
                labeled_states += ls;
                check_ns += nanos;
            }
            LoopEvent::CounterexampleExtracted { length, .. } => {
                counterexample_length.get_or_insert(*length);
            }
            LoopEvent::ReplayExecuted {
                steps,
                driven_steps: ds,
                nanos,
                ..
            } => {
                replay_steps += steps;
                driven_steps += ds;
                test_ns += nanos;
            }
            LoopEvent::LearnStep {
                delta_states: dq,
                delta_transitions: dt,
                delta_refusals: dr,
                ..
            } => {
                delta_states += dq;
                delta_transitions += dt;
                delta_refusals += dr;
            }
            LoopEvent::FrontierProbed {
                probes: p, nanos, ..
            } => {
                probes += p;
                probe_ns += nanos;
            }
            _ => {}
        }
    }
    Json::Object(vec![
        ("iteration".into(), Json::from_usize(index)),
        ("product_states".into(), Json::from_usize(product_states)),
        (
            "composed_transitions".into(),
            Json::from_usize(composed_transitions),
        ),
        ("expanded_labels".into(), Json::from_u64(expanded_labels)),
        ("family_guards".into(), Json::from_u64(family_guards)),
        ("holds".into(), Json::Bool(holds)),
        (
            "fixpoint_iterations".into(),
            Json::from_u64(fixpoint_iterations),
        ),
        ("labeled_states".into(), Json::from_u64(labeled_states)),
        (
            "counterexample_length".into(),
            match counterexample_length {
                Some(n) => Json::from_usize(n),
                None => Json::Null,
            },
        ),
        ("replay_steps".into(), Json::from_usize(replay_steps)),
        ("driven_steps".into(), Json::from_usize(driven_steps)),
        ("delta_states".into(), Json::from_usize(delta_states)),
        (
            "delta_transitions".into(),
            Json::from_usize(delta_transitions),
        ),
        ("delta_refusals".into(), Json::from_usize(delta_refusals)),
        ("probes".into(), Json::from_usize(probes)),
        ("compose_ns".into(), Json::from_u64(compose_ns)),
        ("check_ns".into(), Json::from_u64(check_ns)),
        ("test_ns".into(), Json::from_u64(test_ns)),
        ("probe_ns".into(), Json::from_u64(probe_ns)),
    ])
}

fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// The late-iteration composition of the counter workload: the component's
/// context-reachable prefix pre-learned, chaotically closed, composed with
/// the driver. Shared by `table_d` and `check`. Returns the closure state
/// count alongside the composition.
fn late_iteration_composition(w: &muml_bench::workload::CounterWorkload) -> (usize, Composition) {
    let n = w.n;
    let mapper = default_mapper("counter");
    let mut inc = initial_knowledge(&w.universe, &w.component, &mapper);
    let up = w.universe.signals(["up"]);
    let mut states = vec!["c0".to_owned()];
    let mut labels = Vec::new();
    for i in 1..=(n / 2) {
        states.push(format!("c{i}"));
        labels.push(muml_automata::Label::new(
            up,
            muml_automata::SignalSet::EMPTY,
        ));
    }
    inc.learn(&muml_automata::Observation::regular(states, labels))
        .expect("consistent");
    let chaos = w.universe.prop("__chaos__");
    let closure = chaotic_closure(&inc, Some(chaos));
    let comp = compose2(&w.context, &closure).expect("composes");
    (closure.state_count(), comp)
}

/// The property set `repro check` times both kernels on: deadlock freedom
/// plus a spread of unbounded (worklist) and bounded (backward-induction)
/// CCTL shapes over the only two predicates every composition carries.
const CHECK_FORMULAS: [&str; 6] = [
    "AG !deadlock",
    "EF deadlock",
    "AF[1,6] deadlock",
    "E[!__chaos__ U deadlock]",
    "AG (__chaos__ -> EF deadlock)",
    "EG !deadlock",
];

/// `repro check [--json]`: benchmarks the checking stack on two ladders
/// and, with `--json`, writes both to `BENCH_check.json`.
///
/// **Counter ladder** (`sizes` in the JSON): the pre-rewrite sweep kernel
/// ([`ReferenceChecker`]) against the bitset/worklist kernel ([`Checker`])
/// on the table-D compositions, with verdict agreement asserted. Timings
/// are taken warm (one discarded warm-up pass per size) and best-of-three
/// — as in `fig2 --json` — because at these sizes a single scheduler
/// preemption would otherwise dominate the recorded number.
///
/// **Ticker grid** (`fused` in the JSON): the fused on-the-fly product
/// checker ([`fused_check_all`]) against materialize-then-check on
/// `m^3`-state ticker products up to 10^6 states. Verdicts and
/// counterexample traces are hard-asserted equal on every co-run size
/// (and against the sweep kernel on the smallest), and every early-exit
/// case hard-asserts `states_expanded < product_states` — any divergence
/// aborts the run before a file is written.
fn run_check(json: bool) {
    heading("Check — sweep kernel (old) vs bitset/worklist kernel (new)");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>8} {:>10} {:>8}",
        "n", "composed", "old ns", "new ns", "speedup", "old iters", "new it"
    );
    let mut sizes: Vec<Json> = Vec::new();
    let (mut total_old_ns, mut total_new_ns) = (0u64, 0u64);
    for n in [8usize, 16, 32, 64, 128] {
        let w = counter_workload(n, n / 2);
        let (_, comp) = late_iteration_composition(&w);
        let fs: Vec<Formula> = CHECK_FORMULAS
            .iter()
            .map(|s| parse(&w.universe, s).expect("formula parses"))
            .collect();

        // Warm-up pass: first-touch costs (allocator arenas, page faults)
        // land here instead of in the recorded runs.
        {
            let mut old = ReferenceChecker::new(&comp.automaton);
            let mut new = Checker::with_csr(&comp.automaton, &comp.csr);
            for f in &fs {
                old.satisfies(f);
                new.satisfies(f);
            }
        }

        // Best of three: both kernels are deterministic, so only the
        // nanoseconds vary between runs and the fastest is the stable
        // estimate.
        let mut old_best: Option<(u64, Vec<bool>, u64, u64)> = None;
        for _ in 0..3 {
            let start = Instant::now();
            let mut old = ReferenceChecker::new(&comp.automaton);
            let verdicts: Vec<bool> = fs.iter().map(|f| old.satisfies(f)).collect();
            let ns = start.elapsed().as_nanos() as u64;
            if old_best.as_ref().is_none_or(|b| ns < b.0) {
                old_best = Some((ns, verdicts, old.iterations, old.labeled_states));
            }
        }
        let (old_ns, old_verdicts, old_iters, old_labeled) = old_best.expect("ran three times");
        let mut new_best: Option<(u64, Vec<bool>, muml_logic::CheckStats)> = None;
        for _ in 0..3 {
            let start = Instant::now();
            let mut new = Checker::with_csr(&comp.automaton, &comp.csr);
            let verdicts: Vec<bool> = fs.iter().map(|f| new.satisfies(f)).collect();
            let ns = start.elapsed().as_nanos() as u64;
            if new_best.as_ref().is_none_or(|b| ns < b.0) {
                new_best = Some((ns, verdicts, new.stats));
            }
        }
        let (new_ns, new_verdicts, nstats) = new_best.expect("ran three times");

        assert_eq!(
            old_verdicts, new_verdicts,
            "kernel verdicts diverge at n={n}"
        );
        let speedup = old_ns as f64 / new_ns.max(1) as f64;
        total_old_ns += old_ns;
        total_new_ns += new_ns;
        println!(
            "{n:>6} {:>10} {old_ns:>12} {new_ns:>12} {speedup:>7.1}x {:>10} {:>8}",
            comp.automaton.state_count(),
            old_iters,
            nstats.fixpoint_iterations,
        );
        sizes.push(Json::Object(vec![
            ("n".into(), Json::from_usize(n)),
            (
                "product_states".into(),
                Json::from_usize(comp.automaton.state_count()),
            ),
            (
                "verdicts".into(),
                Json::Array(new_verdicts.iter().map(|&v| Json::Bool(v)).collect()),
            ),
            (
                "old".into(),
                Json::Object(vec![
                    ("check_ns".into(), Json::from_u64(old_ns)),
                    ("fixpoint_iterations".into(), Json::from_u64(old_iters)),
                    ("labeled_states".into(), Json::from_u64(old_labeled)),
                ]),
            ),
            (
                "new".into(),
                Json::Object(vec![
                    ("check_ns".into(), Json::from_u64(new_ns)),
                    (
                        "fixpoint_iterations".into(),
                        Json::from_u64(nstats.fixpoint_iterations),
                    ),
                    (
                        "labeled_states".into(),
                        Json::from_u64(nstats.labeled_states),
                    ),
                    ("words_touched".into(), Json::from_u64(nstats.words_touched)),
                    ("worklist_pops".into(), Json::from_u64(nstats.worklist_pops)),
                    (
                        "peak_resident_sets".into(),
                        Json::from_u64(nstats.peak_resident_sets),
                    ),
                ]),
            ),
            ("speedup".into(), Json::Float(speedup)),
        ]));
    }
    let total_speedup = total_old_ns as f64 / total_new_ns.max(1) as f64;
    println!("total: old {total_old_ns} ns, new {total_new_ns} ns ({total_speedup:.1}x)");

    let fused = run_check_fused();

    if json {
        let doc = Json::Object(vec![
            ("artefact".into(), Json::Str("check".into())),
            ("timing".into(), Json::Str("warm, best of 3".into())),
            (
                "formulas".into(),
                Json::Array(
                    CHECK_FORMULAS
                        .iter()
                        .map(|s| Json::Str((*s).into()))
                        .collect(),
                ),
            ),
            ("sizes".into(), Json::Array(sizes)),
            (
                "totals".into(),
                Json::Object(vec![
                    ("old_check_ns".into(), Json::from_u64(total_old_ns)),
                    ("new_check_ns".into(), Json::from_u64(total_new_ns)),
                    ("speedup".into(), Json::Float(total_speedup)),
                ]),
            ),
            ("fused".into(), Json::Array(fused)),
        ]);
        std::fs::write("BENCH_check.json", doc.encode() + "\n").expect("write BENCH_check.json");
        println!("wrote BENCH_check.json ({total_speedup:.1}x overall)");
    }
}

/// The formulas of the fused ticker-grid ladder: an early-falsified
/// invariant, a full-expansion invariant that holds, and an
/// early-witnessed reachability.
const FUSED_FORMULAS: [&str; 3] = ["AG !bad", "AG !deadlock", "EF bad"];

/// The ticker-grid half of `repro check`: fused on-the-fly checking vs
/// materialize-then-check, differential oracles included. Returns one JSON
/// record per `(m, formula)` cell.
fn run_check_fused() -> Vec<Json> {
    heading("Fused — on-the-fly product + early exit vs materialize-then-check (tickers, k=3)");
    println!(
        "{:>8} {:>10} {:<14} {:>9} {:>10} {:>11} {:>12} {:>12}",
        "m", "product", "formula", "verdict", "expanded", "discovered", "fused ns", "mat ns"
    );
    let opts = ComposeOptions::default();
    let mut out: Vec<Json> = Vec::new();

    // Co-run ladder: fused and materialized paths both execute; verdicts,
    // traces, and (on the smallest size) the sweep kernel must agree.
    for m in [10usize, 22, 47] {
        let w = ticker_workload(3, m, 3);
        let parts: Vec<&Automaton> = w.parts.iter().collect();
        let fs: Vec<Formula> = FUSED_FORMULAS
            .iter()
            .map(|s| parse(&w.universe, s).expect("formula parses"))
            .collect();
        let oracle = compose(&parts, &opts).expect("ticker grid composes");
        assert_eq!(
            oracle.automaton.state_count(),
            w.product_states,
            "ticker grid size must match its closed form at m={m}"
        );
        for (sf, f) in FUSED_FORMULAS.iter().zip(&fs) {
            let one = std::slice::from_ref(f);
            // Warm-up run + best of three, both paths (see `run_check`).
            let mut fused_best: Option<(u64, muml_logic::FusedRun)> = None;
            for run in 0..4 {
                let start = Instant::now();
                let lp = LazyProduct::new(&parts, &opts, false).expect("lazy product");
                let res = fused_check_all(lp, one).expect("fusable fragment");
                let ns = start.elapsed().as_nanos() as u64;
                if run > 0 && fused_best.as_ref().is_none_or(|b| ns < b.0) {
                    fused_best = Some((ns, res));
                }
            }
            let (fused_ns, fres) = fused_best.expect("ran three times");
            let mut mat_best: Option<(u64, Verdict)> = None;
            for run in 0..4 {
                let start = Instant::now();
                let c = compose(&parts, &opts).expect("ticker grid composes");
                let mut checker = Checker::with_csr(&c.automaton, &c.csr);
                let verdict = check_all_with(&mut checker, one).expect("supported fragment");
                let ns = start.elapsed().as_nanos() as u64;
                if run > 0 && mat_best.as_ref().is_none_or(|b| ns < b.0) {
                    mat_best = Some((ns, verdict));
                }
            }
            let (mat_ns, mat_verdict) = mat_best.expect("ran three times");

            // Differential oracles: verdict equality, trace equality, and
            // (at m=10) the naive sweep kernel.
            assert_eq!(
                fres.verdict.holds(),
                mat_verdict.holds(),
                "fused verdict diverges on {sf} at m={m}"
            );
            match (fres.verdict.counterexample(), mat_verdict.counterexample()) {
                (None, None) => {}
                (Some(fc), Some(mc)) => {
                    let fused_names = fres
                        .counterexample_names()
                        .expect("violated fused run has a trace");
                    let mat_names: Vec<String> = mc
                        .run
                        .states
                        .iter()
                        .map(|s| oracle.automaton.state_name(*s).to_owned())
                        .collect();
                    assert_eq!(
                        fused_names, mat_names,
                        "fused trace diverges on {sf} at m={m}"
                    );
                    assert_eq!(
                        fc.description, mc.description,
                        "fused description diverges on {sf} at m={m}"
                    );
                }
                _ => unreachable!("holds() equality checked above"),
            }
            if m == 10 {
                let mut sweep = ReferenceChecker::new(&oracle.automaton);
                assert_eq!(
                    sweep.satisfies(f),
                    fres.verdict.holds(),
                    "sweep kernel diverges on {sf} at m={m}"
                );
            }
            // The early-exit contract: falsified AG and witnessed EF stop
            // before the full product; the holding AG expands all of it.
            if *sf == "AG !deadlock" {
                assert!(!fres.report.early_exit, "AG !deadlock cannot exit early");
                assert_eq!(fres.report.states_expanded, w.product_states);
            } else {
                assert!(
                    fres.report.early_exit && fres.report.states_expanded < w.product_states,
                    "{sf} must exit early at m={m}: expanded {} of {}",
                    fres.report.states_expanded,
                    w.product_states
                );
            }

            print_fused_row(m, w.product_states, sf, &fres, fused_ns, Some(mat_ns));
            out.push(fused_cell(m, &w, sf, &fres, fused_ns, Some(mat_ns)));
        }
    }

    // Million-state rung: fused only — materializing 10^6 states here
    // would dwarf the smoke budget, and the early-exit assertion is the
    // point of the rung.
    let m = 100usize;
    let w = ticker_workload(3, m, 3);
    let parts: Vec<&Automaton> = w.parts.iter().collect();
    for sf in ["AG !bad", "EF bad"] {
        let f = parse(&w.universe, sf).expect("formula parses");
        let start = Instant::now();
        let lp = LazyProduct::new(&parts, &opts, false).expect("lazy product");
        let fres = fused_check_all(lp, std::slice::from_ref(&f)).expect("fusable fragment");
        let fused_ns = start.elapsed().as_nanos() as u64;
        assert_eq!(
            fres.verdict.holds(),
            sf == "EF bad",
            "unexpected verdict on {sf} at m={m}"
        );
        assert!(
            fres.report.early_exit && fres.report.states_expanded < w.product_states,
            "{sf} must exit early on the {}-state product: expanded {}",
            w.product_states,
            fres.report.states_expanded
        );
        print_fused_row(m, w.product_states, sf, &fres, fused_ns, None);
        out.push(fused_cell(m, &w, sf, &fres, fused_ns, None));
    }
    out
}

fn print_fused_row(
    m: usize,
    product: usize,
    sf: &str,
    fres: &muml_logic::FusedRun,
    fused_ns: u64,
    mat_ns: Option<u64>,
) {
    println!(
        "{m:>8} {product:>10} {sf:<14} {:>9} {:>10} {:>11} {fused_ns:>12} {:>12}",
        if fres.verdict.holds() {
            "holds"
        } else {
            "violated"
        },
        fres.report.states_expanded,
        fres.report.states_discovered,
        mat_ns.map_or("-".to_owned(), |ns| ns.to_string()),
    );
}

/// One `(m, formula)` record of the `fused` JSON array (schema documented
/// in DESIGN.md §15).
fn fused_cell(
    m: usize,
    w: &muml_bench::workload::TickerWorkload,
    sf: &str,
    fres: &muml_logic::FusedRun,
    fused_ns: u64,
    mat_ns: Option<u64>,
) -> Json {
    Json::Object(vec![
        ("m".into(), Json::from_usize(m)),
        ("k".into(), Json::from_usize(3)),
        ("product_states".into(), Json::from_usize(w.product_states)),
        ("formula".into(), Json::Str(sf.into())),
        (
            "verdict".into(),
            Json::Str(
                if fres.verdict.holds() {
                    "holds"
                } else {
                    "violated"
                }
                .into(),
            ),
        ),
        ("early_exit".into(), Json::Bool(fres.report.early_exit)),
        (
            "states_expanded".into(),
            Json::from_usize(fres.report.states_expanded),
        ),
        (
            "states_discovered".into(),
            Json::from_usize(fres.report.states_discovered),
        ),
        ("fused_ns".into(), Json::from_u64(fused_ns)),
        (
            "materialized_ns".into(),
            mat_ns.map_or(Json::Null, Json::from_u64),
        ),
        (
            "trace_len".into(),
            fres.verdict
                .counterexample()
                .map_or(Json::Null, |c| Json::from_usize(c.run.states.len())),
        ),
    ])
}

/// `repro incr [--json]`: incremental recomposition + warm-started checking
/// (the `IntegrationConfig::incremental` default) against cold
/// per-iteration rebuilds, over the RailCab walkthroughs, scalable counter
/// loops, and the `full`-variant fault campaign at zero harness latency.
/// Every cold/incremental pair is asserted verdict-and-trace identical —
/// the differential oracle of DESIGN.md §12 — before any timing is
/// reported; with `--json` the numbers land in `BENCH_incr.json`.
fn run_incr(json: bool) {
    use muml_bench::workload::seed_fault;
    use muml_core::{verify_integration, IntegrationConfig, LegacyUnit};
    use muml_legacy::{fault_matrix, inject, Fault, HiddenMealy, PortMap};
    use muml_railcab::{correct_shuttle, faulty_shuttle, front_context, shuttle_variants};

    struct Row {
        name: String,
        iterations: usize,
        outcome: &'static str,
        cold_ns: u64,
        incr_ns: u64,
        incr_recomposes: usize,
        warm_states: u64,
    }

    fn config(incremental: bool) -> IntegrationConfig {
        IntegrationConfig::default().with_incremental(incremental)
    }

    fn outcome(report: &IntegrationReport) -> &'static str {
        if report.verdict.proven() {
            "proven"
        } else {
            "real_fault"
        }
    }

    fn railcab_run(
        build: fn(&Universe) -> HiddenMealy,
        fault: Option<&Fault>,
        incremental: bool,
    ) -> IntegrationReport {
        let u = Universe::new();
        let context = front_context(&u);
        let mut shuttle = build(&u);
        if let Some(f) = fault {
            inject(&mut shuttle, &u, f).expect("fault targets an existing rule");
        }
        let props = vec![scenario::pattern_constraint(&u)];
        let mut units = [LegacyUnit::new(&mut shuttle, scenario::rear_port_map(&u))];
        verify_integration(&u, &context, &props, &mut units, &config(incremental))
            .expect("walkthrough terminates")
    }

    fn counter_run(
        n: usize,
        k: usize,
        fault_depth: Option<usize>,
        incremental: bool,
    ) -> IntegrationReport {
        let mut w = counter_workload(n, k);
        if let Some(d) = fault_depth {
            seed_fault(&mut w, d);
        }
        let mut units = [LegacyUnit::new(
            &mut w.component,
            PortMap::with_default("p"),
        )];
        verify_integration(
            &w.universe,
            &w.context,
            &[],
            &mut units,
            &config(incremental),
        )
        .expect("counter loop terminates")
    }

    /// The differential oracle: the two modes must agree on everything an
    /// observer can see — verdict, iteration count, per-iteration product
    /// sizes, violated properties, rendered counterexample traces,
    /// outcomes, and the learned-model sizes.
    fn assert_equivalent(name: &str, cold: &IntegrationReport, incr: &IntegrationReport) {
        assert_eq!(
            cold.verdict.proven(),
            incr.verdict.proven(),
            "{name}: verdicts diverge between cold and incremental"
        );
        assert_eq!(
            cold.stats.iterations, incr.stats.iterations,
            "{name}: iteration counts diverge"
        );
        assert_eq!(
            cold.iterations.len(),
            incr.iterations.len(),
            "{name}: iteration-record counts diverge"
        );
        for (a, b) in cold.iterations.iter().zip(&incr.iterations) {
            let i = a.index;
            assert_eq!(
                a.composed_states, b.composed_states,
                "{name} iteration {i}: product sizes diverge"
            );
            assert_eq!(
                a.violated, b.violated,
                "{name} iteration {i}: violated properties diverge"
            );
            assert_eq!(
                a.counterexample, b.counterexample,
                "{name} iteration {i}: counterexample traces diverge"
            );
            assert_eq!(
                a.outcome, b.outcome,
                "{name} iteration {i}: outcomes diverge"
            );
            assert_eq!(
                a.knowledge, b.knowledge,
                "{name} iteration {i}: learned knowledge diverges"
            );
        }
        assert_eq!(
            cold.learned_sizes(),
            incr.learned_sizes(),
            "{name}: learned models diverge"
        );
    }

    fn measure(rows: &mut Vec<Row>, name: String, mut run: impl FnMut(bool) -> IntegrationReport) {
        let cold = run(false);
        let incr = run(true);
        assert_eq!(
            cold.stats.recompose_incremental, 0,
            "{name}: cold mode must never splice"
        );
        assert_equivalent(&name, &cold, &incr);
        // Best of two per mode: the workloads are deterministic and the
        // phase timings are microsecond-scale, so a single scheduler
        // preemption can dominate one measurement (same rationale as the
        // best-of-three in `run_fig2_json`).
        let loop_ns = |r: &IntegrationReport| r.stats.timings.compose_ns + r.stats.timings.check_ns;
        let cold_ns = loop_ns(&cold).min(loop_ns(&run(false)));
        let incr_ns = loop_ns(&incr).min(loop_ns(&run(true)));
        rows.push(Row {
            name,
            iterations: incr.stats.iterations,
            outcome: outcome(&incr),
            cold_ns,
            incr_ns,
            incr_recomposes: incr.stats.recompose_incremental,
            warm_states: incr.stats.checker_warm_states,
        });
    }

    heading("Incr — incremental recompose + warm-started check vs cold rebuilds");
    // Warm-up pass: first-touch costs (allocator arenas, lazy binding)
    // would otherwise land in the first measured workload.
    let _ = railcab_run(correct_shuttle, None, true);

    let mut rows: Vec<Row> = Vec::new();
    measure(&mut rows, "fig2/correct".into(), |inc| {
        railcab_run(correct_shuttle, None, inc)
    });
    measure(&mut rows, "fig6/faulty".into(), |inc| {
        railcab_run(faulty_shuttle, None, inc)
    });
    for (n, k) in [(16usize, 14usize), (32, 30), (48, 46)] {
        measure(&mut rows, format!("counter/n={n},k={k}"), |inc| {
            counter_run(n, k, None, inc)
        });
    }
    measure(&mut rows, "counter/n=32,fault@24".into(), |inc| {
        counter_run(32, 30, Some(24), inc)
    });

    // The `full`-variant fault campaign at zero harness latency: baseline
    // plus every fault of its deterministic fault matrix.
    let full = shuttle_variants()
        .iter()
        .find(|v| v.name == "full")
        .expect("full variant exists");
    let faults = {
        let u = Universe::new();
        fault_matrix(&(full.build)(&u), &u)
    };
    measure(&mut rows, "campaign/full/baseline".into(), |inc| {
        railcab_run(full.build, None, inc)
    });
    for fault in &faults {
        measure(
            &mut rows,
            format!("campaign/full/{}", fault.describe()),
            |inc| railcab_run(full.build, Some(fault), inc),
        );
    }

    println!(
        "{:<42} {:>5} {:>10} {:>12} {:>12} {:>8} {:>6} {:>8}",
        "workload", "iters", "outcome", "cold ns", "incr ns", "speedup", "incr#", "warm"
    );
    for r in &rows {
        let speedup = r.cold_ns as f64 / r.incr_ns.max(1) as f64;
        println!(
            "{:<42} {:>5} {:>10} {:>12} {:>12} {speedup:>7.1}x {:>6} {:>8}",
            r.name, r.iterations, r.outcome, r.cold_ns, r.incr_ns, r.incr_recomposes, r.warm_states
        );
    }
    let total_cold: u64 = rows.iter().map(|r| r.cold_ns).sum();
    let total_incr: u64 = rows.iter().map(|r| r.incr_ns).sum();
    let total_speedup = total_cold as f64 / total_incr.max(1) as f64;
    println!(
        "total compose+check: cold {total_cold} ns, incremental {total_incr} ns \
         ({total_speedup:.1}x); all {} cold/incremental pairs verdict-and-trace identical",
        rows.len()
    );
    if total_speedup < 2.0 {
        println!("warning: overall speedup {total_speedup:.1}x is below the 2.0x target");
    }

    if json {
        let workloads: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::Object(vec![
                    ("name".into(), Json::Str(r.name.clone())),
                    ("iterations".into(), Json::from_usize(r.iterations)),
                    ("outcome".into(), Json::Str(r.outcome.into())),
                    ("cold_compose_check_ns".into(), Json::from_u64(r.cold_ns)),
                    ("incr_compose_check_ns".into(), Json::from_u64(r.incr_ns)),
                    (
                        "speedup".into(),
                        Json::Float(r.cold_ns as f64 / r.incr_ns.max(1) as f64),
                    ),
                    (
                        "incremental_recomposes".into(),
                        Json::from_usize(r.incr_recomposes),
                    ),
                    ("checker_warm_states".into(), Json::from_u64(r.warm_states)),
                ])
            })
            .collect();
        let doc = Json::Object(vec![
            ("artefact".into(), Json::Str("incr".into())),
            // Reaching this point means every pair passed the differential
            // oracle — an assertion failure aborts before the file exists.
            ("verdicts_match".into(), Json::Bool(true)),
            ("workloads".into(), Json::Array(workloads)),
            (
                "totals".into(),
                Json::Object(vec![
                    ("cold_compose_check_ns".into(), Json::from_u64(total_cold)),
                    ("incr_compose_check_ns".into(), Json::from_u64(total_incr)),
                    ("speedup".into(), Json::Float(total_speedup)),
                    ("target".into(), Json::Float(2.0)),
                    ("target_met".into(), Json::Bool(total_speedup >= 2.0)),
                ]),
            ),
        ]);
        std::fs::write("BENCH_incr.json", doc.encode() + "\n").expect("write BENCH_incr.json");
        println!("wrote BENCH_incr.json ({total_speedup:.1}x overall)");
    }
}

/// `repro storm [--json]`: the flake-storm campaign — every workload's
/// clean-rig verdict against its verdicts under an `UnreliableRig` at a
/// sweep of injected fault rates. The soundness assertion (conclusive
/// flaky verdict == clean verdict; rate 0.0 fully conclusive) runs
/// *inside* `muml_bench::storm::storm_campaign`; with `--json` the
/// retry/attempt/quarantine distributions land in `BENCH_storm.json`
/// (schema: DESIGN.md §13).
fn run_storm(json: bool) {
    use muml_bench::storm::{storm_campaign, STORM_RATES};

    heading("Storm — verdict soundness under injected rig faults");
    let report = storm_campaign(&STORM_RATES);
    print!("{}", report.render());
    let conclusive: usize = report.rates.iter().map(|r| r.conclusive).sum();
    let inconclusive: usize = report.rates.iter().map(|r| r.inconclusive).sum();
    println!(
        "all {conclusive} conclusive verdicts match the clean rig; \
         {inconclusive} runs honestly inconclusive"
    );
    if json {
        let doc = report.to_json();
        std::fs::write("BENCH_storm.json", doc.encode() + "\n").expect("write BENCH_storm.json");
        println!(
            "wrote BENCH_storm.json ({} rates x {} workloads)",
            report.rates.len(),
            report.rates.first().map(|r| r.jobs).unwrap_or(0)
        );
    }
}

/// `repro chaos [--json]`: the crash-safety campaign — seeded fault
/// injection across the store, journal, socket, and worker axes, each with
/// a hard verdict-equality assertion against the clean run (the asserts
/// run *inside* `muml_bench::chaos::chaos_campaign`; see DESIGN.md §18).
/// With `--json` the per-axis numbers land in `BENCH_chaos.json`.
fn run_chaos(json: bool) {
    use muml_bench::chaos::{chaos_campaign, CHAOS_RATES};

    heading("Chaos — crash safety under injected store/journal/socket/worker faults");
    let report = chaos_campaign(&CHAOS_RATES);
    print!("{}", report.render());
    println!(
        "all verdicts identical to the clean run across {} store rates, \
         {} journal cuts, {} hostile clients, {} worker rates",
        report.store.len(),
        report.journal.cuts,
        report.socket.hostile,
        report.worker.len()
    );
    if json {
        let doc = report.to_json();
        std::fs::write("BENCH_chaos.json", doc.encode() + "\n").expect("write BENCH_chaos.json");
        println!("wrote BENCH_chaos.json ({} axes)", 4);
    }
}

/// `repro warm [--store DIR] [--json]`: run the RailCab variants × faults
/// campaign three times — store-disabled, cold against the store, and
/// seeded from it — and report the rig work the warm start saved. The hard
/// assertions (all three runs verdict-identical; the seeded run drives at
/// most half the cold run's rig steps on a fresh store) run *inside*
/// `muml_bench::warm::warm_campaign`; with `--json` the per-cell numbers
/// land in `BENCH_warm.json` (schema: DESIGN.md §16). Without `--store`
/// the store lives in a fresh temp directory that is removed afterwards;
/// with it, re-invocations exercise the pre-warmed path (the CI
/// cache-poisoning guard).
fn run_warm(json: bool, store: Option<std::path::PathBuf>) {
    use muml_bench::warm::warm_campaign;

    heading("Warm — store-seeded campaign vs cold start");
    let (dir, ephemeral) = match store {
        Some(dir) => (dir, false),
        None => {
            let dir = std::env::temp_dir().join(format!("muml-repro-warm-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            (dir, true)
        }
    };
    std::fs::create_dir_all(&dir).expect("create store directory");
    let report = warm_campaign(&dir);
    print!("{}", report.render());
    println!(
        "verdicts identical across all three runs; store {}",
        if report.store_prewarmed {
            "was pre-warmed (step reduction not comparable)"
        } else {
            "started cold"
        }
    );
    if json {
        let doc = report.to_json();
        std::fs::write("BENCH_warm.json", doc.encode() + "\n").expect("write BENCH_warm.json");
        println!(
            "wrote BENCH_warm.json ({} campaign cells)",
            report.jobs.len()
        );
    }
    if ephemeral {
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// `repro probe [--json]`: run the frontier-heavy counter workloads twice —
/// trace cache disabled/serial vs cache enabled/parallel — with a simulated
/// 200 µs-per-step rig. The hard assertions (identical verdicts, identical
/// learned models, the cached run drives at most half the serial run's rig
/// steps) run *inside* `muml_bench::probe::probe_campaign`; with `--json`
/// the per-cell numbers land in `BENCH_probe.json`.
fn run_probe(json: bool) {
    use muml_bench::probe::probe_campaign;

    heading("Probe — trace cache + parallel frontier probes vs serial");
    let report = probe_campaign(std::time::Duration::from_micros(200));
    print!("{}", report.render());
    println!("verdicts and learned models identical across both runs");
    if json {
        let doc = report.to_json();
        std::fs::write("BENCH_probe.json", doc.encode() + "\n").expect("write BENCH_probe.json");
        println!("wrote BENCH_probe.json ({} cells)", report.jobs.len());
    }
}

/// `repro fleet [--jobs N] [--json]`: expand the RailCab variants × faults
/// campaign, run it serially (1 worker) and pooled (N workers), verify that
/// both aggregations fingerprint identically, and report the wall-clock
/// speedup. With `--json`, writes `BENCH_fleet.json` (schema: DESIGN.md
/// §11).
fn run_fleet_cmd(workers: usize, json: bool) {
    use muml_bench::campaign::{railcab_campaign, CampaignOptions};
    use muml_fleet::{run_fleet, FleetConfig, FleetReport};
    use muml_obs::NullFleetSink;

    heading(&format!(
        "Fleet — batch campaign, 1 worker vs {workers} workers"
    ));
    let options = CampaignOptions::default();
    let campaign_size = railcab_campaign(&options).len();
    println!(
        "campaign: {campaign_size} jobs (variants × faults), harness latency {:?}",
        options.latency
    );

    let run_pool = |n: usize| -> (FleetReport, u64) {
        let start = Instant::now();
        let report = run_fleet(
            railcab_campaign(&options),
            &FleetConfig::default().with_workers(n),
            &mut NullFleetSink,
        );
        (report, start.elapsed().as_nanos() as u64)
    };
    let (serial, serial_ns) = run_pool(1);
    let (pooled, pooled_ns) = run_pool(workers);

    assert_eq!(
        serial.fingerprint(),
        pooled.fingerprint(),
        "aggregated campaign reports must not depend on the worker count"
    );
    let speedup = serial_ns as f64 / pooled_ns.max(1) as f64;
    print!("{}", pooled.render());
    println!(
        "serial {serial_ns} ns, {workers} workers {pooled_ns} ns ({speedup:.1}x), fingerprints match"
    );

    if json {
        let run_json = |report: &FleetReport, wall_ns: u64| {
            Json::Object(vec![
                ("workers".into(), Json::from_usize(report.workers)),
                ("wall_ns".into(), Json::from_u64(wall_ns)),
                ("busy_ns".into(), Json::from_u64(report.busy_nanos())),
            ])
        };
        let doc = Json::Object(vec![
            ("artefact".into(), Json::Str("fleet".into())),
            ("jobs".into(), Json::from_usize(campaign_size)),
            (
                "latency_us".into(),
                Json::from_u64(options.latency.as_micros() as u64),
            ),
            (
                "runs".into(),
                Json::Array(vec![
                    run_json(&serial, serial_ns),
                    run_json(&pooled, pooled_ns),
                ]),
            ),
            ("speedup".into(), Json::Float(speedup)),
            ("fingerprints_match".into(), Json::Bool(true)),
            ("report".into(), pooled.to_json()),
        ]);
        std::fs::write("BENCH_fleet.json", doc.encode() + "\n").expect("write BENCH_fleet.json");
        println!(
            "wrote BENCH_fleet.json ({campaign_size} jobs, {speedup:.1}x at {workers} workers)"
        );
    }
}

/// `repro serve [--clients N] [--json]`: start an in-process `muml-serve`
/// daemon on a TCP loopback socket and drive it with N concurrent wire
/// clients, each running its shard of the RailCab campaign closed-loop
/// (submit, then wait). Reports p50/p99 submit→verdict latency, checks
/// the wire verdicts against a direct `run_fleet` of the same requests,
/// then throws a 1000-job burst at a deliberately small admission queue
/// and counts the typed rejections. With `--json`, writes
/// `BENCH_serve.json` (schema: DESIGN.md §14).
fn run_serve_cmd(clients: usize, json: bool) {
    use muml_bench::campaign::{railcab_requests, CampaignOptions};
    use muml_fleet::{run_fleet, FleetConfig};
    use muml_obs::NullFleetSink;
    use muml_serve::{railcab_registry, Daemon, Priority, ServeClient, ServeConfig, Server};

    heading(&format!("Serve — daemon load test, {clients} wire clients"));
    let options = CampaignOptions {
        latency: std::time::Duration::ZERO,
        ..CampaignOptions::default()
    };
    let requests = railcab_requests(&options);
    println!(
        "campaign: {} jobs (variants × faults) over {clients} clients",
        requests.len()
    );

    // Phase A — latency under concurrent load, verdicts checked against a
    // direct in-process fleet run of the same requests.
    let daemon = Daemon::start(
        ServeConfig::default()
            .with_workers(4)
            .with_max_pending(4096),
        railcab_registry(),
    );
    let server = Server::bind(daemon, Some("127.0.0.1:0"), None).expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp addr").to_string();

    let wall_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|shard| {
            // Shard round-robin so every client sees a mix of cheap and
            // expensive jobs.
            let mine: Vec<_> = requests
                .iter()
                .filter(|r| r.id % clients == shard)
                .cloned()
                .collect();
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect_tcp(&addr).expect("connect");
                let mut verdicts = Vec::new();
                let mut latencies = Vec::new();
                for request in &mine {
                    let start = Instant::now();
                    let job = client
                        .submit(request, Priority::Normal)
                        .expect("campaign submissions are admitted");
                    let record = client.wait(job).expect("verdict");
                    latencies.push(start.elapsed().as_nanos() as u64);
                    verdicts.push(record);
                }
                (verdicts, latencies)
            })
        })
        .collect();
    let mut verdicts = Vec::new();
    let mut latencies = Vec::new();
    for handle in handles {
        let (v, l) = handle.join().expect("client thread");
        verdicts.extend(v);
        latencies.extend(l);
    }
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    server.stop();

    latencies.sort_unstable();
    let percentile = |p: usize| latencies[(latencies.len() - 1) * p / 100];
    let (p50, p99) = (percentile(50), percentile(99));
    println!(
        "{} verdicts, p50 {:.2} ms, p99 {:.2} ms",
        verdicts.len(),
        p50 as f64 / 1e6,
        p99 as f64 / 1e6
    );

    // Determinism: the daemon must agree with run_fleet on every request.
    let registry = railcab_registry();
    let direct = run_fleet(
        requests
            .iter()
            .map(|r| registry.resolve(r).expect("generated requests resolve"))
            .collect(),
        &FleetConfig::default().with_workers(4),
        &mut NullFleetSink,
    );
    verdicts.sort_by_key(|record| record.request.id);
    assert_eq!(verdicts.len(), direct.results.len());
    for (wire, local) in verdicts.iter().zip(&direct.results) {
        assert_eq!(wire.request.id, local.request.id);
        assert_eq!(
            wire.outcome,
            local.outcome.name(),
            "job {} ({}) disagrees across the wire",
            wire.request.id,
            wire.request.name
        );
    }
    println!(
        "wire verdicts match direct run_fleet on all {} jobs",
        verdicts.len()
    );

    // Phase B — a 1000-job burst over a tiny admission queue: overflow
    // must shed as typed rejections and the daemon must keep serving.
    let daemon = Daemon::start(
        ServeConfig::default()
            .with_workers(2)
            .with_max_pending(64)
            .with_max_pending_per_client(1_000_000),
        railcab_registry(),
    );
    let server = Server::bind(daemon, Some("127.0.0.1:0"), None).expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp addr").to_string();
    let mut client = ServeClient::connect_tcp(&addr).expect("connect");
    let baseline = requests
        .iter()
        .find(|r| r.fault.is_none())
        .expect("campaign has baselines");
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..1_000 {
        let request = baseline.clone().with_max_iterations(10_000);
        let request = muml_fleet::JobRequest {
            id: 10_000 + i,
            name: format!("burst-{i}"),
            ..request
        };
        match client.submit(&request, Priority::Low) {
            Ok(id) => accepted.push(id),
            Err(muml_serve::ServeError::QueueFull { .. }) => rejected += 1,
            Err(other) => panic!("burst rejection must be typed queue-full, got {other:?}"),
        }
    }
    for id in &accepted {
        client.wait(*id).expect("accepted burst jobs complete");
    }
    let extra = baseline.clone();
    let extra_id = client
        .submit(&extra, Priority::High)
        .expect("daemon still admits after the burst");
    let extra_record = client.wait(extra_id).expect("daemon still serves");
    println!(
        "burst: 1000 submitted, {} accepted, {rejected} rejected (typed), post-burst job `{}` -> {}",
        accepted.len(),
        extra.name,
        extra_record.outcome
    );
    server.stop();

    if json {
        let doc = Json::Object(vec![
            ("artefact".into(), Json::Str("serve".into())),
            ("clients".into(), Json::from_usize(clients)),
            ("jobs".into(), Json::from_usize(requests.len())),
            ("wall_ns".into(), Json::from_u64(wall_ns)),
            ("p50_ns".into(), Json::from_u64(p50)),
            ("p99_ns".into(), Json::from_u64(p99)),
            ("verdicts_match_fleet".into(), Json::Bool(true)),
            (
                "burst".into(),
                Json::Object(vec![
                    ("submitted".into(), Json::from_usize(1_000)),
                    ("accepted".into(), Json::from_usize(accepted.len())),
                    ("rejected".into(), Json::from_usize(rejected)),
                    ("served_after".into(), Json::Bool(true)),
                ]),
            ),
        ]);
        std::fs::write("BENCH_serve.json", doc.encode() + "\n").expect("write BENCH_serve.json");
        println!(
            "wrote BENCH_serve.json ({clients} clients, p50 {:.2} ms, {rejected} burst rejections)",
            p50 as f64 / 1e6
        );
    }
}

fn run(what: &str) {
    let u = Universe::new();
    match what {
        "fig1" => {
            heading("Figure 1 — the DistanceCoordination pattern");
            let p = muml_railcab::distance_coordination(&u);
            println!("pattern: {}", p.name);
            println!(
                "constraint: {}",
                p.constraint
                    .as_ref()
                    .map(|c| c.show(&u))
                    .unwrap_or_default()
            );
            for r in &p.roles {
                println!(
                    "role {} ({} states), invariant: {}",
                    r.name,
                    r.behavior.state_count(),
                    r.invariant.as_ref().map(|i| i.show(&u)).unwrap_or_default()
                );
            }
            println!(
                "connector `{}`: {} message kinds, delay {}",
                p.connector.name,
                p.connector.kinds.len(),
                p.connector.delay
            );
            let report = muml_arch::verify_pattern(&p).expect("pattern checkable");
            println!(
                "pattern verification: {} ({} composed states)",
                if report.ok() { "OK" } else { "VIOLATED" },
                report.state_count
            );
        }
        "fig2" => {
            heading("Figure 2 — the iterative process (correct shuttle)");
            let (report, _) = scenario::integrate_correct(&u);
            print!("{}", render_report(&report));
        }
        "fig3" => {
            heading("Figure 3 — the chaotic automaton");
            print!("{}", scenario::fig3_chaotic_automaton(&u));
        }
        "fig4" => {
            heading("Figure 4 — trivial initial automaton and its chaotic closure");
            let (m0, a0) = scenario::fig4_initial(&u);
            println!(
                "(4a) M_l^0: {} state, {} transitions, {} refusals",
                m0.state_count(),
                m0.transition_count(),
                m0.refusal_count()
            );
            print!("{}", to_dot(&m0.known_automaton()));
            println!("(4b) M_a^0 = chaos(M_l^0): {} states", a0.state_count());
            print!("{}", to_dot(&a0));
        }
        "fig5" => {
            heading("Figure 5 — known behaviour of the context (front role)");
            print!("{}", scenario::fig5_context(&u));
        }
        "fig6" => {
            heading("Figure 6 — synthesized behaviour of the faulty shuttle (conflict)");
            let (report, dot) = scenario::integrate_faulty(&u);
            print!("{dot}");
            if let IntegrationVerdict::RealFault { property, .. } = &report.verdict {
                println!("conflict with environment: {property}");
            }
        }
        "fig7" => {
            heading("Figure 7 — correct synthesized behaviour w.r.t. context");
            let (report, dot) = scenario::integrate_correct(&u);
            print!("{dot}");
            println!(
                "verdict: {}",
                if report.verdict.proven() {
                    "PROVEN (integration correct)"
                } else {
                    "unexpected"
                }
            );
        }
        "listing1_1" => {
            heading("Listing 1.1 — counterexample of an early verification step");
            print!("{}", scenario::listing_1_1(&u));
        }
        "listing1_2" => {
            heading("Listing 1.2 — monitored relevant events for deterministic replay");
            let (minimal, _) = scenario::listings_1_2_and_1_3(&u);
            print!("{minimal}");
        }
        "listing1_3" => {
            heading("Listing 1.3 — monitoring all relevant events (replay)");
            let (_, full) = scenario::listings_1_2_and_1_3(&u);
            print!("{full}");
        }
        "listing1_4" => {
            heading("Listing 1.4 — counterexample with conflict in synthesized behaviour");
            let (report, _) = scenario::integrate_faulty(&u);
            if let IntegrationVerdict::RealFault {
                property, rendered, ..
            } = &report.verdict
            {
                print!("{rendered}");
                println!("violated: {property}");
                println!(
                    "found after {} iterations — fast conflict detection",
                    report.stats.iterations
                );
            }
        }
        "listing1_5" => {
            heading("Listing 1.5 — successful learning step (all relevant events)");
            print!("{}", scenario::listing_1_5(&u));
        }
        "table_a" => {
            heading("Table T-A — ours vs L*+check vs black-box checking, growing component");
            let t = table_a(&[4, 6, 8, 10]);
            print!(
                "{}",
                render_rows("counter protocol, k = n/2 pushes", "n", &t)
            );
        }
        "table_b" => {
            heading("Table T-B — context restrictiveness sweep (n = 10)");
            let t = table_b(10, &[1, 2, 4, 6, 8]);
            println!(
                "{:>6} {:>14} {:>14} {:>12} {:>12}",
                "k", "ours states", "lstar states", "ours steps", "lstar steps"
            );
            for (k, ours, lstar) in t {
                println!(
                    "{k:>6} {:>14} {:>14} {:>12} {:>12}",
                    ours.learned_states, lstar.learned_states, ours.steps, lstar.steps
                );
            }
        }
        "table_c" => {
            heading("Table T-C — fault detection at seeded depth (n = 8, k = 6)");
            let t = table_c(8, &[1, 2, 3, 4, 5]);
            print!("{}", render_rows("all outcomes must be `fault`", "d", &t));
        }
        "table_d" => {
            heading("Table T-D — kernel scalability (closure, composition, checking)");
            println!(
                "{:>6} {:>14} {:>14} {:>14} {:>10}",
                "n", "closure states", "composed", "checker iters", "time ms"
            );
            for n in [8usize, 16, 32, 64] {
                let w = counter_workload(n, n / 2);
                let start = Instant::now();
                let (closure_states, comp) = late_iteration_composition(&w);
                let mut checker = Checker::with_csr(&comp.automaton, &comp.csr);
                let _ = checker.satisfies(&Formula::deadlock_free());
                println!(
                    "{n:>6} {:>14} {:>14} {:>14} {:>10}",
                    closure_states,
                    comp.automaton.state_count(),
                    checker.stats.fixpoint_iterations,
                    start.elapsed().as_millis()
                );
            }
        }
        "check" => run_check(false),
        "fleet" => run_fleet_cmd(4, false),
        "incr" => run_incr(false),
        "storm" => run_storm(false),
        "serve" => run_serve_cmd(8, false),
        "warm" => run_warm(false, None),
        "probe" => run_probe(false),
        "chaos" => run_chaos(false),
        "table_e" => {
            heading("Table T-E — multi-legacy parallel learning (n = 4, k = 2)");
            let (single, twin) = table_e(4, 2);
            println!(
                "single: outcome {}, {} resets, {} steps, {} learned states, {} iterations",
                single.outcome, single.resets, single.steps, single.learned_states, single.rounds
            );
            println!(
                "twin:   outcome {}, {} resets, {} steps, {} learned states, {} iterations",
                twin.outcome, twin.resets, twin.steps, twin.learned_states, twin.rounds
            );
        }
        "table_f" => {
            heading("Table T-F — ablation: batched counterexamples (§7 improvement)");
            println!(
                "{:>6} {:>12} {:>8} {:>8}",
                "batch", "iterations", "resets", "steps"
            );
            for batch in [1usize, 4, 16] {
                let w = counter_workload(8, 5);
                let mut c = w.component.clone();
                let report = {
                    let mut units = [muml_core::LegacyUnit::new(
                        &mut c,
                        muml_legacy::PortMap::with_default("p"),
                    )];
                    muml_core::verify_integration(
                        &w.universe,
                        &w.context,
                        &[],
                        &mut units,
                        &muml_core::IntegrationConfig::default().with_batch_counterexamples(batch),
                    )
                    .expect("terminates")
                };
                assert!(report.verdict.proven());
                println!(
                    "{batch:>6} {:>12} {:>8} {:>8}",
                    report.stats.iterations,
                    c.resets(),
                    c.total_steps()
                );
            }
        }
        _ => unreachable!("validated in main"),
    }
}
