//! Campaign workload generation: expand the RailCab scenario into a fleet
//! of integration jobs.
//!
//! The campaign matrix is *variants × faults*: every rear-shuttle variant
//! ([`muml_railcab::shuttle_variants`]) contributes one baseline job plus
//! one job per seeded fault of its deterministic fault matrix
//! ([`muml_legacy::fault_matrix`]). Job ids are assigned here, at
//! generation time, in matrix order — the anchor of the fleet's
//! determinism argument (DESIGN.md §11): however jobs are later shuffled or
//! sharded, the aggregated report is keyed and sorted by these ids.
//!
//! Each job wraps its component in a
//! [`LatentComponent`](muml_legacy::LatentComponent) modelling test-rig
//! round-trip latency, which is what makes the campaign worth sharding:
//! jobs are harness-bound, so a worker pool overlaps their blocked time
//! even on a single CPU.

use std::time::Duration;

use muml_automata::Universe;
use muml_core::{IntegrationConfig, IntegrationSession, LegacyUnit};
use muml_fleet::{Job, JobSpec};
use muml_legacy::{fault_matrix, inject, Fault, LatentComponent};
use muml_railcab::{front_context, shuttle_variants, ShuttleVariant};

/// Scenario label of the RailCab campaign.
pub const SCENARIO: &str = "railcab-convoy";
/// Pattern label of the RailCab campaign.
pub const PATTERN: &str = "DistanceCoordination";

/// Knobs of the campaign generator.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Simulated harness round-trip latency per component step/reset.
    pub latency: Duration,
    /// Iteration cap per job.
    pub max_iterations: usize,
    /// Per-job wall-clock deadline (`None` = no deadline).
    pub deadline: Option<Duration>,
    /// Cap on the number of generated jobs (`None` = full matrix). The cap
    /// truncates the deterministic enumeration, so capped campaigns are
    /// prefixes of the full one.
    pub max_jobs: Option<usize>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            latency: Duration::from_micros(500),
            max_iterations: 10_000,
            deadline: Some(Duration::from_secs(60)),
            max_jobs: None,
        }
    }
}

/// Expands the RailCab scenario into the full variants × faults campaign.
pub fn railcab_campaign(options: &CampaignOptions) -> Vec<Job> {
    let mut jobs = Vec::new();
    // Fault matrices are enumerated against a throwaway universe; faults
    // carry state/signal *names*, so they re-resolve cleanly against each
    // job's own universe inside the worker.
    let u = Universe::new();
    for variant in shuttle_variants() {
        push_job(&mut jobs, *variant, None, options);
        for fault in fault_matrix(&(variant.build)(&u), &u) {
            push_job(&mut jobs, *variant, Some(fault), options);
        }
    }
    if let Some(cap) = options.max_jobs {
        jobs.truncate(cap);
    }
    jobs
}

fn push_job(
    jobs: &mut Vec<Job>,
    variant: ShuttleVariant,
    fault: Option<Fault>,
    options: &CampaignOptions,
) {
    let id = jobs.len();
    let fault_name = fault.as_ref().map(Fault::describe);
    let name = match &fault_name {
        Some(f) => format!("{}/{f}", variant.name),
        None => format!("{}/baseline", variant.name),
    };
    let mut spec = JobSpec::new(id, name)
        .with_scenario(SCENARIO)
        .with_pattern(PATTERN)
        .with_variant(variant.name)
        .with_max_iterations(options.max_iterations);
    if let Some(f) = &fault_name {
        spec = spec.with_fault(f.clone());
    }
    if let Some(deadline) = options.deadline {
        spec = spec.with_deadline(deadline);
    }
    let latency = options.latency;
    let max_iterations = options.max_iterations;
    let build = variant.build;
    jobs.push(Job::new(spec, move |ctx| {
        let u = Universe::new();
        let context = front_context(&u);
        let mut shuttle = build(&u);
        if let Some(f) = &fault {
            inject(&mut shuttle, &u, f)?;
        }
        let mut component = LatentComponent::new(shuttle, latency);
        IntegrationSession::new(&u, &context)
            .formula(muml_railcab::scenario::pattern_constraint(&u))
            .unit(LegacyUnit::new(
                &mut component,
                muml_railcab::scenario::rear_port_map(&u),
            ))
            .config(IntegrationConfig::default().with_max_iterations(max_iterations))
            .cancel_token(ctx.cancel.clone())
            .run()
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_enumeration_is_deterministic() {
        let options = CampaignOptions::default();
        let a = railcab_campaign(&options);
        let b = railcab_campaign(&options);
        assert!(a.len() >= 24, "expected dozens of jobs, got {}", a.len());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
        }
        assert_eq!(a[0].spec.name, "correct/baseline");
        assert!(a.iter().enumerate().all(|(i, j)| j.spec.id == i));
        // Capped campaigns are prefixes.
        let capped = railcab_campaign(&CampaignOptions {
            max_jobs: Some(5),
            ..options
        });
        assert_eq!(capped.len(), 5);
        assert_eq!(capped[4].spec, a[4].spec);
    }

    #[test]
    fn baseline_jobs_reach_the_expected_verdicts() {
        use muml_fleet::{run_fleet, FleetConfig, JobOutcome};
        let options = CampaignOptions {
            latency: Duration::ZERO,
            max_jobs: None,
            ..CampaignOptions::default()
        };
        let baselines: Vec<Job> = railcab_campaign(&options)
            .into_iter()
            .filter(|j| j.spec.fault.is_none())
            .collect();
        assert_eq!(baselines.len(), 3);
        let report = run_fleet(
            baselines,
            &FleetConfig::default().with_workers(2),
            &mut muml_obs::NullFleetSink,
        );
        for (result, variant) in report.results.iter().zip(shuttle_variants()) {
            assert_eq!(result.spec.variant, variant.name);
            if variant.proven_when_unmodified {
                assert_eq!(result.outcome, JobOutcome::Proven, "{}", result.spec.name);
            } else {
                assert!(
                    matches!(result.outcome, JobOutcome::RealFault { .. }),
                    "{}: {:?}",
                    result.spec.name,
                    result.outcome
                );
            }
        }
    }
}
