//! Campaign workload generation: expand the RailCab scenario into a fleet
//! of integration jobs.
//!
//! The campaign matrix is *variants × faults*: every rear-shuttle variant
//! ([`muml_railcab::shuttle_variants`]) contributes one baseline job plus
//! one job per seeded fault of its deterministic fault matrix
//! ([`muml_legacy::fault_matrix`]). Job ids are assigned here, at
//! generation time, in matrix order — the anchor of the fleet's
//! determinism argument (DESIGN.md §11): however jobs are later shuffled or
//! sharded, the aggregated report is keyed and sorted by these ids.
//!
//! Since the `muml-serve` wire split, generation produces pure-data
//! [`JobRequest`]s ([`railcab_requests`]): the same values can be shipped
//! to a daemon over the wire, run in-process, or tabulated as campaign
//! cells. [`railcab_campaign`] is the in-process convenience that resolves
//! them through [`muml_serve::railcab_registry`] into executable
//! [`Job`]s — the identical resolver the daemon uses, so a wire campaign
//! and a local campaign agree job-for-job.
//!
//! Each job wraps its component in a
//! [`LatentComponent`](muml_legacy::LatentComponent) modelling test-rig
//! round-trip latency, which is what makes the campaign worth sharding:
//! jobs are harness-bound, so a worker pool overlaps their blocked time
//! even on a single CPU.

use std::time::Duration;

use muml_automata::Universe;
use muml_fleet::{Job, JobRequest};
use muml_legacy::{fault_matrix, Fault};
use muml_railcab::{shuttle_variants, ShuttleVariant};
use muml_serve::railcab_registry;

/// Scenario label of the RailCab campaign (the daemon registry's name
/// for it).
pub const SCENARIO: &str = muml_serve::RAILCAB_SCENARIO;
/// Pattern label of the RailCab campaign.
pub const PATTERN: &str = muml_serve::RAILCAB_PATTERN;

/// Knobs of the campaign generator.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Simulated harness round-trip latency per component step/reset.
    pub latency: Duration,
    /// Iteration cap per job.
    pub max_iterations: usize,
    /// Per-job wall-clock deadline (`None` = no deadline).
    pub deadline: Option<Duration>,
    /// Cap on the number of generated jobs (`None` = full matrix). The cap
    /// truncates the deterministic enumeration, so capped campaigns are
    /// prefixes of the full one.
    pub max_jobs: Option<usize>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            latency: Duration::from_micros(500),
            max_iterations: 10_000,
            deadline: Some(Duration::from_secs(60)),
            max_jobs: None,
        }
    }
}

/// Expands the RailCab scenario into the variants × faults request
/// matrix — pure data, ready for `run_fleet` (via [`railcab_campaign`])
/// or a `muml-serve` daemon (verbatim, over the wire).
pub fn railcab_requests(options: &CampaignOptions) -> Vec<JobRequest> {
    let mut requests = Vec::new();
    // Fault matrices are enumerated against a throwaway universe; faults
    // carry state/signal *names*, so they re-resolve cleanly against each
    // job's own universe inside the worker.
    let u = Universe::new();
    for variant in shuttle_variants() {
        push_request(&mut requests, *variant, None, options);
        for fault in fault_matrix(&(variant.build)(&u), &u) {
            push_request(&mut requests, *variant, Some(&fault), options);
        }
    }
    if let Some(cap) = options.max_jobs {
        requests.truncate(cap);
    }
    requests
}

/// Expands the RailCab scenario into executable jobs by resolving
/// [`railcab_requests`] through the daemon's own scenario registry.
pub fn railcab_campaign(options: &CampaignOptions) -> Vec<Job> {
    let registry = railcab_registry();
    railcab_requests(options)
        .into_iter()
        .map(|request| {
            registry
                .resolve(&request)
                .expect("generated requests always resolve")
        })
        .collect()
}

fn push_request(
    requests: &mut Vec<JobRequest>,
    variant: ShuttleVariant,
    fault: Option<&Fault>,
    options: &CampaignOptions,
) {
    let id = requests.len();
    let fault_name = fault.map(Fault::describe);
    let name = match &fault_name {
        Some(f) => format!("{}/{f}", variant.name),
        None => format!("{}/baseline", variant.name),
    };
    let mut request = JobRequest::new(id, name)
        .with_scenario(SCENARIO)
        .with_pattern(PATTERN)
        .with_variant(variant.name)
        .with_max_iterations(options.max_iterations)
        .with_latency(options.latency);
    if let Some(f) = fault_name {
        request = request.with_fault(f);
    }
    if let Some(deadline) = options.deadline {
        request = request.with_deadline(deadline);
    }
    requests.push(request);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_enumeration_is_deterministic() {
        let options = CampaignOptions::default();
        let a = railcab_requests(&options);
        let b = railcab_requests(&options);
        assert!(a.len() >= 24, "expected dozens of jobs, got {}", a.len());
        assert_eq!(a, b);
        assert_eq!(a[0].name, "correct/baseline");
        assert!(a.iter().enumerate().all(|(i, r)| r.id == i));
        // Requests survive the wire encoding unchanged.
        for request in &a {
            assert_eq!(JobRequest::from_json(&request.to_json()).unwrap(), *request);
        }
        // Capped campaigns are prefixes.
        let capped = railcab_requests(&CampaignOptions {
            max_jobs: Some(5),
            ..options.clone()
        });
        assert_eq!(capped.len(), 5);
        assert_eq!(capped[4], a[4]);
        // Resolution keeps the request intact and covers the matrix.
        let jobs = railcab_campaign(&options);
        assert_eq!(jobs.len(), a.len());
        for (job, request) in jobs.iter().zip(&a) {
            assert_eq!(job.request, *request);
        }
    }

    #[test]
    fn baseline_jobs_reach_the_expected_verdicts() {
        use muml_fleet::{run_fleet, FleetConfig, JobOutcome};
        let options = CampaignOptions {
            latency: Duration::ZERO,
            max_jobs: None,
            ..CampaignOptions::default()
        };
        let registry = railcab_registry();
        let baselines: Vec<Job> = railcab_requests(&options)
            .into_iter()
            .filter(|r| r.fault.is_none())
            .map(|r| registry.resolve(&r).unwrap())
            .collect();
        assert_eq!(baselines.len(), 3);
        let report = run_fleet(
            baselines,
            &FleetConfig::default().with_workers(2),
            &mut muml_obs::NullFleetSink,
        );
        for (result, variant) in report.results.iter().zip(shuttle_variants()) {
            assert_eq!(result.request.variant, variant.name);
            if variant.proven_when_unmodified {
                assert_eq!(
                    result.outcome,
                    JobOutcome::Proven,
                    "{}",
                    result.request.name
                );
            } else {
                assert!(
                    matches!(result.outcome, JobOutcome::RealFault { .. }),
                    "{}: {:?}",
                    result.request.name,
                    result.outcome
                );
            }
        }
    }
}
