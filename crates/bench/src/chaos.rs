//! The chaos campaign (`repro chaos`): crash-safety of the whole
//! verification stack under seeded fault injection.
//!
//! Four axes, each with its own hard assertion (a violated assertion
//! panics before a report exists, so a written `BENCH_chaos.json` *is*
//! the proof that every check held):
//!
//! * **store** — the RailCab campaign runs against a warm-start store
//!   whose I/O layer is a seeded [`FaultyIo`] (torn writes, short reads,
//!   `ENOSPC`, rename and flock failures) at a sweep of fault rates.
//!   Every verdict must equal the store-less clean run: storage
//!   degradation may cost rig work, never correctness.
//! * **journal** — a daemon journals a campaign, then the journal is cut
//!   at seeded byte offsets (simulating a crash mid-append) and replayed
//!   by a fresh daemon. The replayed verdict history must be a
//!   bit-identical prefix of the original, and every re-queued job must
//!   re-run to its original verdict.
//! * **socket** — a swarm of seeded hostile clients (mid-frame stallers,
//!   idlers, garbage and oversized frames, abrupt disconnects) hammers a
//!   live server while a well-behaved client runs a campaign. The good
//!   client's verdicts must equal the clean run and the server must stay
//!   responsive.
//! * **worker** — fleet jobs kill their worker threads mid-job
//!   ([`WorkerKill`]) at a sweep of crash rates. Under the supervisor's
//!   crash budget every verdict must equal the crash-free run; over
//!   budget the job must surface the *typed* [`JobOutcome::Crashed`] —
//!   never a wrong verdict.
//!
//! DESIGN.md §18 documents the fault matrix and the `BENCH_chaos.json`
//! schema.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use muml_core::store::{FaultProfile, FaultyIo, Store};
use muml_fleet::{run_fleet, FleetConfig, FleetReport, Job, JobOutcome, WorkerKill};
use muml_obs::json::Json;
use muml_obs::NullFleetSink;
use muml_serve::{railcab_registry, Daemon, Journal, Priority, ServeClient, ServeConfig, Server};

use crate::campaign::{railcab_campaign, railcab_requests, CampaignOptions};

/// The fault rates the store and worker axes sweep.
pub const CHAOS_RATES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];

/// Journal cut points tried per campaign (seeded byte offsets).
pub const CHAOS_JOURNAL_CUTS: usize = 6;

/// Hostile clients the socket axis unleashes.
pub const CHAOS_HOSTILE_CLIENTS: usize = 8;

/// One rate of the store axis.
#[derive(Debug, Clone)]
pub struct ChaosStoreRow {
    /// Injected per-operation fault rate.
    pub rate: f64,
    /// Campaign cells run at this rate.
    pub jobs: usize,
    /// Store I/O faults actually injected.
    pub injected: usize,
}

/// The journal axis summary.
#[derive(Debug, Clone, Default)]
pub struct ChaosJournalRow {
    /// Verdicts in the reference history.
    pub verdicts: usize,
    /// Seeded cut points exercised.
    pub cuts: usize,
    /// Jobs re-queued (and re-run to the original verdict) across all
    /// cuts.
    pub resubmitted: usize,
    /// Torn-tail bytes truncated across all cuts.
    pub truncated_bytes: u64,
}

/// The socket axis summary.
#[derive(Debug, Clone, Default)]
pub struct ChaosSocketRow {
    /// Hostile connections thrown at the server.
    pub hostile: usize,
    /// Jobs the well-behaved client completed during the storm.
    pub good_jobs: usize,
}

/// One rate of the worker axis.
#[derive(Debug, Clone)]
pub struct ChaosWorkerRow {
    /// Per-job crash probability.
    pub rate: f64,
    /// Jobs run at this rate.
    pub jobs: usize,
    /// Worker crashes injected.
    pub crashes: usize,
}

/// The full chaos campaign result. Constructing one via [`chaos_campaign`]
/// already implies every hard assertion passed.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Store axis, in rate order.
    pub store: Vec<ChaosStoreRow>,
    /// Journal axis summary.
    pub journal: ChaosJournalRow,
    /// Socket axis summary.
    pub socket: ChaosSocketRow,
    /// Worker axis, in rate order.
    pub worker: Vec<ChaosWorkerRow>,
    /// Crashes the budget-exhaustion probe injected before the typed
    /// `crashed` outcome surfaced.
    pub budget_crashes: usize,
}

/// XorShift64* — the workspace's seeded PRNG idiom (no external crates).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&mut self, rate: f64) -> bool {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < rate
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "muml-chaos-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("create chaos temp dir");
    dir
}

fn outcome_names(report: &FleetReport) -> Vec<(usize, String)> {
    report
        .results
        .iter()
        .map(|r| (r.request.id, r.outcome.name().to_owned()))
        .collect()
}

/// Small, fast campaign slice shared by the axes (latency would only
/// stretch wall-clock; the chaos properties are latency-independent).
fn chaos_options(max_jobs: usize) -> CampaignOptions {
    CampaignOptions {
        latency: Duration::ZERO,
        max_jobs: Some(max_jobs),
        ..CampaignOptions::default()
    }
}

// ---------------------------------------------------------------- store

fn store_axis(rates: &[f64]) -> Vec<ChaosStoreRow> {
    let options = chaos_options(8);
    let clean = run_fleet(
        railcab_campaign(&options),
        &FleetConfig::default().with_workers(3),
        &mut NullFleetSink,
    );
    let truth = outcome_names(&clean);
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let io = Arc::new(FaultyIo::new(
                0x9E37_79B9_7F4A_7C15 ^ ((i as u64) << 24),
                FaultProfile::uniform(rate),
            ));
            let store = Arc::new(Store::open_with_io(tmpdir("store"), io.clone()));
            let report = run_fleet(
                railcab_campaign(&options),
                &FleetConfig::default()
                    .with_workers(3)
                    .with_shared_store(store),
                &mut NullFleetSink,
            );
            // THE store assertion: a degrading store never changes a
            // verdict — every miss reason cold-starts, every fault is
            // absorbed below the session.
            assert_eq!(
                outcome_names(&report),
                truth,
                "store faults at rate {rate} flipped a verdict"
            );
            if rate == 0.0 {
                assert_eq!(io.injected_count(), 0, "rate 0.0 must inject nothing");
            }
            ChaosStoreRow {
                rate,
                jobs: report.results.len(),
                injected: io.injected_count(),
            }
        })
        .collect()
}

// -------------------------------------------------------------- journal

fn journal_axis(cuts: usize) -> ChaosJournalRow {
    let dir = tmpdir("journal");
    let path = dir.join("serve.journal");
    let requests = railcab_requests(&chaos_options(4));

    // Reference run: journal everything, remember the exact history.
    let reference = {
        let daemon = Daemon::start(
            ServeConfig::default().with_workers(2).with_journal(&path),
            railcab_registry(),
        );
        let ids: Vec<u64> = requests
            .iter()
            .map(|r| daemon.submit(1, r, Priority::Normal).expect("admit"))
            .collect();
        for id in &ids {
            daemon.wait(*id).expect("verdict");
        }
        let history = daemon.history();
        daemon.shutdown();
        daemon.join();
        history
    };
    let outcome_of = |job: u64| -> &str {
        &reference
            .iter()
            .find(|r| r.job == job)
            .expect("every job has a reference verdict")
            .outcome
    };

    // Clean restart first: the whole history must replay bit-identically.
    {
        let daemon = Daemon::start(
            ServeConfig::default().with_workers(2).with_journal(&path),
            railcab_registry(),
        );
        let replay = daemon.journal_replay().expect("journal configured");
        assert_eq!(replay.finished, reference.len());
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(
            daemon.history(),
            reference,
            "clean replay must rebuild the history bit-identically"
        );
        daemon.shutdown();
        daemon.join();
    }

    let bytes = std::fs::read(&path).expect("read journal");
    let mut rng = XorShift::new(0xC3A5_C85C_97CB_3127);
    let mut row = ChaosJournalRow {
        verdicts: reference.len(),
        cuts,
        ..ChaosJournalRow::default()
    };
    for cut_index in 0..cuts {
        // A seeded crash point strictly inside the file: every prefix is
        // a state a real crash could have left behind.
        let cut = 1 + (rng.next() as usize) % (bytes.len() - 1);
        let cut_dir = tmpdir("journal-cut");
        let cut_path = cut_dir.join("serve.journal");
        std::fs::write(&cut_path, &bytes[..cut]).expect("write cut journal");
        // Learn the expected surviving records from an independent copy
        // (opening recovers — and truncates — in place).
        let probe_path = cut_dir.join("probe.journal");
        std::fs::write(&probe_path, &bytes[..cut]).expect("write probe");
        let (_, probe) = Journal::open(&probe_path).expect("probe replay");
        let expect_finished = probe.finished().len();
        let unfinished: Vec<u64> = probe.unfinished().iter().map(|r| r.job()).collect();

        let daemon = Daemon::start(
            ServeConfig::default()
                .with_workers(2)
                .with_journal(&cut_path),
            railcab_registry(),
        );
        let replay = daemon.journal_replay().expect("journal configured");
        row.truncated_bytes += replay.truncated_bytes;
        // THE journal assertions: the replayed history is a bit-identical
        // prefix of the reference, and every interrupted job re-runs to
        // the very same verdict.
        assert_eq!(
            daemon.history(),
            reference[..expect_finished],
            "cut {cut_index} at byte {cut}: replayed history diverged"
        );
        for job in &unfinished {
            let record = daemon.wait(*job).expect("resubmitted job completes");
            assert_eq!(
                record.outcome,
                outcome_of(*job),
                "cut {cut_index} at byte {cut}: job {job} changed verdict after replay"
            );
            row.resubmitted += 1;
        }
        daemon.shutdown();
        daemon.join();
    }
    row
}

// --------------------------------------------------------------- socket

/// One seeded hostile connection. Every behaviour leaves the server's
/// frame stream either in sync or fatally out of sync — never wedged.
fn hostile_client(addr: &str, behaviour: u64) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(400)));
    match behaviour % 5 {
        // Slowloris: a partial header, then silence until disconnected.
        0 => {
            let _ = stream.write_all(&[0x00, 0x01]);
            let mut buf = [0u8; 8];
            let _ = stream.read(&mut buf);
        }
        // Idler: connected, never sends a byte.
        1 => {
            let mut buf = [0u8; 8];
            let _ = stream.read(&mut buf);
        }
        // Garbage: a full frame of non-JSON bytes (typed rejection).
        2 => {
            let payload = b"\xde\xad\xbe\xef not json";
            let _ = stream.write_all(&(payload.len() as u32).to_be_bytes());
            let _ = stream.write_all(payload);
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
        }
        // Oversized: a length prefix beyond any sane cap, then the bytes.
        3 => {
            let _ = stream.write_all(&(64u32 << 20).to_be_bytes());
            let _ = stream.write_all(&[0u8; 1024]);
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
        }
        // Abrupt: half a header, then a hard disconnect.
        _ => {
            let _ = stream.write_all(&[0x00]);
        }
    }
}

fn socket_axis(hostiles: usize) -> ChaosSocketRow {
    let requests = railcab_requests(&chaos_options(3));
    let clean = run_fleet(
        railcab_campaign(&chaos_options(3)),
        &FleetConfig::default().with_workers(2),
        &mut NullFleetSink,
    );
    let truth = outcome_names(&clean);

    let daemon = Daemon::start(
        ServeConfig::default()
            .with_workers(2)
            .with_io_timeout(Duration::from_millis(100))
            .with_idle_timeout(Duration::from_millis(300)),
        railcab_registry(),
    );
    let server = Server::bind(daemon, Some("127.0.0.1:0"), None).expect("bind chaos server");
    let addr = server.tcp_addr().expect("tcp addr").to_string();

    let mut rng = XorShift::new(0xB549_8CF0_1D2E_77A3);
    let swarm: Vec<std::thread::JoinHandle<()>> = (0..hostiles)
        .map(|_| {
            let addr = addr.clone();
            let behaviour = rng.next();
            std::thread::spawn(move || hostile_client(&addr, behaviour))
        })
        .collect();

    // The well-behaved client runs its campaign *during* the storm.
    let mut client = ServeClient::connect_tcp(&addr).expect("connect good client");
    let mut good_jobs = 0usize;
    for request in &requests {
        let job = client
            .submit(request, Priority::Normal)
            .expect("good client admitted during the storm");
        let record = client.wait(job).expect("good client verdict");
        let expected = &truth
            .iter()
            .find(|(id, _)| *id == request.id)
            .expect("request in truth")
            .1;
        // THE socket assertion: hostile traffic never changes a verdict
        // (and never takes the server down).
        assert_eq!(
            &record.outcome, expected,
            "hostile socket traffic flipped the verdict of {}",
            request.name
        );
        good_jobs += 1;
    }
    for handle in swarm {
        let _ = handle.join();
    }
    // The server is still fully responsive after the storm. A *fresh*
    // connection, deliberately: while the swarm drains, the good
    // client's own idle connection is legitimately reaped by the very
    // deadline under test.
    drop(client);
    let mut probe = ServeClient::connect_tcp(&addr).expect("server accepts after the storm");
    let stats = probe.stats().expect("server alive after the storm");
    assert!(stats.completed >= good_jobs as u64);
    server.stop();
    ChaosSocketRow {
        hostile: hostiles,
        good_jobs,
    }
}

// --------------------------------------------------------------- worker

/// Wraps a job so its first `crashes` executions kill the worker thread.
fn crashing(job: Job, crashes: usize) -> Job {
    let Job { request, work } = job;
    let remaining = Arc::new(AtomicUsize::new(crashes));
    Job::new(request, move |ctx| {
        if remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            std::panic::panic_any(WorkerKill);
        }
        work(ctx)
    })
}

fn worker_axis(rates: &[f64]) -> Vec<ChaosWorkerRow> {
    let options = chaos_options(6);
    let clean = run_fleet(
        railcab_campaign(&options),
        &FleetConfig::default().with_workers(3),
        &mut NullFleetSink,
    );
    let truth = outcome_names(&clean);
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mut rng = XorShift::new(0x8765_4321_0FED_CBA9 ^ ((i as u64) << 16));
            let mut crashes = 0usize;
            let jobs: Vec<Job> = railcab_campaign(&options)
                .into_iter()
                .map(|job| {
                    let n = if rng.roll(rate) {
                        1 + (rng.next() as usize % 2)
                    } else {
                        0
                    };
                    crashes += n;
                    crashing(job, n)
                })
                .collect();
            let report = run_fleet(
                jobs,
                &FleetConfig::default().with_workers(3).with_crash_budget(3),
                &mut NullFleetSink,
            );
            // THE worker assertion: crashes under the supervisor's budget
            // re-run to the identical verdict.
            assert_eq!(
                outcome_names(&report),
                truth,
                "worker crashes at rate {rate} flipped a verdict"
            );
            ChaosWorkerRow {
                rate,
                jobs: report.results.len(),
                crashes,
            }
        })
        .collect()
}

/// A job that crashes more often than the budget tolerates must surface
/// the typed `crashed` outcome — not hang, not report a verdict.
fn budget_probe() -> usize {
    let job = railcab_campaign(&chaos_options(1)).remove(0);
    let report = run_fleet(
        vec![crashing(job, 5)],
        &FleetConfig::default().with_workers(2).with_crash_budget(1),
        &mut NullFleetSink,
    );
    match &report.results[0].outcome {
        JobOutcome::Crashed { crashes } => {
            assert!(*crashes > 1, "budget exhaustion implies repeated crashes");
            *crashes
        }
        other => panic!("budget exhaustion must be typed Crashed, got {other:?}"),
    }
}

/// Runs all four axes and asserts crash-safety end to end (see the module
/// docs). Panics on any verdict flip, any history divergence, or any
/// untyped crash surfacing.
pub fn chaos_campaign(rates: &[f64]) -> ChaosReport {
    ChaosReport {
        store: store_axis(rates),
        journal: journal_axis(CHAOS_JOURNAL_CUTS),
        socket: socket_axis(CHAOS_HOSTILE_CLIENTS),
        worker: worker_axis(rates),
        budget_crashes: budget_probe(),
    }
}

impl ChaosReport {
    /// The `BENCH_chaos.json` document (schema: DESIGN.md §18).
    pub fn to_json(&self) -> Json {
        let store_json = |r: &ChaosStoreRow| {
            Json::Object(vec![
                ("rate".into(), Json::Float(r.rate)),
                ("jobs".into(), Json::from_usize(r.jobs)),
                ("injected".into(), Json::from_usize(r.injected)),
                ("matched".into(), Json::Bool(true)),
            ])
        };
        let worker_json = |r: &ChaosWorkerRow| {
            Json::Object(vec![
                ("rate".into(), Json::Float(r.rate)),
                ("jobs".into(), Json::from_usize(r.jobs)),
                ("crashes".into(), Json::from_usize(r.crashes)),
                ("matched".into(), Json::Bool(true)),
            ])
        };
        Json::Object(vec![
            ("artefact".into(), Json::Str("chaos".into())),
            // Reaching serialization means every axis's hard assertion
            // held — a violation panics inside chaos_campaign.
            ("verdicts_sound".into(), Json::Bool(true)),
            (
                "store".into(),
                Json::Array(self.store.iter().map(store_json).collect()),
            ),
            (
                "journal".into(),
                Json::Object(vec![
                    ("verdicts".into(), Json::from_usize(self.journal.verdicts)),
                    ("cuts".into(), Json::from_usize(self.journal.cuts)),
                    (
                        "resubmitted".into(),
                        Json::from_usize(self.journal.resubmitted),
                    ),
                    (
                        "truncated_bytes".into(),
                        Json::from_u64(self.journal.truncated_bytes),
                    ),
                    ("history_identical".into(), Json::Bool(true)),
                ]),
            ),
            (
                "socket".into(),
                Json::Object(vec![
                    ("hostile".into(), Json::from_usize(self.socket.hostile)),
                    ("good_jobs".into(), Json::from_usize(self.socket.good_jobs)),
                    ("survived".into(), Json::Bool(true)),
                ]),
            ),
            (
                "worker".into(),
                Json::Array(self.worker.iter().map(worker_json).collect()),
            ),
            (
                "budget_probe".into(),
                Json::Object(vec![
                    ("crashes".into(), Json::from_usize(self.budget_crashes)),
                    ("outcome".into(), Json::Str("crashed".into())),
                ]),
            ),
        ])
    }

    /// Human-readable axis summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "store axis   {:>6} {:>6} {:>9}\n",
            "rate", "jobs", "injected"
        ));
        for r in &self.store {
            out.push_str(&format!(
                "             {:>6.2} {:>6} {:>9}\n",
                r.rate, r.jobs, r.injected
            ));
        }
        out.push_str(&format!(
            "journal axis {} verdicts, {} cuts, {} resubmitted, {} bytes truncated\n",
            self.journal.verdicts,
            self.journal.cuts,
            self.journal.resubmitted,
            self.journal.truncated_bytes
        ));
        out.push_str(&format!(
            "socket axis  {} hostile clients, {} good jobs served\n",
            self.socket.hostile, self.socket.good_jobs
        ));
        out.push_str(&format!(
            "worker axis  {:>6} {:>6} {:>8}\n",
            "rate", "jobs", "crashes"
        ));
        for r in &self.worker {
            out.push_str(&format!(
                "             {:>6.2} {:>6} {:>8}\n",
                r.rate, r.jobs, r.crashes
            ));
        }
        out.push_str(&format!(
            "budget probe {} crashes -> typed `crashed` outcome\n",
            self.budget_crashes
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_campaign_is_sound_at_modest_rates() {
        // All four axes' hard assertions live inside chaos_campaign;
        // completing is the test.
        let report = chaos_campaign(&[0.0, 0.15]);
        assert_eq!(report.store.len(), 2);
        assert_eq!(report.store[0].injected, 0);
        assert!(report.store[1].injected > 0, "rate 0.15 must inject");
        assert_eq!(report.journal.cuts, CHAOS_JOURNAL_CUTS);
        assert!(report.journal.verdicts > 0);
        assert_eq!(report.socket.hostile, CHAOS_HOSTILE_CLIENTS);
        assert!(report.budget_crashes > 1);
        let json = report.to_json().encode();
        assert!(json.contains("\"verdicts_sound\":true"), "{json}");
    }
}
