//! Benchmark harness: workload generators and experiment runners that
//! regenerate every figure, listing, and experiment table of the paper
//! (see DESIGN.md §3 and the `repro` binary).

#![warn(missing_docs)]

pub mod campaign;
pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod probe;
pub mod storm;
pub mod warm;
pub mod workload;
