//! Parametric workloads for the experiment tables T-A … T-E (DESIGN.md §3).
//!
//! The scalable scenario is a *counter protocol*: the legacy component is a
//! hidden `n`-state counter that silently counts `up` inputs and announces
//! `top` when saturated; the context is a driver that pushes the counter
//! `k` times and then idles. The parameter `k/n` is the **context
//! restrictiveness**: the smaller it is, the smaller the fraction of the
//! component the paper's approach has to learn, while full-learning
//! baselines always pay for all `n` states (they cannot know the context
//! will never reach the rest).

use muml_automata::{Automaton, AutomatonBuilder, SignalSet, Universe};
use muml_legacy::{Fault, HiddenMealy, MealyBuilder};

/// A generated counter-protocol workload.
pub struct CounterWorkload {
    /// The shared universe.
    pub universe: Universe,
    /// The driver context (pushes `k` times, then idles).
    pub context: Automaton,
    /// The hidden counter component (`n` states).
    pub component: HiddenMealy,
    /// Number of component states.
    pub n: usize,
    /// Number of pushes the context performs.
    pub k: usize,
}

/// Builds the `n`-state counter component: state `c0 … c(n-1)`; `up`
/// advances, the saturated top state replies `top` to further pushes.
/// Unknown inputs leave it quiet (a typical reactive legacy component).
pub fn counter_component(u: &Universe, n: usize) -> HiddenMealy {
    assert!(n >= 2, "counter needs at least 2 states");
    let mut b = MealyBuilder::new(u, "counter").input("up").output("top");
    for i in 0..n {
        b = b.state(&format!("c{i}"));
    }
    b = b.initial("c0");
    for i in 0..n - 1 {
        b = b.rule(&format!("c{i}"), ["up"], [], &format!("c{}", i + 1));
        b = b.rule(&format!("c{i}"), [], [], &format!("c{i}"));
    }
    let top = format!("c{}", n - 1);
    b = b.rule(&top, ["up"], ["top"], &top);
    b = b.rule(&top, [], [], &top);
    b.build().expect("counter is well-formed")
}

/// Builds the driver context: `k` pushes, then idle forever. The driver
/// never listens for `top` — if the component ever announced it, the
/// composition would deadlock (which is exactly what happens when a seeded
/// fault makes the counter saturate early).
pub fn driver_context(u: &Universe, k: usize) -> Automaton {
    let mut b = AutomatonBuilder::new(u, "driver").output("up").input("top");
    for i in 0..=k {
        b = b.state(&format!("d{i}"));
    }
    b = b.initial("d0");
    for i in 0..k {
        b = b.transition(&format!("d{i}"), [], ["up"], &format!("d{}", i + 1));
    }
    b = b.transition(&format!("d{k}"), [], [], &format!("d{k}"));
    b.build().expect("driver is well-formed")
}

/// A counter workload with `n` component states and `k` context pushes
/// (`k ≤ n - 2` keeps the composition fault-free: the counter never
/// saturates).
pub fn counter_workload(n: usize, k: usize) -> CounterWorkload {
    let u = Universe::new();
    let component = counter_component(&u, n);
    let context = driver_context(&u, k);
    CounterWorkload {
        universe: u,
        context,
        component,
        n,
        k,
    }
}

/// Seeds the paper-style fault at depth `d`: the counter mis-announces
/// `top` already when leaving state `c(d)` — an early saturation the
/// context cannot accept, i.e. a real integration fault reachable after
/// `d + 1` pushes.
pub fn seed_fault(w: &mut CounterWorkload, d: usize) {
    assert!(d < w.n - 1, "fault depth must lie inside the counter");
    muml_legacy::inject(
        &mut w.component,
        &w.universe,
        &Fault::ChangeOutput {
            state: format!("c{d}"),
            inputs: vec!["up".into()],
            new_outputs: vec!["top".into()],
        },
    )
    .expect("fault targets an existing rule");
}

/// The learning alphabet of the counter protocol (for the `L*`/BBC
/// baselines): the inputs the context can offer.
pub fn counter_alphabet(u: &Universe) -> Vec<SignalSet> {
    vec![SignalSet::EMPTY, u.signals(["up"])]
}

/// A two-component workload for T-E: the driver alternates pushes between
/// two independent counters.
pub struct TwinWorkload {
    /// The shared universe.
    pub universe: Universe,
    /// The alternating driver.
    pub context: Automaton,
    /// First counter (signals `up1`/`top1`).
    pub left: HiddenMealy,
    /// Second counter (signals `up2`/`top2`).
    pub right: HiddenMealy,
}

/// Builds the twin-counter workload: each counter has `n` states; the
/// driver pushes each `k` times, alternating.
pub fn twin_workload(n: usize, k: usize) -> TwinWorkload {
    let u = Universe::new();
    let mk = |tag: &str| -> HiddenMealy {
        let mut b = MealyBuilder::new(&u, &format!("counter{tag}"))
            .input(&format!("up{tag}"))
            .output(&format!("top{tag}"));
        for i in 0..n {
            b = b.state(&format!("c{i}"));
        }
        b = b.initial("c0");
        for i in 0..n - 1 {
            b = b.rule(
                &format!("c{i}"),
                [format!("up{tag}").as_str()],
                [],
                &format!("c{}", i + 1),
            );
            b = b.rule(&format!("c{i}"), [], [], &format!("c{i}"));
        }
        let top = format!("c{}", n - 1);
        b = b.rule(
            &top,
            [format!("up{tag}").as_str()],
            [format!("top{tag}").as_str()],
            &top,
        );
        b = b.rule(&top, [], [], &top);
        b.build().expect("twin counter is well-formed")
    };
    let left = mk("1");
    let right = mk("2");
    let mut b = AutomatonBuilder::new(&u, "driver")
        .outputs(["up1", "up2"])
        .inputs(["top1", "top2"]);
    for i in 0..=(2 * k) {
        b = b.state(&format!("d{i}"));
    }
    b = b.initial("d0");
    for i in 0..(2 * k) {
        let sig = if i % 2 == 0 { "up1" } else { "up2" };
        b = b.transition(&format!("d{i}"), [], [sig], &format!("d{}", i + 1));
    }
    b = b.transition(&format!("d{}", 2 * k), [], [], &format!("d{}", 2 * k));
    let context = b.build().expect("twin driver is well-formed");
    TwinWorkload {
        universe: u,
        context,
        left,
        right,
    }
}

/// A generated ticker-grid workload: `k` independent free-running tickers
/// whose product has exactly `m^k` reachable states (see
/// [`ticker_workload`]).
pub struct TickerWorkload {
    /// The shared universe.
    pub universe: Universe,
    /// The `k` ticker automata, ready to compose.
    pub parts: Vec<Automaton>,
    /// Cycle length of each ticker.
    pub m: usize,
    /// The full product size, `m^k`.
    pub product_states: usize,
}

/// Builds `k` independent `m`-state cycle automata ("tickers"). Each
/// ticker `i` either stutters in place or advances one step emitting its
/// private output `tick{i}` — nobody listens to it — so every product step
/// advances an arbitrary subset of tickers and **all `m^k` phase tuples
/// are reachable** (with `2^k` successors each). This is the million-state
/// stress shape for the on-the-fly product checker: dense, deadlock-free,
/// and with a size known in closed form without expanding anything.
///
/// Ticker 0 carries the proposition `bad` on its state `s{bad_depth}`, so
/// `AG !bad` is falsified by a shortest trace of `bad_depth` steps (and
/// `EF bad` is witnessed by it) — the early-exit cases — while
/// `AG !deadlock` holds and forces a full expansion.
pub fn ticker_workload(k: usize, m: usize, bad_depth: usize) -> TickerWorkload {
    assert!(k >= 1 && m >= 2, "need at least one 2-state ticker");
    assert!(bad_depth < m, "bad state must lie on the cycle");
    let u = Universe::new();
    let parts: Vec<Automaton> = (0..k)
        .map(|i| {
            let tick = format!("tick{i}");
            let mut b = AutomatonBuilder::new(&u, &format!("t{i}")).output(&tick);
            for j in 0..m {
                b = b.state(&format!("s{j}"));
            }
            b = b.initial("s0");
            if i == 0 {
                b = b.prop(&format!("s{bad_depth}"), "bad");
            }
            for j in 0..m {
                let here = format!("s{j}");
                let next = format!("s{}", (j + 1) % m);
                b = b.transition(&here, [], [], &here);
                b = b.transition(&here, [], [tick.as_str()], &next);
            }
            b.build().expect("ticker is well-formed")
        })
        .collect();
    TickerWorkload {
        universe: u,
        parts,
        m,
        product_states: m.pow(k as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_legacy::{LegacyComponent, StateObservable};

    #[test]
    fn counter_counts_and_saturates() {
        let w = counter_workload(4, 2);
        let mut c = w.component;
        let up = w.universe.signals(["up"]);
        let top = w.universe.signals(["top"]);
        assert_eq!(c.step(up), SignalSet::EMPTY);
        assert_eq!(c.step(up), SignalSet::EMPTY);
        assert_eq!(c.step(up), SignalSet::EMPTY); // now at c3 (top)
        assert_eq!(c.step(up), top);
        assert_eq!(c.observable_state(), "c3");
    }

    #[test]
    fn seeded_fault_saturates_early() {
        let mut w = counter_workload(6, 3);
        seed_fault(&mut w, 1);
        let up = w.universe.signals(["up"]);
        let top = w.universe.signals(["top"]);
        let mut c = w.component;
        assert_eq!(c.step(up), SignalSet::EMPTY);
        assert_eq!(c.step(up), top); // announced far too early
    }

    #[test]
    fn driver_pushes_then_idles() {
        let u = Universe::new();
        let d = driver_context(&u, 2);
        assert_eq!(d.state_count(), 3);
        let d2 = d.find_state("d2").unwrap();
        assert!(d.enables(d2, muml_automata::Label::EMPTY));
    }

    #[test]
    fn twin_workload_is_composable() {
        let w = twin_workload(3, 2);
        assert_eq!(w.context.state_count(), 5);
        let (i1, o1) = w.left.interface();
        let (i2, o2) = w.right.interface();
        assert!(i1.is_disjoint(i2));
        assert!(o1.is_disjoint(o2));
    }
}
