//! The flake-storm campaign (`repro storm`): soundness of the retrying
//! test executor under injected rig faults.
//!
//! Every workload is first run on a clean rig to fix its ground-truth
//! verdict, then re-run with the legacy component wrapped in an
//! [`UnreliableRig`] at a sweep of fault rates. The campaign **hard
//! asserts** the tentpole property of the flake-tolerance design: a
//! conclusive verdict (proven / real fault) produced on a flaky rig is
//! *identical* to the clean-rig verdict — flakiness may only ever add
//! `Inconclusive` outcomes, never flip a verdict. At rate `0.0` the rig
//! wrapper is exercised but injects nothing, so every verdict must be
//! conclusive and matching.

use crate::workload::{counter_workload, seed_fault};
use muml_core::{
    verify_integration, CoreError, IntegrationConfig, IntegrationReport, IntegrationVerdict,
    LegacyUnit,
};
use muml_legacy::{PortMap, RetryPolicy, RigFaultProfile, UnreliableRig};
use muml_obs::json::Json;
use muml_railcab::{correct_shuttle, faulty_shuttle, front_context, scenario};

/// The fault rates the storm sweeps (per-kind uniform split, see
/// [`RigFaultProfile::uniform`]).
pub const STORM_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.25];

/// One workload × rate cell of the storm matrix.
#[derive(Debug, Clone)]
pub struct StormJobRow {
    /// Workload name.
    pub workload: String,
    /// Injected fault rate.
    pub rate: f64,
    /// The clean-rig ground-truth verdict name.
    pub clean: String,
    /// The flaky-rig verdict name.
    pub flaky: String,
    /// `Some(true)` when the flaky verdict was conclusive and equal to the
    /// clean one; `None` when the flaky run was honestly inconclusive.
    pub matched: Option<bool>,
    /// Test executions counted by the session (retries included).
    pub attempts: usize,
    /// Attempts beyond each test's first.
    pub retries: usize,
    /// Attempts the quorum executor rejected as rig-corrupted.
    pub suspected: usize,
    /// Counterexamples the session quarantined.
    pub quarantined: usize,
    /// Faults the rig actually injected during the run.
    pub injected: usize,
    /// Simulated backoff ticks spent between attempts.
    pub backoff_ticks: u64,
}

/// Aggregation of one rate across all workloads.
#[derive(Debug, Clone)]
pub struct StormRateRow {
    /// Injected fault rate.
    pub rate: f64,
    /// Workloads run at this rate.
    pub jobs: usize,
    /// Runs that reached a conclusive verdict.
    pub conclusive: usize,
    /// Runs that honestly declined to issue a verdict.
    pub inconclusive: usize,
    /// Total test attempts.
    pub attempts: usize,
    /// Total retries.
    pub retries: usize,
    /// Total rejected attempts.
    pub suspected: usize,
    /// Total quarantined counterexamples.
    pub quarantined: usize,
    /// Total injected rig faults.
    pub injected: usize,
    /// Total simulated backoff ticks.
    pub backoff_ticks: u64,
}

/// The full storm campaign result. Constructing one via [`storm_campaign`]
/// already implies the soundness assertion passed — a violated assertion
/// panics before the report exists.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Per-rate aggregation, in [`STORM_RATES`] order.
    pub rates: Vec<StormRateRow>,
    /// Per-cell rows, rate-major.
    pub jobs: Vec<StormJobRow>,
}

/// The workloads the storm runs: both RailCab walkthrough verdicts and
/// both counter-protocol verdicts, so proven *and* real-fault ground
/// truths are defended against flipping.
enum Workload {
    Railcab {
        faulty: bool,
    },
    Counter {
        n: usize,
        k: usize,
        fault: Option<usize>,
    },
}

impl Workload {
    fn all() -> Vec<(String, Workload)> {
        vec![
            (
                "railcab/correct".to_owned(),
                Workload::Railcab { faulty: false },
            ),
            (
                "railcab/faulty".to_owned(),
                Workload::Railcab { faulty: true },
            ),
            (
                "counter/n=8,k=5".to_owned(),
                Workload::Counter {
                    n: 8,
                    k: 5,
                    fault: None,
                },
            ),
            (
                "counter/n=8,k=6,fault@2".to_owned(),
                Workload::Counter {
                    n: 8,
                    k: 6,
                    fault: Some(2),
                },
            ),
        ]
    }

    /// Runs the workload, optionally behind an [`UnreliableRig`]; returns
    /// the session result and the number of faults the rig injected.
    fn run(
        &self,
        profile: Option<RigFaultProfile>,
        config: &IntegrationConfig,
    ) -> (Result<IntegrationReport, CoreError>, usize) {
        match self {
            Workload::Railcab { faulty } => {
                let u = muml_automata::Universe::new();
                let context = front_context(&u);
                let shuttle = if *faulty {
                    faulty_shuttle(&u)
                } else {
                    correct_shuttle(&u)
                };
                let props = vec![scenario::pattern_constraint(&u)];
                let ports = scenario::rear_port_map(&u);
                match profile {
                    Some(p) => {
                        let mut rig = UnreliableRig::new(shuttle, p);
                        let result = {
                            let mut units = [LegacyUnit::new(&mut rig, ports)];
                            verify_integration(&u, &context, &props, &mut units, config)
                        };
                        (result, rig.total_injected())
                    }
                    None => {
                        let mut shuttle = shuttle;
                        let mut units = [LegacyUnit::new(&mut shuttle, ports)];
                        (
                            verify_integration(&u, &context, &props, &mut units, config),
                            0,
                        )
                    }
                }
            }
            Workload::Counter { n, k, fault } => {
                let mut w = counter_workload(*n, *k);
                if let Some(d) = fault {
                    seed_fault(&mut w, *d);
                }
                let ports = PortMap::with_default("p");
                match profile {
                    Some(p) => {
                        let mut rig = UnreliableRig::new(w.component, p);
                        let result = {
                            let mut units = [LegacyUnit::new(&mut rig, ports)];
                            verify_integration(&w.universe, &w.context, &[], &mut units, config)
                        };
                        (result, rig.total_injected())
                    }
                    None => {
                        let mut units = [LegacyUnit::new(&mut w.component, ports)];
                        (
                            verify_integration(&w.universe, &w.context, &[], &mut units, config),
                            0,
                        )
                    }
                }
            }
        }
    }
}

fn verdict_name(verdict: &IntegrationVerdict) -> &'static str {
    match verdict {
        IntegrationVerdict::Proven => "proven",
        IntegrationVerdict::RealFault { .. } => "real_fault",
        IntegrationVerdict::Inconclusive { .. } => "inconclusive",
    }
}

/// Deterministic per-cell seed: the campaign must reproduce bit-identically
/// across runs, so seeds derive from the matrix coordinates alone.
fn cell_seed(workload: usize, rate: usize) -> u64 {
    0x5851_F42D_4C95_7F2D ^ ((workload as u64) << 32) ^ ((rate as u64) << 8) ^ 0xB5
}

/// Runs the storm over `rates` and asserts verdict soundness (see module
/// docs). Panics on any conclusive flaky verdict that differs from the
/// clean one, on any inconclusive run at rate `0.0`, and on any session
/// error.
pub fn storm_campaign(rates: &[f64]) -> StormReport {
    let workloads = Workload::all();
    // Generous attempts and a 3-vote quorum. The per-attempt defence is
    // the replay cross-check (outputs *and* period counters — a withheld
    // input is silent on a quiet trace but never advances the period);
    // the quorum then requires identical fault effects in three separate
    // attempts of an advancing PRNG, which at per-kind rates of a few
    // percent is astronomically unlikely. Both layers are needed: without
    // the period probe, a stuck period in the replay phase of a silent
    // trace yields a stalled-but-consistent observation that can win the
    // quorum and mislocate the deadlock frontier (a verdict flip this
    // campaign reproduced at rate 0.25 before the probe existed).
    let flaky_config = IntegrationConfig::default()
        .with_retry_policy(
            RetryPolicy::default()
                .with_max_attempts(12)
                .with_quorum(3)
                .with_backoff(1, 2, 64),
        )
        .with_flake_budget(4);

    // Ground truth on a clean rig, once per workload.
    let clean: Vec<String> = workloads
        .iter()
        .map(|(name, w)| {
            let (result, _) = w.run(None, &IntegrationConfig::default());
            let report = result.unwrap_or_else(|e| panic!("clean run of {name} failed: {e}"));
            assert!(
                report.verdict.conclusive(),
                "clean run of {name} must be conclusive"
            );
            verdict_name(&report.verdict).to_owned()
        })
        .collect();

    let mut jobs: Vec<StormJobRow> = Vec::new();
    let mut rate_rows: Vec<StormRateRow> = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut row = StormRateRow {
            rate,
            jobs: 0,
            conclusive: 0,
            inconclusive: 0,
            attempts: 0,
            retries: 0,
            suspected: 0,
            quarantined: 0,
            injected: 0,
            backoff_ticks: 0,
        };
        for (wi, (name, w)) in workloads.iter().enumerate() {
            let profile = RigFaultProfile::uniform(cell_seed(wi, ri), rate);
            let (result, injected) = w.run(Some(profile), &flaky_config);
            let report =
                result.unwrap_or_else(|e| panic!("storm run of {name} at rate {rate} failed: {e}"));
            let flaky = verdict_name(&report.verdict).to_owned();
            let matched = if report.verdict.conclusive() {
                // THE storm assertion: flakiness must never flip a verdict.
                assert_eq!(
                    flaky, clean[wi],
                    "rig flakiness flipped the verdict of {name} at rate {rate}"
                );
                row.conclusive += 1;
                Some(true)
            } else {
                assert!(
                    rate > 0.0,
                    "{name} was inconclusive on a fault-free rig (rate 0.0)"
                );
                row.inconclusive += 1;
                None
            };
            let stats = &report.stats;
            row.jobs += 1;
            row.attempts += stats.test_attempts;
            row.retries += stats.test_retries;
            row.suspected += stats.suspected_rig_faults;
            row.quarantined += stats.quarantined_tests;
            row.injected += injected;
            row.backoff_ticks += stats.backoff_ticks;
            jobs.push(StormJobRow {
                workload: name.clone(),
                rate,
                clean: clean[wi].clone(),
                flaky,
                matched,
                attempts: stats.test_attempts,
                retries: stats.test_retries,
                suspected: stats.suspected_rig_faults,
                quarantined: stats.quarantined_tests,
                injected,
                backoff_ticks: stats.backoff_ticks,
            });
        }
        rate_rows.push(row);
    }
    StormReport {
        rates: rate_rows,
        jobs,
    }
}

impl StormReport {
    /// The `BENCH_storm.json` document (schema: DESIGN.md §13).
    pub fn to_json(&self) -> Json {
        let rate_json = |r: &StormRateRow| {
            Json::Object(vec![
                ("rate".into(), Json::Float(r.rate)),
                ("jobs".into(), Json::from_usize(r.jobs)),
                ("conclusive".into(), Json::from_usize(r.conclusive)),
                ("inconclusive".into(), Json::from_usize(r.inconclusive)),
                ("attempts".into(), Json::from_usize(r.attempts)),
                ("retries".into(), Json::from_usize(r.retries)),
                ("suspected".into(), Json::from_usize(r.suspected)),
                ("quarantined".into(), Json::from_usize(r.quarantined)),
                ("injected".into(), Json::from_usize(r.injected)),
                ("backoff_ticks".into(), Json::from_u64(r.backoff_ticks)),
            ])
        };
        let job_json = |j: &StormJobRow| {
            Json::Object(vec![
                ("workload".into(), Json::Str(j.workload.clone())),
                ("rate".into(), Json::Float(j.rate)),
                ("clean".into(), Json::Str(j.clean.clone())),
                ("flaky".into(), Json::Str(j.flaky.clone())),
                (
                    "matched".into(),
                    match j.matched {
                        Some(m) => Json::Bool(m),
                        None => Json::Null,
                    },
                ),
                ("attempts".into(), Json::from_usize(j.attempts)),
                ("retries".into(), Json::from_usize(j.retries)),
                ("suspected".into(), Json::from_usize(j.suspected)),
                ("quarantined".into(), Json::from_usize(j.quarantined)),
                ("injected".into(), Json::from_usize(j.injected)),
                ("backoff_ticks".into(), Json::from_u64(j.backoff_ticks)),
            ])
        };
        Json::Object(vec![
            ("artefact".into(), Json::Str("storm".into())),
            // Reaching serialization means the soundness assertion held
            // for every cell — a violation panics inside storm_campaign.
            ("verdicts_sound".into(), Json::Bool(true)),
            (
                "rates".into(),
                Json::Array(self.rates.iter().map(rate_json).collect()),
            ),
            (
                "jobs".into(),
                Json::Array(self.jobs.iter().map(job_json).collect()),
            ),
        ])
    }

    /// Human-readable per-rate table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>6} {:>5} {:>11} {:>13} {:>9} {:>8} {:>10} {:>12} {:>9}\n",
            "rate",
            "jobs",
            "conclusive",
            "inconclusive",
            "attempts",
            "retries",
            "suspected",
            "quarantined",
            "injected"
        ));
        for r in &self.rates {
            out.push_str(&format!(
                "{:>6.2} {:>5} {:>11} {:>13} {:>9} {:>8} {:>10} {:>12} {:>9}\n",
                r.rate,
                r.jobs,
                r.conclusive,
                r.inconclusive,
                r.attempts,
                r.retries,
                r.suspected,
                r.quarantined,
                r.injected
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_is_sound_at_a_modest_rate() {
        // One clean column and one flaky column; the soundness assertion
        // lives inside storm_campaign, so completing is the test.
        let report = storm_campaign(&[0.0, 0.05]);
        assert_eq!(report.rates.len(), 2);
        assert_eq!(report.rates[0].rate, 0.0);
        assert_eq!(report.rates[0].inconclusive, 0, "rate 0.0 must conclude");
        assert_eq!(report.rates[0].injected, 0, "rate 0.0 must inject nothing");
        assert_eq!(report.jobs.len(), 2 * report.rates[0].jobs);
        let json = report.to_json().encode();
        assert!(json.contains("\"verdicts_sound\":true"), "{json}");
    }
}
