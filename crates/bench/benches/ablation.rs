//! Ablation: the Section-7 "multiple counterexamples per check"
//! improvement — batched vs single counterexample derivation on the
//! counter protocol.

use muml_bench::harness::Group;
use muml_bench::workload::counter_workload;
use muml_core::{verify_integration, IntegrationConfig, LegacyUnit};
use muml_legacy::PortMap;

fn run(batch: usize) -> usize {
    let w = counter_workload(8, 5);
    let mut c = w.component.clone();
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("p"))];
    let report = verify_integration(
        &w.universe,
        &w.context,
        &[],
        &mut units,
        &IntegrationConfig::default().with_batch_counterexamples(batch),
    )
    .unwrap();
    assert!(report.verdict.proven());
    report.stats.iterations
}

fn main() {
    let mut group = Group::new("ablation_batch_cex");
    group.sample_size(10);
    for batch in [1usize, 4, 16] {
        group.bench(&format!("batch/{batch}"), || run(batch));
    }
    group.finish();
}
