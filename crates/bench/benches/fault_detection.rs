//! T-C: time to confirm a seeded fault at varying depth (claim C3 — fast
//! conflict detection without false negatives).

use muml_bench::experiments::{run_bbc, run_ours};
use muml_bench::harness::Group;
use muml_bench::workload::{counter_workload, seed_fault};

fn main() {
    let mut group = Group::new("fault_detection");
    group.sample_size(10);
    for d in [1usize, 4] {
        let mut w = counter_workload(8, 6);
        seed_fault(&mut w, d);
        group.bench(&format!("ours/{d}"), || {
            let cost = run_ours(&w);
            assert_eq!(cost.outcome, "fault");
            cost
        });
        group.bench(&format!("bbc/{d}"), || {
            let cost = run_bbc(&w);
            assert_eq!(cost.outcome, "fault");
            cost
        });
    }
    group.finish();
}
