//! T-C: time to confirm a seeded fault at varying depth (claim C3 — fast
//! conflict detection without false negatives).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muml_bench::experiments::{run_bbc, run_ours};
use muml_bench::workload::{counter_workload, seed_fault};

fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_detection");
    group.sample_size(10);
    for d in [1usize, 4] {
        let mut w = counter_workload(8, 6);
        seed_fault(&mut w, d);
        group.bench_with_input(BenchmarkId::new("ours", d), &d, |b, _| {
            b.iter(|| {
                let cost = run_ours(&w);
                assert_eq!(cost.outcome, "fault");
                cost
            })
        });
        group.bench_with_input(BenchmarkId::new("bbc", d), &d, |b, _| {
            b.iter(|| {
                let cost = run_bbc(&w);
                assert_eq!(cost.outcome, "fault");
                cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
