//! T-D: kernel scalability — chaotic closure, composition, refinement, and
//! model checking on counter workloads of growing size.

use muml_automata::{
    chaotic_closure, compose2, refines_with, Label, Observation, PropSet, RefineOptions, SignalSet,
};
use muml_bench::harness::Group;
use muml_bench::workload::counter_workload;
use muml_core::{default_mapper, initial_knowledge};
use muml_logic::{Checker, Formula};

/// Pre-learns the context-reachable prefix of the counter so the closure is
/// representative of a late iteration.
fn learned_counter(
    n: usize,
) -> (
    muml_automata::Universe,
    muml_automata::Automaton,
    muml_automata::IncompleteAutomaton,
) {
    let w = counter_workload(n, n / 2);
    let mapper = default_mapper("counter");
    let mut inc = initial_knowledge(&w.universe, &w.component, &mapper);
    let up = w.universe.signals(["up"]);
    let mut states = vec!["c0".to_owned()];
    let mut labels = Vec::new();
    for i in 1..=(n / 2) {
        states.push(format!("c{i}"));
        labels.push(Label::new(up, SignalSet::EMPTY));
    }
    inc.learn(&Observation::regular(states, labels)).unwrap();
    (w.universe, w.context, inc)
}

fn main() {
    let mut group = Group::new("kernel");
    group.sample_size(20);
    for n in [8usize, 32] {
        let (u, ctx, inc) = learned_counter(n);
        let chaos = u.prop("__chaos__");
        group.bench(&format!("chaotic_closure/{n}"), || {
            chaotic_closure(&inc, Some(chaos))
        });
        let closure = chaotic_closure(&inc, Some(chaos));
        group.bench(&format!("compose/{n}"), || {
            compose2(&ctx, &closure).unwrap()
        });
        let comp = compose2(&ctx, &closure).unwrap();
        group.bench(&format!("check_deadlock_free/{n}"), || {
            let mut checker = Checker::new(&comp.automaton);
            checker.satisfies(&Formula::deadlock_free())
        });
        // Refinement: the known part refines its own closure (Theorem 1).
        let known = inc.known_automaton();
        let opts = RefineOptions {
            wildcard_props: PropSet::singleton(chaos),
            ..RefineOptions::default()
        };
        group.bench(&format!("refines_closure/{n}"), || {
            refines_with(&known, &closure, &opts).unwrap()
        });
    }
    group.finish();
}
