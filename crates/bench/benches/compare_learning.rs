//! T-A: the paper's approach vs `L*`+check vs black-box checking on the
//! counter protocol (n = 6, k = 3).

use criterion::{criterion_group, criterion_main, Criterion};
use muml_bench::experiments::{run_bbc, run_lstar_then_check, run_ours};
use muml_bench::workload::counter_workload;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare_learning");
    group.sample_size(10);
    let w = counter_workload(6, 3);
    group.bench_function("ours", |b| b.iter(|| run_ours(&w)));
    group.bench_function("lstar_then_check", |b| b.iter(|| run_lstar_then_check(&w)));
    group.bench_function("black_box_checking", |b| b.iter(|| run_bbc(&w)));
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
