//! T-A: the paper's approach vs `L*`+check vs black-box checking on the
//! counter protocol (n = 6, k = 3).

use muml_bench::experiments::{run_bbc, run_lstar_then_check, run_ours};
use muml_bench::harness::Group;
use muml_bench::workload::counter_workload;

fn main() {
    let mut group = Group::new("compare_learning");
    group.sample_size(10);
    let w = counter_workload(6, 3);
    group.bench("ours", || run_ours(&w));
    group.bench("lstar_then_check", || run_lstar_then_check(&w));
    group.bench("black_box_checking", || run_bbc(&w));
    group.finish();
}
