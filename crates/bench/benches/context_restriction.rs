//! T-B: how the cost of the paper's approach scales with context
//! restrictiveness (k pushes into a 10-state counter). Claim C4: cost
//! tracks the context-relevant fraction, not the component size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muml_bench::experiments::run_ours;
use muml_bench::workload::counter_workload;

fn bench_restriction(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_restriction");
    group.sample_size(10);
    for k in [1usize, 4, 8] {
        let w = counter_workload(10, k);
        group.bench_with_input(BenchmarkId::new("ours", k), &k, |b, _| {
            b.iter(|| run_ours(&w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_restriction);
criterion_main!(benches);
