//! T-B: how the cost of the paper's approach scales with context
//! restrictiveness (k pushes into a 10-state counter). Claim C4: cost
//! tracks the context-relevant fraction, not the component size.

use muml_bench::experiments::run_ours;
use muml_bench::harness::Group;
use muml_bench::workload::counter_workload;

fn main() {
    let mut group = Group::new("context_restriction");
    group.sample_size(10);
    for k in [1usize, 4, 8] {
        let w = counter_workload(10, k);
        group.bench(&format!("ours/{k}"), || run_ours(&w));
    }
    group.finish();
}
