//! T-E: parallel learning of two legacy components (the Section-7
//! extension) vs the single-component case.

use criterion::{criterion_group, criterion_main, Criterion};
use muml_bench::experiments::table_e;
use muml_bench::workload::counter_workload;
use muml_bench::experiments::run_ours;

fn bench_multi(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_legacy");
    group.sample_size(10);
    let single = counter_workload(4, 2);
    group.bench_function("single", |b| b.iter(|| run_ours(&single)));
    group.bench_function("twin", |b| b.iter(|| table_e(4, 2)));
    group.finish();
}

criterion_group!(benches, bench_multi);
criterion_main!(benches);
