//! T-E: parallel learning of two legacy components (the Section-7
//! extension) vs the single-component case.

use muml_bench::experiments::{run_ours, table_e};
use muml_bench::harness::Group;
use muml_bench::workload::counter_workload;

fn main() {
    let mut group = Group::new("multi_legacy");
    group.sample_size(10);
    let single = counter_workload(4, 2);
    group.bench("single", || run_ours(&single));
    group.bench("twin", || table_e(4, 2));
    group.finish();
}
