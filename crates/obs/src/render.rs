//! Human-readable rendering of loop events, in the spirit of the paper's
//! listings: one indented line per phase, grouped by iteration.

use crate::event::{LoopEvent, RunOutcome};

pub use crate::sink::Renderer;

fn ms(nanos: u64) -> String {
    format!("{:.2}ms", nanos as f64 / 1.0e6)
}

/// Renders one event as a single display line.
pub fn render_event(event: &LoopEvent) -> String {
    match event {
        LoopEvent::RunStarted {
            components,
            properties,
        } => format!(
            "run: integrating [{}] against {} propert{} + deadlock freedom",
            components.join(", "),
            properties,
            if *properties == 1 { "y" } else { "ies" }
        ),
        LoopEvent::InitialAbstraction {
            component,
            states,
            transitions,
            refusals,
        } => {
            format!("  init {component}: M_l^0 with |Q|={states} |T|={transitions} |T̄|={refusals}")
        }
        LoopEvent::StoreHit {
            component,
            fingerprint,
            states,
            transitions,
            refusals,
            quarantined,
        } => format!(
            "  store hit {component} [{fingerprint}]: seeded |Q|={states} |T|={transitions} \
             |T̄|={refusals}, {quarantined} quarantined"
        ),
        LoopEvent::StoreMiss { component, reason } => {
            format!("  store miss {component}: {reason} — cold start")
        }
        LoopEvent::StoreInvalidated {
            component,
            fingerprint,
            touched_states,
            states,
            transitions,
            refusals,
        } => format!(
            "  store invalidated {component} [{fingerprint}]: {touched_states} touched states \
             dropped, seeded |Q|={states} |T|={transitions} |T̄|={refusals}"
        ),
        LoopEvent::IterationStarted { iteration } => format!("iteration {iteration}:"),
        LoopEvent::Composed {
            iteration: _,
            product_states,
            transitions,
            expanded_labels,
            family_guards,
            nanos,
        } => format!(
            "  compose: {product_states} product states, {transitions} transitions \
             ({expanded_labels} labels expanded, {family_guards} family guards) [{}]",
            ms(*nanos)
        ),
        LoopEvent::Recomposed {
            iteration: _,
            mode,
            dirty_states,
            reused_states,
            spliced_transitions,
        } => format!(
            "  recompose: {mode} ({dirty_states} dirty, {reused_states} reused, \
             {spliced_transitions} spliced)"
        ),
        LoopEvent::ModelChecked {
            iteration: _,
            holds,
            violated,
            fixpoint_iterations,
            labeled_states,
            words_touched,
            worklist_pops,
            peak_resident_sets: _,
            warm_states,
            reseeded_words: _,
            nanos,
        } => {
            let verdict = match (holds, violated) {
                (true, _) => "holds".to_owned(),
                (false, Some(v)) => format!("violates {v}"),
                (false, None) => "fails".to_owned(),
            };
            format!(
                "  check: {verdict} ({fixpoint_iterations} fixpoint iterations, \
                 {labeled_states} states labeled, {words_touched} words, \
                 {worklist_pops} pops, {warm_states} warm) [{}]",
                ms(*nanos)
            )
        }
        LoopEvent::FusedChecked {
            iteration: _,
            holds,
            states_expanded,
            states_discovered,
            early_exit,
            nanos,
        } => format!(
            "  fused check: {} ({states_expanded}/{states_discovered} states expanded{}) [{}]",
            if *holds { "holds" } else { "violated" },
            if *early_exit { ", early exit" } else { "" },
            ms(*nanos)
        ),
        LoopEvent::CounterexampleExtracted {
            iteration: _,
            property,
            length,
            deadlock,
        } => format!(
            "  counterexample: {length}-step {}trace for {property}",
            if *deadlock { "deadlock " } else { "" }
        ),
        LoopEvent::ReplayExecuted {
            iteration: _,
            component,
            steps,
            driven_steps,
            divergence,
            nanos,
        } => {
            let verdict = match divergence {
                Some(d) => format!("diverged at step {d}"),
                None => "confirmed".to_owned(),
            };
            format!(
                "  test {component}: {steps} steps, {verdict} ({driven_steps} driven) [{}]",
                ms(*nanos)
            )
        }
        LoopEvent::LearnStep {
            iteration: _,
            component,
            delta_states,
            delta_transitions,
            delta_refusals,
        } => format!(
            "  learn {component}: Δ|Q|={delta_states} Δ|T|={delta_transitions} \
             Δ|T̄|={delta_refusals}"
        ),
        LoopEvent::FrontierProbed {
            iteration: _,
            component,
            probes,
            learned,
            nanos,
        } => format!(
            "  probe {component}: {probes} probes, {} [{}]",
            if *learned {
                "new knowledge"
            } else {
                "nothing new"
            },
            ms(*nanos)
        ),
        LoopEvent::TestRetried {
            iteration: _,
            component,
            attempts,
            replay_errors,
            inconsistent,
            backoff_ticks,
        } => format!(
            "  retry {component}: {attempts} attempts ({replay_errors} replay errors, \
             {inconsistent} inconsistent, {backoff_ticks} ticks backoff)"
        ),
        LoopEvent::RigFault {
            iteration: _,
            component,
            suspected,
        } => format!("  rig-fault {component}: {suspected} attempt(s) rejected"),
        LoopEvent::TraceCacheUsed {
            iteration: _,
            component,
            hits,
            resumes,
            saved_steps,
        } => format!(
            "  trace-cache {component}: {hits} hits, {resumes} resumes, \
             {saved_steps} rig steps saved"
        ),
        LoopEvent::CexDeduped {
            iteration: _,
            component,
            divergence,
        } => format!(
            "  dedup {component}: counterexample already diverged at step {divergence}, \
             test skipped"
        ),
        LoopEvent::Quarantined {
            iteration: _,
            component,
            property,
            quarantined_total,
        } => format!(
            "  quarantine {component}: inconclusive test for {property} \
             ({quarantined_total} quarantined total)"
        ),
        LoopEvent::RunFinished {
            iterations,
            outcome,
            nanos,
        } => {
            let verdict = match outcome {
                RunOutcome::Proven => "integration proven correct",
                RunOutcome::RealFault => "real integration fault",
                RunOutcome::IterationLimit => "iteration limit reached",
                RunOutcome::Cancelled => "run cancelled (deadline)",
                RunOutcome::Inconclusive => "inconclusive (flake budget exhausted)",
            };
            format!(
                "result: {verdict} after {iterations} iterations [{}]",
                ms(*nanos)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compactly() {
        let line = render_event(&LoopEvent::LearnStep {
            iteration: 2,
            component: "front".into(),
            delta_states: 1,
            delta_transitions: 2,
            delta_refusals: 3,
        });
        assert_eq!(line, "  learn front: Δ|Q|=1 Δ|T|=2 Δ|T̄|=3");
    }

    #[test]
    fn run_finished_names_the_outcome() {
        let line = render_event(&LoopEvent::RunFinished {
            iterations: 4,
            outcome: RunOutcome::RealFault,
            nanos: 2_000_000,
        });
        assert!(line.contains("real integration fault"), "{line}");
        assert!(line.contains("after 4 iterations"), "{line}");
    }
}
