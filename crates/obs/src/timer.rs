//! Monotonic per-phase timers for the synthesis loop.

use std::time::Instant;

/// The instrumented phases of one verification iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Parallel composition `M_a^c ∥ chaos(M_l^i)`.
    Compose,
    /// Model checking `φ ∧ ¬δ`.
    Check,
    /// Counterexample execution against the real components.
    Test,
    /// Merging observations into the incomplete automata.
    Learn,
    /// Frontier probing of confirmed deadlock traces.
    Probe,
}

impl Phase {
    /// All phases, in loop order.
    pub const ALL: [Phase; 5] = [
        Phase::Compose,
        Phase::Check,
        Phase::Test,
        Phase::Learn,
        Phase::Probe,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compose => "compose",
            Phase::Check => "check",
            Phase::Test => "test",
            Phase::Learn => "learn",
            Phase::Probe => "probe",
        }
    }
}

/// Cumulative wall-clock nanoseconds per [`Phase`], aggregated over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Nanoseconds spent composing.
    pub compose_ns: u64,
    /// Nanoseconds spent model checking.
    pub check_ns: u64,
    /// Nanoseconds spent executing tests.
    pub test_ns: u64,
    /// Nanoseconds spent learning.
    pub learn_ns: u64,
    /// Nanoseconds spent frontier probing.
    pub probe_ns: u64,
}

impl PhaseTimings {
    /// Adds `nanos` to the accumulator for `phase`.
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        let slot = match phase {
            Phase::Compose => &mut self.compose_ns,
            Phase::Check => &mut self.check_ns,
            Phase::Test => &mut self.test_ns,
            Phase::Learn => &mut self.learn_ns,
            Phase::Probe => &mut self.probe_ns,
        };
        *slot = slot.saturating_add(nanos);
    }

    /// The accumulator for `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Compose => self.compose_ns,
            Phase::Check => self.check_ns,
            Phase::Test => self.test_ns,
            Phase::Learn => self.learn_ns,
            Phase::Probe => self.probe_ns,
        }
    }

    /// Total nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }
}

/// A running stopwatch for one phase occurrence.
///
/// ```
/// use muml_obs::{Phase, PhaseTimer, PhaseTimings};
/// let mut timings = PhaseTimings::default();
/// let timer = PhaseTimer::start(Phase::Compose);
/// // ... work ...
/// let nanos = timer.stop(&mut timings);
/// assert_eq!(timings.compose_ns, nanos);
/// ```
#[derive(Debug)]
pub struct PhaseTimer {
    phase: Phase,
    started: Instant,
}

impl PhaseTimer {
    /// Starts timing `phase` now.
    pub fn start(phase: Phase) -> Self {
        PhaseTimer {
            phase,
            started: Instant::now(),
        }
    }

    /// The phase being timed.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Stops the stopwatch, folds the elapsed time into `timings`, and
    /// returns the elapsed nanoseconds.
    pub fn stop(self, timings: &mut PhaseTimings) -> u64 {
        let nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        timings.add(self.phase, nanos);
        nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_accumulate_per_phase() {
        let mut t = PhaseTimings::default();
        t.add(Phase::Compose, 10);
        t.add(Phase::Compose, 5);
        t.add(Phase::Check, 7);
        assert_eq!(t.compose_ns, 15);
        assert_eq!(t.check_ns, 7);
        assert_eq!(t.total_ns(), 22);
    }

    #[test]
    fn timer_records_elapsed_time() {
        let mut t = PhaseTimings::default();
        let timer = PhaseTimer::start(Phase::Test);
        let nanos = timer.stop(&mut t);
        assert_eq!(t.test_ns, nanos);
        assert_eq!(t.get(Phase::Test), nanos);
    }
}
