//! Event consumers.

use std::io;

use crate::event::LoopEvent;
use crate::render::render_event;

/// A consumer of [`LoopEvent`]s.
///
/// The driver emits every loop phase through one `&mut dyn EventSink`;
/// sinks must therefore be cheap for events they ignore. Emission order is
/// the loop's execution order and is deterministic for a deterministic
/// workload (only the `nanos` payloads vary between runs).
pub trait EventSink {
    /// Handles one event.
    fn emit(&mut self, event: &LoopEvent);
}

/// Discards every event. The sink behind the plain
/// `verify_integration` entry point.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &LoopEvent) {}
}

/// Collects events in memory, in emission order.
#[derive(Debug, Default, Clone)]
pub struct Collector {
    /// The events received so far.
    pub events: Vec<LoopEvent>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Events belonging to iteration `i` (see [`LoopEvent::iteration`]).
    pub fn iteration(&self, i: usize) -> Vec<&LoopEvent> {
        self.events
            .iter()
            .filter(|e| e.iteration() == Some(i))
            .collect()
    }

    /// The variant tags of all events, in order — a timing-free
    /// fingerprint of the run's shape.
    pub fn kinds(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.kind()).collect()
    }
}

impl EventSink for Collector {
    fn emit(&mut self, event: &LoopEvent) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per event, newline-delimited (JSON Lines), to
/// any [`io::Write`]. Each line parses back with [`crate::json::parse`]
/// and carries the variant tag under the `"event"` key.
#[derive(Debug)]
pub struct JsonWriter<W: io::Write> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonWriter<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonWriter {
            writer,
            error: None,
        }
    }

    /// Flushes and returns the underlying writer, or the first write error
    /// encountered while emitting.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: io::Write> EventSink for JsonWriter<W> {
    fn emit(&mut self, event: &LoopEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json().encode();
        line.push('\n');
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

/// Renders events human-readably (see [`render_event`]) to any
/// [`io::Write`]; write errors are silently dropped, matching the
/// best-effort nature of progress output.
#[derive(Debug)]
pub struct Renderer<W: io::Write> {
    writer: W,
}

impl<W: io::Write> Renderer<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Renderer { writer }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: io::Write> EventSink for Renderer<W> {
    fn emit(&mut self, event: &LoopEvent) {
        let _ = writeln!(self.writer, "{}", render_event(event));
    }
}

/// Fans one event stream out to two sinks (nest for more).
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    fn emit(&mut self, event: &LoopEvent) {
        self.0.emit(event);
        self.1.emit(event);
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn emit(&mut self, event: &LoopEvent) {
        (**self).emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RunOutcome;
    use crate::json::{parse, Json};

    fn sample_events() -> Vec<LoopEvent> {
        vec![
            LoopEvent::RunStarted {
                components: vec!["front".into()],
                properties: 1,
            },
            LoopEvent::InitialAbstraction {
                component: "front".into(),
                states: 1,
                transitions: 0,
                refusals: 0,
            },
            LoopEvent::IterationStarted { iteration: 0 },
            LoopEvent::Composed {
                iteration: 0,
                product_states: 12,
                transitions: 30,
                expanded_labels: 64,
                family_guards: 2,
                nanos: 1234,
            },
            LoopEvent::ModelChecked {
                iteration: 0,
                holds: false,
                violated: Some("¬δ".into()),
                fixpoint_iterations: 9,
                labeled_states: 120,
                words_touched: 48,
                worklist_pops: 17,
                peak_resident_sets: 6,
                nanos: 999,
            },
            LoopEvent::CounterexampleExtracted {
                iteration: 0,
                property: "¬δ".into(),
                length: 4,
                deadlock: true,
            },
            LoopEvent::ReplayExecuted {
                iteration: 0,
                component: "front".into(),
                steps: 4,
                driven_steps: 12,
                divergence: Some(2),
                nanos: 555,
            },
            LoopEvent::LearnStep {
                iteration: 0,
                component: "front".into(),
                delta_states: 2,
                delta_transitions: 3,
                delta_refusals: 1,
            },
            LoopEvent::FrontierProbed {
                iteration: 0,
                component: "front".into(),
                probes: 5,
                learned: true,
                nanos: 321,
            },
            LoopEvent::RunFinished {
                iterations: 1,
                outcome: RunOutcome::Proven,
                nanos: 4321,
            },
        ]
    }

    #[test]
    fn json_writer_round_trips_every_variant() {
        let mut writer = JsonWriter::new(Vec::new());
        let events = sample_events();
        for event in &events {
            writer.emit(event);
        }
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let parsed = parse(line).unwrap();
            // The line parses back to exactly the object the event encodes.
            assert_eq!(parsed, event.to_json());
            assert_eq!(
                parsed.get("event").and_then(Json::as_str),
                Some(event.kind())
            );
        }
    }

    #[test]
    fn collector_indexes_by_iteration() {
        let mut collector = Collector::new();
        for event in &sample_events() {
            collector.emit(event);
        }
        assert_eq!(collector.events.len(), 10);
        assert_eq!(collector.iteration(0).len(), 7);
        assert_eq!(collector.kinds()[0], "run_started");
        assert_eq!(*collector.kinds().last().unwrap(), "run_finished");
    }

    #[test]
    fn tee_duplicates_the_stream() {
        let mut tee = Tee(Collector::new(), Collector::new());
        for event in &sample_events() {
            tee.emit(event);
        }
        assert_eq!(tee.0.events, tee.1.events);
    }
}
