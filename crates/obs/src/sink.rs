//! Event consumers.

use std::fmt;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::LoopEvent;
use crate::render::render_event;

/// A consumer of [`LoopEvent`]s.
///
/// The driver emits every loop phase through one `&mut dyn EventSink`;
/// sinks must therefore be cheap for events they ignore. Emission order is
/// the loop's execution order and is deterministic for a deterministic
/// workload (only the `nanos` payloads vary between runs).
pub trait EventSink {
    /// Handles one event.
    fn emit(&mut self, event: &LoopEvent);
}

/// Discards every event. The sink behind the plain
/// `verify_integration` entry point.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &LoopEvent) {}
}

/// Collects events in memory, in emission order.
#[derive(Debug, Default, Clone)]
pub struct Collector {
    /// The events received so far.
    pub events: Vec<LoopEvent>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Events belonging to iteration `i` (see [`LoopEvent::iteration`]).
    pub fn iteration(&self, i: usize) -> Vec<&LoopEvent> {
        self.events
            .iter()
            .filter(|e| e.iteration() == Some(i))
            .collect()
    }

    /// The variant tags of all events, in order — a timing-free
    /// fingerprint of the run's shape.
    pub fn kinds(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.kind()).collect()
    }
}

impl EventSink for Collector {
    fn emit(&mut self, event: &LoopEvent) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per event, newline-delimited (JSON Lines), to
/// any [`io::Write`]. Each line parses back with [`crate::json::parse`]
/// and carries the variant tag under the `"event"` key.
///
/// Dropping the writer flushes it (best-effort); use
/// [`JsonWriter::finish`] to observe write errors and recover the
/// underlying writer.
#[derive(Debug)]
pub struct JsonWriter<W: io::Write> {
    /// `None` only after `finish` moved the writer out.
    writer: Option<W>,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonWriter<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonWriter {
            writer: Some(writer),
            error: None,
        }
    }

    /// Flushes the underlying writer without consuming the sink, surfacing
    /// the first error recorded while emitting (subsequent calls keep
    /// returning it). This is the checkpoint operation for long-running
    /// producers — a daemon can force buffered event lines to disk between
    /// jobs and keep emitting into the same sink afterwards.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = &self.error {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        match self.writer.as_mut() {
            Some(writer) => writer.flush(),
            None => Ok(()),
        }
    }

    /// Flushes and returns the underlying writer, or the first write error
    /// encountered while emitting.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut writer = self.writer.take().expect("writer present until finish");
        writer.flush()?;
        Ok(writer)
    }

    /// Writes one pre-encoded JSON value as a line (shared by the loop- and
    /// fleet-event sink impls).
    pub(crate) fn emit_json(&mut self, value: crate::json::Json) {
        if self.error.is_some() {
            return;
        }
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        let mut line = value.encode();
        line.push('\n');
        if let Err(e) = writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl<W: io::Write> EventSink for JsonWriter<W> {
    fn emit(&mut self, event: &LoopEvent) {
        self.emit_json(event.to_json());
    }
}

impl<W: io::Write> Drop for JsonWriter<W> {
    fn drop(&mut self) {
        // Best-effort: a writer dropped without `finish` (e.g. on an early
        // return or a panicking worker) must not silently lose buffered
        // lines.
        if let Some(writer) = self.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

/// Renders events human-readably (see [`render_event`]) to any
/// [`io::Write`]; write errors are silently dropped, matching the
/// best-effort nature of progress output.
#[derive(Debug)]
pub struct Renderer<W: io::Write> {
    writer: W,
}

impl<W: io::Write> Renderer<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Renderer { writer }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: io::Write> EventSink for Renderer<W> {
    fn emit(&mut self, event: &LoopEvent) {
        let _ = writeln!(self.writer, "{}", render_event(event));
    }
}

/// Fans one event stream out to two sinks (nest for more).
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    fn emit(&mut self, event: &LoopEvent) {
        self.0.emit(event);
        self.1.emit(event);
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn emit(&mut self, event: &LoopEvent) {
        (**self).emit(event);
    }
}

/// A cloneable, thread-safe handle fanning many producers into one shared
/// sink (`Arc<Mutex<dyn EventSink + Send>>`).
///
/// Fleet workers each run their own [`IntegrationSession`] with its own
/// `&mut dyn EventSink`; `SharedSink` lets all of them feed one collector
/// without any worker owning it. Combine with [`Tee`] to additionally keep
/// a local per-worker stream.
///
/// Events from concurrent sessions interleave at event granularity (the
/// mutex is held per `emit`); use [`LoopEvent::iteration`] together with a
/// per-job sink if per-session ordering must be reconstructed.
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use muml_obs::{Collector, EventSink, LoopEvent, SharedSink};
///
/// let collector = Arc::new(Mutex::new(Collector::new()));
/// let mut a = SharedSink::from_arc(collector.clone());
/// let mut b = a.clone();
/// a.emit(&LoopEvent::IterationStarted { iteration: 0 });
/// b.emit(&LoopEvent::IterationStarted { iteration: 1 });
/// assert_eq!(collector.lock().unwrap().events.len(), 2);
/// ```
#[derive(Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<dyn EventSink + Send>>,
}

impl SharedSink {
    /// Wraps a sink for shared access.
    pub fn new(sink: impl EventSink + Send + 'static) -> Self {
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// Adapts an existing shared sink — the usual way to keep a typed
    /// handle (e.g. `Arc<Mutex<Collector>>`) on the collecting side while
    /// handing type-erased clones to producers.
    pub fn from_arc(inner: Arc<Mutex<dyn EventSink + Send>>) -> Self {
        SharedSink { inner }
    }

    /// Runs `f` with the locked sink (e.g. to flush or inspect it).
    pub fn with<R>(&self, f: impl FnOnce(&mut (dyn EventSink + Send)) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut *guard)
    }
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedSink").finish_non_exhaustive()
    }
}

impl EventSink for SharedSink {
    fn emit(&mut self, event: &LoopEvent) {
        // A sink that panicked mid-emit on another thread poisons the lock;
        // telemetry keeps flowing regardless.
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RunOutcome;
    use crate::json::{parse, Json};

    fn sample_events() -> Vec<LoopEvent> {
        vec![
            LoopEvent::RunStarted {
                components: vec!["front".into()],
                properties: 1,
            },
            LoopEvent::InitialAbstraction {
                component: "front".into(),
                states: 1,
                transitions: 0,
                refusals: 0,
            },
            LoopEvent::IterationStarted { iteration: 0 },
            LoopEvent::Composed {
                iteration: 0,
                product_states: 12,
                transitions: 30,
                expanded_labels: 64,
                family_guards: 2,
                nanos: 1234,
            },
            LoopEvent::Recomposed {
                iteration: 0,
                mode: "incremental".into(),
                dirty_states: 3,
                reused_states: 9,
                spliced_transitions: 7,
            },
            LoopEvent::ModelChecked {
                iteration: 0,
                holds: false,
                violated: Some("¬δ".into()),
                fixpoint_iterations: 9,
                labeled_states: 120,
                words_touched: 48,
                worklist_pops: 17,
                peak_resident_sets: 6,
                warm_states: 5,
                reseeded_words: 2,
                nanos: 999,
            },
            LoopEvent::CounterexampleExtracted {
                iteration: 0,
                property: "¬δ".into(),
                length: 4,
                deadlock: true,
            },
            LoopEvent::ReplayExecuted {
                iteration: 0,
                component: "front".into(),
                steps: 4,
                driven_steps: 12,
                divergence: Some(2),
                nanos: 555,
            },
            LoopEvent::LearnStep {
                iteration: 0,
                component: "front".into(),
                delta_states: 2,
                delta_transitions: 3,
                delta_refusals: 1,
            },
            LoopEvent::FrontierProbed {
                iteration: 0,
                component: "front".into(),
                probes: 5,
                learned: true,
                nanos: 321,
            },
            LoopEvent::RunFinished {
                iterations: 1,
                outcome: RunOutcome::Proven,
                nanos: 4321,
            },
        ]
    }

    #[test]
    fn json_writer_round_trips_every_variant() {
        let mut writer = JsonWriter::new(Vec::new());
        let events = sample_events();
        for event in &events {
            writer.emit(event);
        }
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let parsed = parse(line).unwrap();
            // The line parses back to exactly the object the event encodes.
            assert_eq!(parsed, event.to_json());
            assert_eq!(
                parsed.get("event").and_then(Json::as_str),
                Some(event.kind())
            );
        }
    }

    #[test]
    fn collector_indexes_by_iteration() {
        let mut collector = Collector::new();
        for event in &sample_events() {
            collector.emit(event);
        }
        assert_eq!(collector.events.len(), 11);
        assert_eq!(collector.iteration(0).len(), 8);
        assert_eq!(collector.kinds()[0], "run_started");
        assert_eq!(*collector.kinds().last().unwrap(), "run_finished");
    }

    #[test]
    fn tee_duplicates_the_stream() {
        let mut tee = Tee(Collector::new(), Collector::new());
        for event in &sample_events() {
            tee.emit(event);
        }
        assert_eq!(tee.0.events, tee.1.events);
    }

    #[test]
    fn shared_sink_fans_concurrent_producers_into_one_collector() {
        let collector = Arc::new(Mutex::new(Collector::new()));
        let shared = SharedSink::from_arc(collector.clone());
        let events = sample_events();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut sink = shared.clone();
                let events = &events;
                scope.spawn(move || {
                    for event in events {
                        sink.emit(event);
                    }
                });
            }
        });
        assert_eq!(collector.lock().unwrap().events.len(), 4 * events.len());
        // `with` reaches the sink behind the handle as well.
        shared.with(|sink| sink.emit(&events[0]));
        assert_eq!(collector.lock().unwrap().events.len(), 4 * events.len() + 1);
    }

    #[test]
    fn json_writer_flushes_explicitly_between_events() {
        use std::io::{BufWriter, Write};
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let out = Shared::default();
        let mut writer = JsonWriter::new(BufWriter::with_capacity(1 << 16, out.clone()));
        writer.emit(&LoopEvent::IterationStarted { iteration: 0 });
        // Buffered: nothing reached the byte sink yet.
        assert!(out.0.lock().unwrap().is_empty());
        writer.flush().unwrap();
        assert_eq!(
            String::from_utf8(out.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .count(),
            1
        );
        // The sink survives the checkpoint and keeps emitting.
        writer.emit(&LoopEvent::IterationStarted { iteration: 1 });
        writer.flush().unwrap();
        assert_eq!(
            String::from_utf8(out.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .count(),
            2
        );
    }

    #[test]
    fn json_writer_flushes_on_drop() {
        use std::io::{BufWriter, Write};
        // A BufWriter over a shared byte sink: without the Drop flush the
        // buffered lines would still sit in the BufWriter when it dies.
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let out = Shared::default();
        {
            let mut writer = JsonWriter::new(BufWriter::new(out.clone()));
            for event in &sample_events() {
                writer.emit(event);
            }
            // dropped without `finish`
        }
        let bytes = out.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), sample_events().len());
    }
}
