//! The event vocabulary of the synthesis loop.

use crate::json::Json;

/// Final outcome of a synthesis-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// `M_r^c ∥ M_r ⊨ φ ∧ ¬δ` — the integration is proven correct.
    Proven,
    /// A confirmed counterexample — a real integration fault.
    RealFault,
    /// The iteration cap was hit (should not happen for finite
    /// deterministic components).
    IterationLimit,
    /// The run was cooperatively cancelled (explicit cancellation or a
    /// wall-clock deadline) before reaching a verdict.
    Cancelled,
    /// The flake budget was exhausted: too many counterexample tests ended
    /// inconclusive under an unreliable rig, and no verdict could be
    /// reached honestly.
    Inconclusive,
}

impl RunOutcome {
    /// Stable lower-case name (used by the JSON encoding).
    pub fn name(self) -> &'static str {
        match self {
            RunOutcome::Proven => "proven",
            RunOutcome::RealFault => "real_fault",
            RunOutcome::IterationLimit => "iteration_limit",
            RunOutcome::Cancelled => "cancelled",
            RunOutcome::Inconclusive => "inconclusive",
        }
    }
}

/// One observable step of the verify → test → learn loop (Figure 2).
///
/// Every variant that belongs to an iteration carries its 0-based
/// `iteration` index; durations are monotonic nanoseconds. The mapping to
/// the paper's artefacts is documented per variant (and summarized in
/// DESIGN.md §Observability).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopEvent {
    /// The loop started: which components are being integrated against how
    /// many properties (besides the always-checked deadlock freedom).
    RunStarted {
        /// Names of the legacy components under integration.
        components: Vec<String>,
        /// Number of user-supplied properties.
        properties: usize,
    },
    /// Initial behaviour synthesis (Section 3): the trivial incomplete
    /// automaton `M_l^0` was built for a component.
    InitialAbstraction {
        /// The component.
        component: String,
        /// `|Q|` of `M_l^0` (1 for the trivial automaton).
        states: usize,
        /// `|T|` — known transitions.
        transitions: usize,
        /// `|T̄|` — known refusals.
        refusals: usize,
    },
    /// The persistent model store seeded the initial abstraction: a
    /// snapshot learned in an earlier run matched the component's
    /// content-address exactly, replacing the trivial automaton.
    StoreHit {
        /// The component.
        component: String,
        /// The matching content-address (16 hex digits).
        fingerprint: String,
        /// States seeded from the snapshot.
        states: usize,
        /// Transitions seeded.
        transitions: usize,
        /// Refusals seeded.
        refusals: usize,
        /// Quarantined trace listings carried over.
        quarantined: usize,
    },
    /// The persistent model store had nothing usable for the component;
    /// the run cold-starts from the trivial abstraction.
    StoreMiss {
        /// The component.
        component: String,
        /// Why (stable slug from `muml-store`'s `MissReason::describe`).
        reason: String,
    },
    /// The component changed since its snapshot was learned: the store
    /// diffed the rule sets and dropped the dirty cone, seeding only the
    /// knowledge of untouched states.
    StoreInvalidated {
        /// The component.
        component: String,
        /// The *new* content-address the patched snapshot was re-keyed to.
        fingerprint: String,
        /// States whose learned knowledge was dropped.
        touched_states: usize,
        /// States seeded from the patched snapshot.
        states: usize,
        /// Transitions seeded (after the drop).
        transitions: usize,
        /// Refusals seeded (after the drop).
        refusals: usize,
    },
    /// A verification iteration began.
    IterationStarted {
        /// 0-based iteration index.
        iteration: usize,
    },
    /// `M_a^c ∥ chaos(M_l^i)` was computed (Definition 3).
    Composed {
        /// Iteration index.
        iteration: usize,
        /// Reachable product states.
        product_states: usize,
        /// Transitions of the product.
        transitions: usize,
        /// Concrete labels enumerated while expanding free-signal subsets.
        expanded_labels: u64,
        /// Symbolic guard families emitted un-expanded (the closure's `*`
        /// transitions the context did not pin down).
        family_guards: u64,
        /// Wall-clock nanoseconds spent composing.
        nanos: u64,
    },
    /// How the iteration's product was obtained: spliced incrementally
    /// from the previous iteration's cached product (only the learn
    /// delta's dirty cone re-explored) or rebuilt cold (see
    /// `muml_automata::CompositionCache`).
    Recomposed {
        /// Iteration index.
        iteration: usize,
        /// `"incremental"` or `"cold"`.
        mode: String,
        /// Product rows re-explored (dirty rows plus newly discovered
        /// states; equals the product size on a cold rebuild).
        dirty_states: usize,
        /// Product rows reused untouched from the cache (0 on a cold
        /// rebuild).
        reused_states: usize,
        /// Transitions written while re-expanding the dirty rows (the
        /// full transition count on a cold rebuild).
        spliced_transitions: usize,
    },
    /// The model checker ran on the composition (Section 4.1).
    ModelChecked {
        /// Iteration index.
        iteration: usize,
        /// `true` iff all properties hold — the run ends `Proven`.
        holds: bool,
        /// The violated property (rendered), if any.
        violated: Option<String>,
        /// Fixpoint / backward-induction iterations performed.
        fixpoint_iterations: u64,
        /// `(state, subformula)` labelings computed.
        labeled_states: u64,
        /// `u64` words of satisfaction-set data read or written — the
        /// kernel's memory-traffic measure.
        words_touched: u64,
        /// States popped off the unbounded-operator worklists.
        worklist_pops: u64,
        /// Peak satisfaction sets resident in the checker's interned
        /// subformula table.
        peak_resident_sets: u64,
        /// Fixpoint memberships carried over from the previous
        /// iteration's seed (0 for a cold check).
        warm_states: u64,
        /// Seed satisfaction-set words translated while warm-starting.
        reseeded_words: u64,
        /// Wall-clock nanoseconds spent checking.
        nanos: u64,
    },
    /// The fused composition+checking pre-pass ran: product rows were
    /// expanded on the fly from the lazy arena product while the
    /// properties were checked, instead of materializing the full
    /// composition first. `states_expanded < states_discovered` (or
    /// `early_exit`) means the check terminated before touching the whole
    /// product.
    FusedChecked {
        /// Iteration index.
        iteration: usize,
        /// `true` iff all fusable properties hold — the run ends `Proven`
        /// without ever materializing the product.
        holds: bool,
        /// Product rows whose successor sets were expanded.
        states_expanded: usize,
        /// Product states interned (expanded rows plus discovered-but-
        /// unexpanded frontier states).
        states_discovered: usize,
        /// `true` iff the verdict was reached before expanding every
        /// discovered state.
        early_exit: bool,
        /// Wall-clock nanoseconds spent in the fused pass.
        nanos: u64,
    },
    /// A counterexample was extracted (the test input of Section 4.2;
    /// Listings 1.1/1.4 are renderings of these).
    CounterexampleExtracted {
        /// Iteration index.
        iteration: usize,
        /// The violated property (rendered).
        property: String,
        /// Steps in the counterexample run.
        length: usize,
        /// `true` for deadlock (¬δ) counterexamples — these drive learning.
        deadlock: bool,
    },
    /// The counterexample projection was executed against a real component
    /// with record + deterministic replay (Listings 1.2/1.3).
    ReplayExecuted {
        /// Iteration index.
        iteration: usize,
        /// The component driven.
        component: String,
        /// Steps of the resulting observation.
        steps: usize,
        /// Raw component steps driven by the harness (live + re-record +
        /// replay).
        driven_steps: usize,
        /// Step index of the first output divergence, if the component
        /// refuted the counterexample.
        divergence: Option<usize>,
        /// Wall-clock nanoseconds spent executing.
        nanos: u64,
    },
    /// Observations were merged into `M_l^{i+1}` (Definitions 11/12,
    /// Listing 1.5). Deltas are against the start of the learn step; every
    /// non-terminal iteration strictly grows `|T| + |T̄|` (Theorem 2).
    LearnStep {
        /// Iteration index.
        iteration: usize,
        /// The component whose model was refined.
        component: String,
        /// Δ|Q| — newly discovered states.
        delta_states: usize,
        /// Δ|T| — newly learned transitions.
        delta_transitions: usize,
        /// Δ|T̄| — newly learned refusals.
        delta_refusals: usize,
    },
    /// A confirmed deadlock trace was probed at the frontier (the driver's
    /// refinement of the paper's prose; see `muml_core::probe`).
    FrontierProbed {
        /// Iteration index.
        iteration: usize,
        /// The component probed.
        component: String,
        /// Probe executions against this component.
        probes: usize,
        /// Whether probing this component produced new knowledge.
        learned: bool,
        /// Wall-clock nanoseconds spent probing.
        nanos: u64,
    },
    /// A counterexample test needed more than one attempt under an
    /// unreliable rig (`muml_legacy::execute_with_retry`).
    TestRetried {
        /// Iteration index.
        iteration: usize,
        /// The component under test.
        component: String,
        /// Attempts executed.
        attempts: usize,
        /// Attempts that failed the replay cross-check.
        replay_errors: usize,
        /// Attempts whose outcome was internally inconsistent.
        inconsistent: usize,
        /// Backoff charged to the simulated clock, in ticks.
        backoff_ticks: u64,
    },
    /// A rig fault is suspected: one or more attempts were rejected by the
    /// replay cross-check or the internal consistency check.
    RigFault {
        /// Iteration index.
        iteration: usize,
        /// The component under test.
        component: String,
        /// Rejected attempts (replay errors plus inconsistencies).
        suspected: usize,
    },
    /// The prefix-sharing trace cache served test executions without
    /// re-driving the rig (`muml_legacy::TraceCache`). Counters are deltas
    /// since the last report for this component.
    TraceCacheUsed {
        /// Iteration index.
        iteration: usize,
        /// The component under test.
        component: String,
        /// Full hits: verdicts synthesized with zero rig steps.
        hits: usize,
        /// Partial hits resumed from a trie checkpoint.
        resumes: usize,
        /// Rig steps avoided versus the uncached serial executor.
        saved_steps: usize,
    },
    /// A counterexample projection was skipped because an identical
    /// projection already diverged earlier in this run (the dedup guard);
    /// the recorded divergence is reused instead of re-driving the rig.
    CexDeduped {
        /// Iteration index.
        iteration: usize,
        /// The component that diverged when the projection was first tested.
        component: String,
        /// The recorded divergence step.
        divergence: usize,
    },
    /// A counterexample was quarantined: its test ended inconclusive, so
    /// its trace must not feed the learner; the checker will be asked for
    /// an alternate counterexample instead.
    Quarantined {
        /// Iteration index.
        iteration: usize,
        /// The component whose test was inconclusive.
        component: String,
        /// The violated property (rendered).
        property: String,
        /// Quarantined counterexamples so far, this run.
        quarantined_total: usize,
    },
    /// The loop finished.
    RunFinished {
        /// Total verification iterations.
        iterations: usize,
        /// The verdict.
        outcome: RunOutcome,
        /// Wall-clock nanoseconds for the whole run.
        nanos: u64,
    },
}

impl LoopEvent {
    /// Stable snake_case tag of the variant (the `event` field of the JSON
    /// encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            LoopEvent::RunStarted { .. } => "run_started",
            LoopEvent::InitialAbstraction { .. } => "initial_abstraction",
            LoopEvent::StoreHit { .. } => "store_hit",
            LoopEvent::StoreMiss { .. } => "store_miss",
            LoopEvent::StoreInvalidated { .. } => "store_invalidated",
            LoopEvent::IterationStarted { .. } => "iteration_started",
            LoopEvent::Composed { .. } => "composed",
            LoopEvent::Recomposed { .. } => "recomposed",
            LoopEvent::ModelChecked { .. } => "model_checked",
            LoopEvent::FusedChecked { .. } => "fused_checked",
            LoopEvent::CounterexampleExtracted { .. } => "counterexample_extracted",
            LoopEvent::ReplayExecuted { .. } => "replay_executed",
            LoopEvent::LearnStep { .. } => "learn_step",
            LoopEvent::FrontierProbed { .. } => "frontier_probed",
            LoopEvent::TestRetried { .. } => "test_retried",
            LoopEvent::RigFault { .. } => "rig_fault",
            LoopEvent::TraceCacheUsed { .. } => "trace_cache_used",
            LoopEvent::CexDeduped { .. } => "cex_deduped",
            LoopEvent::Quarantined { .. } => "quarantined",
            LoopEvent::RunFinished { .. } => "run_finished",
        }
    }

    /// The iteration this event belongs to, if any.
    pub fn iteration(&self) -> Option<usize> {
        match self {
            LoopEvent::IterationStarted { iteration }
            | LoopEvent::Composed { iteration, .. }
            | LoopEvent::Recomposed { iteration, .. }
            | LoopEvent::ModelChecked { iteration, .. }
            | LoopEvent::FusedChecked { iteration, .. }
            | LoopEvent::CounterexampleExtracted { iteration, .. }
            | LoopEvent::ReplayExecuted { iteration, .. }
            | LoopEvent::LearnStep { iteration, .. }
            | LoopEvent::FrontierProbed { iteration, .. }
            | LoopEvent::TestRetried { iteration, .. }
            | LoopEvent::RigFault { iteration, .. }
            | LoopEvent::TraceCacheUsed { iteration, .. }
            | LoopEvent::CexDeduped { iteration, .. }
            | LoopEvent::Quarantined { iteration, .. } => Some(*iteration),
            LoopEvent::RunStarted { .. }
            | LoopEvent::InitialAbstraction { .. }
            | LoopEvent::StoreHit { .. }
            | LoopEvent::StoreMiss { .. }
            | LoopEvent::StoreInvalidated { .. }
            | LoopEvent::RunFinished { .. } => None,
        }
    }

    /// The JSON object encoding of the event (field `event` carries
    /// [`LoopEvent::kind`]; remaining fields mirror the variant's).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![("event".to_owned(), Json::Str(self.kind().to_owned()))];
        match self {
            LoopEvent::RunStarted {
                components,
                properties,
            } => {
                obj.push((
                    "components".into(),
                    Json::Array(components.iter().map(|c| Json::Str(c.clone())).collect()),
                ));
                obj.push(("properties".into(), Json::from_usize(*properties)));
            }
            LoopEvent::InitialAbstraction {
                component,
                states,
                transitions,
                refusals,
            } => {
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("states".into(), Json::from_usize(*states)));
                obj.push(("transitions".into(), Json::from_usize(*transitions)));
                obj.push(("refusals".into(), Json::from_usize(*refusals)));
            }
            LoopEvent::StoreHit {
                component,
                fingerprint,
                states,
                transitions,
                refusals,
                quarantined,
            } => {
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("fingerprint".into(), Json::Str(fingerprint.clone())));
                obj.push(("states".into(), Json::from_usize(*states)));
                obj.push(("transitions".into(), Json::from_usize(*transitions)));
                obj.push(("refusals".into(), Json::from_usize(*refusals)));
                obj.push(("quarantined".into(), Json::from_usize(*quarantined)));
            }
            LoopEvent::StoreMiss { component, reason } => {
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("reason".into(), Json::Str(reason.clone())));
            }
            LoopEvent::StoreInvalidated {
                component,
                fingerprint,
                touched_states,
                states,
                transitions,
                refusals,
            } => {
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("fingerprint".into(), Json::Str(fingerprint.clone())));
                obj.push(("touched_states".into(), Json::from_usize(*touched_states)));
                obj.push(("states".into(), Json::from_usize(*states)));
                obj.push(("transitions".into(), Json::from_usize(*transitions)));
                obj.push(("refusals".into(), Json::from_usize(*refusals)));
            }
            LoopEvent::IterationStarted { iteration } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
            }
            LoopEvent::Composed {
                iteration,
                product_states,
                transitions,
                expanded_labels,
                family_guards,
                nanos,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("product_states".into(), Json::from_usize(*product_states)));
                obj.push(("transitions".into(), Json::from_usize(*transitions)));
                obj.push(("expanded_labels".into(), Json::from_u64(*expanded_labels)));
                obj.push(("family_guards".into(), Json::from_u64(*family_guards)));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
            LoopEvent::Recomposed {
                iteration,
                mode,
                dirty_states,
                reused_states,
                spliced_transitions,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("mode".into(), Json::Str(mode.clone())));
                obj.push(("dirty_states".into(), Json::from_usize(*dirty_states)));
                obj.push(("reused_states".into(), Json::from_usize(*reused_states)));
                obj.push((
                    "spliced_transitions".into(),
                    Json::from_usize(*spliced_transitions),
                ));
            }
            LoopEvent::ModelChecked {
                iteration,
                holds,
                violated,
                fixpoint_iterations,
                labeled_states,
                words_touched,
                worklist_pops,
                peak_resident_sets,
                warm_states,
                reseeded_words,
                nanos,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("holds".into(), Json::Bool(*holds)));
                obj.push((
                    "violated".into(),
                    match violated {
                        Some(v) => Json::Str(v.clone()),
                        None => Json::Null,
                    },
                ));
                obj.push((
                    "fixpoint_iterations".into(),
                    Json::from_u64(*fixpoint_iterations),
                ));
                obj.push(("labeled_states".into(), Json::from_u64(*labeled_states)));
                obj.push(("words_touched".into(), Json::from_u64(*words_touched)));
                obj.push(("worklist_pops".into(), Json::from_u64(*worklist_pops)));
                obj.push((
                    "peak_resident_sets".into(),
                    Json::from_u64(*peak_resident_sets),
                ));
                obj.push(("warm_states".into(), Json::from_u64(*warm_states)));
                obj.push(("reseeded_words".into(), Json::from_u64(*reseeded_words)));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
            LoopEvent::FusedChecked {
                iteration,
                holds,
                states_expanded,
                states_discovered,
                early_exit,
                nanos,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("holds".into(), Json::Bool(*holds)));
                obj.push(("states_expanded".into(), Json::from_usize(*states_expanded)));
                obj.push((
                    "states_discovered".into(),
                    Json::from_usize(*states_discovered),
                ));
                obj.push(("early_exit".into(), Json::Bool(*early_exit)));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
            LoopEvent::CounterexampleExtracted {
                iteration,
                property,
                length,
                deadlock,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("property".into(), Json::Str(property.clone())));
                obj.push(("length".into(), Json::from_usize(*length)));
                obj.push(("deadlock".into(), Json::Bool(*deadlock)));
            }
            LoopEvent::ReplayExecuted {
                iteration,
                component,
                steps,
                driven_steps,
                divergence,
                nanos,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("steps".into(), Json::from_usize(*steps)));
                obj.push(("driven_steps".into(), Json::from_usize(*driven_steps)));
                obj.push((
                    "divergence".into(),
                    match divergence {
                        Some(d) => Json::from_usize(*d),
                        None => Json::Null,
                    },
                ));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
            LoopEvent::LearnStep {
                iteration,
                component,
                delta_states,
                delta_transitions,
                delta_refusals,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("delta_states".into(), Json::from_usize(*delta_states)));
                obj.push((
                    "delta_transitions".into(),
                    Json::from_usize(*delta_transitions),
                ));
                obj.push(("delta_refusals".into(), Json::from_usize(*delta_refusals)));
            }
            LoopEvent::FrontierProbed {
                iteration,
                component,
                probes,
                learned,
                nanos,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("probes".into(), Json::from_usize(*probes)));
                obj.push(("learned".into(), Json::Bool(*learned)));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
            LoopEvent::TestRetried {
                iteration,
                component,
                attempts,
                replay_errors,
                inconsistent,
                backoff_ticks,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("attempts".into(), Json::from_usize(*attempts)));
                obj.push(("replay_errors".into(), Json::from_usize(*replay_errors)));
                obj.push(("inconsistent".into(), Json::from_usize(*inconsistent)));
                obj.push(("backoff_ticks".into(), Json::from_u64(*backoff_ticks)));
            }
            LoopEvent::RigFault {
                iteration,
                component,
                suspected,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("suspected".into(), Json::from_usize(*suspected)));
            }
            LoopEvent::TraceCacheUsed {
                iteration,
                component,
                hits,
                resumes,
                saved_steps,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("hits".into(), Json::from_usize(*hits)));
                obj.push(("resumes".into(), Json::from_usize(*resumes)));
                obj.push(("saved_steps".into(), Json::from_usize(*saved_steps)));
            }
            LoopEvent::CexDeduped {
                iteration,
                component,
                divergence,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("divergence".into(), Json::from_usize(*divergence)));
            }
            LoopEvent::Quarantined {
                iteration,
                component,
                property,
                quarantined_total,
            } => {
                obj.push(("iteration".into(), Json::from_usize(*iteration)));
                obj.push(("component".into(), Json::Str(component.clone())));
                obj.push(("property".into(), Json::Str(property.clone())));
                obj.push((
                    "quarantined_total".into(),
                    Json::from_usize(*quarantined_total),
                ));
            }
            LoopEvent::RunFinished {
                iterations,
                outcome,
                nanos,
            } => {
                obj.push(("iterations".into(), Json::from_usize(*iterations)));
                obj.push(("outcome".into(), Json::Str(outcome.name().to_owned())));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
        }
        Json::Object(obj)
    }
}
