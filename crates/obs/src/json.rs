//! A minimal, dependency-free JSON value type with an encoder and parser.
//!
//! Only the subset the telemetry format needs: object key order is
//! preserved (objects are `Vec<(String, Json)>`), integers are `i64`, and
//! the parser accepts exactly what the encoder emits plus insignificant
//! whitespace.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A (signed) integer. The telemetry format only emits integers.
    Int(i64),
    /// A floating-point number (accepted by the parser for completeness).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with preserved key order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An integer value from a `usize` (saturating at `i64::MAX`).
    pub fn from_usize(v: usize) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// An integer value from a `u64` (saturating at `i64::MAX`).
    pub fn from_u64(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let mut buf = String::new();
                fmt::Write::write_fmt(&mut buf, format_args!("{v}")).unwrap();
                out.push_str(&buf);
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let mut buf = String::new();
                    fmt::Write::write_fmt(&mut buf, format_args!("{v}")).unwrap();
                    // `{}` prints integral floats without a dot; keep the
                    // value recognizably floating-point.
                    if !buf.contains(['.', 'e', 'E']) {
                        buf.push_str(".0");
                    }
                    out.push_str(&buf);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a single JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the encoder
                            // (it only escapes control characters).
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("bad \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a full UTF-8 scalar, not a byte.
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_round_trip() {
        let value = Json::Object(vec![
            ("event".into(), Json::Str("composed".into())),
            ("iteration".into(), Json::Int(3)),
            ("holds".into(), Json::Bool(false)),
            ("violated".into(), Json::Null),
            (
                "components".into(),
                Json::Array(vec![Json::Str("front".into()), Json::Str("rear".into())]),
            ),
            (
                "escaped \"key\"".into(),
                Json::Str("line\nbreak\tand \\ quote \"".into()),
            ),
            ("ratio".into(), Json::Float(0.5)),
            ("negative".into(), Json::Int(-17)),
        ]);
        let text = value.encode();
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn parse_accepts_whitespace() {
        let parsed = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : true } ").unwrap();
        assert_eq!(
            parsed.get("a"),
            Some(&Json::Array(vec![Json::Int(1), Json::Int(2)]))
        );
        assert_eq!(parsed.get("b").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn control_characters_escape_as_hex() {
        let text = Json::Str("\u{1}".into()).encode();
        assert_eq!(text, "\"\\u0001\"");
        assert_eq!(parse(&text).unwrap(), Json::Str("\u{1}".into()));
    }
}
