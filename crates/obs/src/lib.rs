//! Structured telemetry for the iterative synthesis loop.
//!
//! The paper's central artefacts are *per-iteration traces* of the
//! verify → test → learn loop (Figure 2, Listings 1.1–1.5), and its claims
//! C3/C4/C5 are statements about iteration counts, explored state space,
//! and learned knowledge. This crate makes every phase of the loop
//! observable:
//!
//! * [`LoopEvent`] — one variant per loop phase: initial abstraction,
//!   composition (with product-state and symbolic-family expansion counts),
//!   model checking (fixpoint iterations, labeled states), counterexample
//!   extraction, replay execution, learning deltas (Δ|T|, Δ|T̄|), and
//!   frontier probes.
//! * [`EventSink`] — the consumer interface, with [`Collector`]
//!   (in-memory), [`Renderer`] (human-readable, in the style of the
//!   paper's listings), [`JsonWriter`] (newline-delimited JSON), and
//!   [`NullSink`] implementations. [`Tee`] fans one stream out to two
//!   sinks.
//! * [`Phase`] / [`PhaseTimings`] / [`PhaseTimer`] — monotonic per-phase
//!   timers, aggregated by the driver into its run statistics.
//! * [`json`] — a dependency-free JSON value type with an encoder and a
//!   parser. (The workspace builds hermetically without a crate registry,
//!   so `serde`/`serde_json` are intentionally not used; this module is the
//!   subset the telemetry format needs, and round-trips through itself.)

#![warn(missing_docs)]

mod event;
mod fleet;
pub mod json;
mod render;
mod sink;
mod timer;

pub use event::{LoopEvent, RunOutcome};
pub use fleet::{render_fleet_event, FleetCollector, FleetEvent, FleetSink, NullFleetSink};
pub use render::{render_event, Renderer};
pub use sink::{Collector, EventSink, JsonWriter, NullSink, SharedSink, Tee};
pub use timer::{Phase, PhaseTimer, PhaseTimings};
