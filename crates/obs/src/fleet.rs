//! Fleet-level telemetry for batch-verification campaigns.
//!
//! A *fleet* (see the `muml-fleet` crate) shards many independent
//! integration sessions across a worker pool. The per-session story is told
//! by [`LoopEvent`](crate::LoopEvent) streams; this module adds the
//! orchestration layer above it: job lifecycle, queue pressure, and worker
//! utilization.
//!
//! Unlike loop events, fleet events are **timing-shaped**: their order and
//! payloads depend on scheduling (which worker grabbed which job, how deep
//! the queue was at each submission). They are telemetry, not part of the
//! deterministic `FleetReport` — consumers that need determinism read the
//! report's fingerprint instead.

use std::io;

use crate::json::Json;
use crate::sink::JsonWriter;

/// One observable step of a batch-verification campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    /// The fleet started: how many jobs over how many workers.
    FleetStarted {
        /// Total jobs in the campaign.
        jobs: usize,
        /// Worker-pool size.
        workers: usize,
    },
    /// A worker picked a job off the queue.
    JobStarted {
        /// The job's id.
        job: usize,
        /// The job's display name.
        name: String,
        /// The worker index executing it.
        worker: usize,
    },
    /// A job ran to a verdict (or error).
    JobFinished {
        /// The job's id.
        job: usize,
        /// The worker index that executed it.
        worker: usize,
        /// Stable outcome name (`proven`, `real_fault`, `timed_out`,
        /// `iteration_limit`, `error`).
        outcome: String,
        /// Verification iterations the session performed.
        iterations: usize,
        /// Wall-clock nanoseconds the job occupied its worker.
        nanos: u64,
    },
    /// A job hit its wall-clock deadline and was cooperatively cancelled.
    JobTimedOut {
        /// The job's id.
        job: usize,
        /// The worker index that executed it.
        worker: usize,
        /// Wall-clock nanoseconds until cancellation took effect.
        nanos: u64,
    },
    /// A job's attempt failed retryably (error or inconclusive verdict) and
    /// the worker is re-running it after backoff.
    JobRetried {
        /// The job's id.
        job: usize,
        /// The worker index executing it.
        worker: usize,
        /// The attempt that just failed (1-based).
        attempt: usize,
    },
    /// A breaker key accumulated too many consecutive failed jobs; its
    /// remaining jobs will be quarantined instead of executed.
    BreakerTripped {
        /// The breaker key (the job's component variant).
        key: String,
        /// Consecutive failures that tripped the breaker.
        failures: usize,
    },
    /// A job was quarantined without execution because its breaker key had
    /// already tripped.
    JobQuarantined {
        /// The job's id.
        job: usize,
        /// The tripped breaker key.
        key: String,
    },
    /// Queue pressure after a submission: how many accepted jobs are still
    /// waiting for a worker, and how many have already finished.
    QueueDepth {
        /// Jobs submitted but not yet picked up by a worker.
        pending: usize,
        /// Jobs finished so far.
        finished: usize,
    },
    /// One worker's lifetime totals, reported when the queue closes.
    WorkerUtilization {
        /// The worker index.
        worker: usize,
        /// Jobs this worker executed.
        jobs: usize,
        /// Nanoseconds spent executing jobs.
        busy_nanos: u64,
        /// Wall-clock nanoseconds from fleet start to this report.
        wall_nanos: u64,
    },
    /// A worker thread died (panic or injected kill) and the supervisor
    /// replaced it, re-queueing the in-flight job if its crash budget
    /// allows.
    WorkerRespawned {
        /// The replacement worker's index.
        worker: usize,
        /// The job that was in flight when the worker died.
        job: usize,
        /// How many times this job has now crashed a worker.
        crashes: usize,
    },
    /// A daemon restart replayed its durable job journal.
    JournalReplayed {
        /// Total records decoded from the journal.
        records: usize,
        /// Jobs whose verdicts were restored from `Finished` records.
        finished: usize,
        /// Unfinished jobs re-resolved and re-submitted.
        resubmitted: usize,
        /// Bytes of torn tail truncated before replay.
        truncated_bytes: u64,
    },
    /// The store's fault-injecting I/O layer fired (chaos campaigns only).
    IoFaultInjected {
        /// The fault class (`torn-write`, `short-read`, `enospc`,
        /// `rename-fail`, `lock-fail`).
        op: String,
        /// The path the fault hit.
        path: String,
    },
    /// The fleet drained: all jobs accounted for.
    FleetFinished {
        /// Total jobs executed.
        jobs: usize,
        /// Wall-clock nanoseconds for the whole campaign.
        nanos: u64,
    },
}

impl FleetEvent {
    /// Stable snake_case tag of the variant (the `event` field of the JSON
    /// encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            FleetEvent::FleetStarted { .. } => "fleet_started",
            FleetEvent::JobStarted { .. } => "job_started",
            FleetEvent::JobFinished { .. } => "job_finished",
            FleetEvent::JobTimedOut { .. } => "job_timed_out",
            FleetEvent::JobRetried { .. } => "job_retried",
            FleetEvent::BreakerTripped { .. } => "breaker_tripped",
            FleetEvent::JobQuarantined { .. } => "job_quarantined",
            FleetEvent::QueueDepth { .. } => "queue_depth",
            FleetEvent::WorkerUtilization { .. } => "worker_utilization",
            FleetEvent::WorkerRespawned { .. } => "worker_respawned",
            FleetEvent::JournalReplayed { .. } => "journal_replayed",
            FleetEvent::IoFaultInjected { .. } => "io_fault_injected",
            FleetEvent::FleetFinished { .. } => "fleet_finished",
        }
    }

    /// The job this event belongs to, if any.
    pub fn job(&self) -> Option<usize> {
        match self {
            FleetEvent::JobStarted { job, .. }
            | FleetEvent::JobFinished { job, .. }
            | FleetEvent::JobTimedOut { job, .. }
            | FleetEvent::JobRetried { job, .. }
            | FleetEvent::JobQuarantined { job, .. }
            | FleetEvent::WorkerRespawned { job, .. } => Some(*job),
            _ => None,
        }
    }

    /// The JSON object encoding of the event (field `event` carries
    /// [`FleetEvent::kind`]; remaining fields mirror the variant's).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![("event".to_owned(), Json::Str(self.kind().to_owned()))];
        match self {
            FleetEvent::FleetStarted { jobs, workers } => {
                obj.push(("jobs".into(), Json::from_usize(*jobs)));
                obj.push(("workers".into(), Json::from_usize(*workers)));
            }
            FleetEvent::JobStarted { job, name, worker } => {
                obj.push(("job".into(), Json::from_usize(*job)));
                obj.push(("name".into(), Json::Str(name.clone())));
                obj.push(("worker".into(), Json::from_usize(*worker)));
            }
            FleetEvent::JobFinished {
                job,
                worker,
                outcome,
                iterations,
                nanos,
            } => {
                obj.push(("job".into(), Json::from_usize(*job)));
                obj.push(("worker".into(), Json::from_usize(*worker)));
                obj.push(("outcome".into(), Json::Str(outcome.clone())));
                obj.push(("iterations".into(), Json::from_usize(*iterations)));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
            FleetEvent::JobTimedOut { job, worker, nanos } => {
                obj.push(("job".into(), Json::from_usize(*job)));
                obj.push(("worker".into(), Json::from_usize(*worker)));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
            FleetEvent::JobRetried {
                job,
                worker,
                attempt,
            } => {
                obj.push(("job".into(), Json::from_usize(*job)));
                obj.push(("worker".into(), Json::from_usize(*worker)));
                obj.push(("attempt".into(), Json::from_usize(*attempt)));
            }
            FleetEvent::BreakerTripped { key, failures } => {
                obj.push(("key".into(), Json::Str(key.clone())));
                obj.push(("failures".into(), Json::from_usize(*failures)));
            }
            FleetEvent::JobQuarantined { job, key } => {
                obj.push(("job".into(), Json::from_usize(*job)));
                obj.push(("key".into(), Json::Str(key.clone())));
            }
            FleetEvent::QueueDepth { pending, finished } => {
                obj.push(("pending".into(), Json::from_usize(*pending)));
                obj.push(("finished".into(), Json::from_usize(*finished)));
            }
            FleetEvent::WorkerUtilization {
                worker,
                jobs,
                busy_nanos,
                wall_nanos,
            } => {
                obj.push(("worker".into(), Json::from_usize(*worker)));
                obj.push(("jobs".into(), Json::from_usize(*jobs)));
                obj.push(("busy_nanos".into(), Json::from_u64(*busy_nanos)));
                obj.push(("wall_nanos".into(), Json::from_u64(*wall_nanos)));
            }
            FleetEvent::WorkerRespawned {
                worker,
                job,
                crashes,
            } => {
                obj.push(("worker".into(), Json::from_usize(*worker)));
                obj.push(("job".into(), Json::from_usize(*job)));
                obj.push(("crashes".into(), Json::from_usize(*crashes)));
            }
            FleetEvent::JournalReplayed {
                records,
                finished,
                resubmitted,
                truncated_bytes,
            } => {
                obj.push(("records".into(), Json::from_usize(*records)));
                obj.push(("finished".into(), Json::from_usize(*finished)));
                obj.push(("resubmitted".into(), Json::from_usize(*resubmitted)));
                obj.push(("truncated_bytes".into(), Json::from_u64(*truncated_bytes)));
            }
            FleetEvent::IoFaultInjected { op, path } => {
                obj.push(("op".into(), Json::Str(op.clone())));
                obj.push(("path".into(), Json::Str(path.clone())));
            }
            FleetEvent::FleetFinished { jobs, nanos } => {
                obj.push(("jobs".into(), Json::from_usize(*jobs)));
                obj.push(("nanos".into(), Json::from_u64(*nanos)));
            }
        }
        Json::Object(obj)
    }
}

/// A consumer of [`FleetEvent`]s — the orchestration-level counterpart of
/// [`EventSink`](crate::EventSink). The fleet coordinator owns the sink and
/// forwards events from all workers on one thread, so implementations need
/// not be thread-safe.
pub trait FleetSink {
    /// Handles one event.
    fn emit(&mut self, event: &FleetEvent);
}

/// Discards every fleet event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullFleetSink;

impl FleetSink for NullFleetSink {
    fn emit(&mut self, _event: &FleetEvent) {}
}

/// Collects fleet events in memory, in emission order.
#[derive(Debug, Default, Clone)]
pub struct FleetCollector {
    /// The events received so far.
    pub events: Vec<FleetEvent>,
}

impl FleetCollector {
    /// An empty collector.
    pub fn new() -> Self {
        FleetCollector::default()
    }

    /// The variant tags of all events, in order.
    pub fn kinds(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.kind()).collect()
    }

    /// Events belonging to job `id`.
    pub fn job(&self, id: usize) -> Vec<&FleetEvent> {
        self.events.iter().filter(|e| e.job() == Some(id)).collect()
    }
}

impl FleetSink for FleetCollector {
    fn emit(&mut self, event: &FleetEvent) {
        self.events.push(event.clone());
    }
}

impl<S: FleetSink + ?Sized> FleetSink for &mut S {
    fn emit(&mut self, event: &FleetEvent) {
        (**self).emit(event);
    }
}

/// Fleet events share the JSON Lines encoding: one object per line with the
/// variant tag under `"event"`.
impl<W: io::Write> FleetSink for JsonWriter<W> {
    fn emit(&mut self, event: &FleetEvent) {
        self.emit_json(event.to_json());
    }
}

/// Renders one fleet event as a single display line.
pub fn render_fleet_event(event: &FleetEvent) -> String {
    let ms = |nanos: u64| format!("{:.2}ms", nanos as f64 / 1.0e6);
    match event {
        FleetEvent::FleetStarted { jobs, workers } => {
            format!("fleet: {jobs} jobs over {workers} workers")
        }
        FleetEvent::JobStarted { job, name, worker } => {
            format!("  job {job} `{name}` started on worker {worker}")
        }
        FleetEvent::JobFinished {
            job,
            worker,
            outcome,
            iterations,
            nanos,
        } => format!(
            "  job {job} finished on worker {worker}: {outcome} after {iterations} iterations [{}]",
            ms(*nanos)
        ),
        FleetEvent::JobTimedOut { job, worker, nanos } => {
            format!("  job {job} TIMED OUT on worker {worker} [{}]", ms(*nanos))
        }
        FleetEvent::JobRetried {
            job,
            worker,
            attempt,
        } => format!("  job {job} attempt {attempt} failed on worker {worker}, retrying"),
        FleetEvent::BreakerTripped { key, failures } => {
            format!("  breaker `{key}` TRIPPED after {failures} consecutive failures")
        }
        FleetEvent::JobQuarantined { job, key } => {
            format!("  job {job} quarantined (breaker `{key}` open)")
        }
        FleetEvent::QueueDepth { pending, finished } => {
            format!("  queue: {pending} pending, {finished} finished")
        }
        FleetEvent::WorkerUtilization {
            worker,
            jobs,
            busy_nanos,
            wall_nanos,
        } => format!(
            "  worker {worker}: {jobs} jobs, busy {} of {} ({:.0}%)",
            ms(*busy_nanos),
            ms(*wall_nanos),
            100.0 * *busy_nanos as f64 / (*wall_nanos).max(1) as f64
        ),
        FleetEvent::WorkerRespawned {
            worker,
            job,
            crashes,
        } => format!("  worker {worker} RESPAWNED after crash on job {job} (crash {crashes})"),
        FleetEvent::JournalReplayed {
            records,
            finished,
            resubmitted,
            truncated_bytes,
        } => format!(
            "journal: replayed {records} records ({finished} finished, \
             {resubmitted} resubmitted, {truncated_bytes}B torn tail truncated)"
        ),
        FleetEvent::IoFaultInjected { op, path } => {
            format!("  io fault `{op}` injected at {path}")
        }
        FleetEvent::FleetFinished { jobs, nanos } => {
            format!("fleet: drained {jobs} jobs [{}]", ms(*nanos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_events() -> Vec<FleetEvent> {
        vec![
            FleetEvent::FleetStarted {
                jobs: 2,
                workers: 4,
            },
            FleetEvent::JobStarted {
                job: 0,
                name: "railcab/correct".into(),
                worker: 1,
            },
            FleetEvent::QueueDepth {
                pending: 1,
                finished: 0,
            },
            FleetEvent::JobFinished {
                job: 0,
                worker: 1,
                outcome: "proven".into(),
                iterations: 7,
                nanos: 1234,
            },
            FleetEvent::JobTimedOut {
                job: 1,
                worker: 0,
                nanos: 999,
            },
            FleetEvent::JobRetried {
                job: 1,
                worker: 0,
                attempt: 1,
            },
            FleetEvent::BreakerTripped {
                key: "conflicting".into(),
                failures: 3,
            },
            FleetEvent::JobQuarantined {
                job: 1,
                key: "conflicting".into(),
            },
            FleetEvent::WorkerUtilization {
                worker: 0,
                jobs: 1,
                busy_nanos: 999,
                wall_nanos: 2000,
            },
            FleetEvent::WorkerRespawned {
                worker: 2,
                job: 1,
                crashes: 1,
            },
            FleetEvent::JournalReplayed {
                records: 9,
                finished: 3,
                resubmitted: 1,
                truncated_bytes: 17,
            },
            FleetEvent::IoFaultInjected {
                op: "torn-write".into(),
                path: "/tmp/store/abc.json".into(),
            },
            FleetEvent::FleetFinished {
                jobs: 2,
                nanos: 4321,
            },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        let mut writer = JsonWriter::new(Vec::new());
        let events = sample_events();
        for event in &events {
            FleetSink::emit(&mut writer, event);
        }
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let parsed = parse(line).unwrap();
            assert_eq!(parsed, event.to_json());
            assert_eq!(
                parsed.get("event").and_then(Json::as_str),
                Some(event.kind())
            );
        }
    }

    #[test]
    fn collector_indexes_by_job() {
        let mut collector = FleetCollector::new();
        for event in &sample_events() {
            collector.emit(event);
        }
        assert_eq!(collector.events.len(), 13);
        assert_eq!(collector.job(0).len(), 2);
        assert_eq!(collector.job(1).len(), 4);
        assert_eq!(collector.kinds()[0], "fleet_started");
        assert_eq!(*collector.kinds().last().unwrap(), "fleet_finished");
    }

    #[test]
    fn renderings_are_single_lines() {
        for event in &sample_events() {
            let line = render_fleet_event(event);
            assert!(!line.contains('\n'), "{line}");
            assert!(!line.is_empty());
        }
    }
}
