//! Content-addressing of legacy components.
//!
//! A [`ComponentSignature`] captures everything that determines a
//! [`HiddenMealy`]'s observable behaviour — name, interface, initial state
//! and rule table — rendered to names and *canonicalized*: every name is
//! trimmed, signal lists are sorted, and the rule set is sorted. Two
//! presentations of the same machine (rules in a different order, names
//! padded with whitespace, universes with different interning orders) thus
//! hash to the same fingerprint, while any semantic edit — a retargeted
//! rule, a changed output set, a dropped rule — produces a different one.

use muml_automata::Universe;
use muml_legacy::{HiddenMealy, LegacyComponent, MealyRule, StateObservable};
use muml_obs::json::Json;

/// One canonicalized interpreter rule of a [`ComponentSignature`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RuleSignature {
    /// Source state name (trimmed).
    pub state: String,
    /// Input signal names (trimmed, sorted).
    pub inputs: Vec<String>,
    /// Output signal names (trimmed, sorted).
    pub outputs: Vec<String>,
    /// Target state name (trimmed).
    pub target: String,
}

impl RuleSignature {
    /// Builds a rule signature, canonicalizing its parts.
    pub fn new(
        state: &str,
        inputs: impl IntoIterator<Item = String>,
        outputs: impl IntoIterator<Item = String>,
        target: &str,
    ) -> Self {
        RuleSignature {
            state: state.trim().to_owned(),
            inputs: sorted_names(inputs),
            outputs: sorted_names(outputs),
            target: target.trim().to_owned(),
        }
    }

    fn from_mealy(rule: &MealyRule) -> Self {
        RuleSignature::new(
            &rule.state,
            rule.inputs.iter().cloned(),
            rule.outputs.iter().cloned(),
            &rule.target,
        )
    }
}

fn sorted_names(names: impl IntoIterator<Item = String>) -> Vec<String> {
    let mut v: Vec<String> = names.into_iter().map(|n| n.trim().to_owned()).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// The canonicalized identity of a legacy component: what the store keys
/// snapshots by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSignature {
    /// Component name (trimmed).
    pub name: String,
    /// Input signal names (trimmed, sorted).
    pub inputs: Vec<String>,
    /// Output signal names (trimmed, sorted).
    pub outputs: Vec<String>,
    /// Initial state name (trimmed).
    pub initial: String,
    /// The rule set, canonicalized and sorted.
    pub rules: Vec<RuleSignature>,
}

impl ComponentSignature {
    /// Builds a signature from explicit parts, canonicalizing everything.
    pub fn new(
        name: &str,
        inputs: impl IntoIterator<Item = String>,
        outputs: impl IntoIterator<Item = String>,
        initial: &str,
        rules: impl IntoIterator<Item = RuleSignature>,
    ) -> Self {
        let mut rules: Vec<RuleSignature> = rules.into_iter().collect();
        rules.sort_unstable();
        rules.dedup();
        ComponentSignature {
            name: name.trim().to_owned(),
            inputs: sorted_names(inputs),
            outputs: sorted_names(outputs),
            initial: initial.trim().to_owned(),
            rules,
        }
    }

    /// The signature of an interpreted legacy component, as wired up right
    /// before a verification run (i.e. *after* any fault injection — each
    /// injected variant is its own component as far as the store is
    /// concerned, so every campaign cell warm-starts independently).
    pub fn of_component(m: &HiddenMealy, u: &Universe) -> Self {
        let (inputs, outputs) = m.interface();
        ComponentSignature::new(
            m.name(),
            inputs.iter().map(|s| u.signal_name(s)),
            outputs.iter().map(|s| u.signal_name(s)),
            &m.initial_state_name(),
            m.rules_sorted(u).iter().map(RuleSignature::from_mealy),
        )
    }

    /// The deterministic rendering the fingerprint hashes. One line per
    /// fact; separators that cannot appear in trimmed names keep the
    /// encoding injective per line kind.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        out.push_str("component\t");
        out.push_str(&self.name);
        out.push('\n');
        out.push_str("in\t");
        out.push_str(&self.inputs.join("\t"));
        out.push('\n');
        out.push_str("out\t");
        out.push_str(&self.outputs.join("\t"));
        out.push('\n');
        out.push_str("init\t");
        out.push_str(&self.initial);
        out.push('\n');
        for r in &self.rules {
            out.push_str("rule\t");
            out.push_str(&r.state);
            out.push('\t');
            out.push_str(&r.inputs.join(","));
            out.push('\t');
            out.push_str(&r.outputs.join(","));
            out.push('\t');
            out.push_str(&r.target);
            out.push('\n');
        }
        out
    }

    /// The content address: FNV-1a 64 over [`canonical`](Self::canonical),
    /// as 16 lowercase hex digits. Doubles as the snapshot file stem.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }

    /// Whether `other` describes the same component *boundary*: same name,
    /// interface and initial state. Rule differences inside an unchanged
    /// boundary are what dirty-cone invalidation can absorb; a changed
    /// boundary forces a cold start.
    pub fn same_boundary(&self, other: &ComponentSignature) -> bool {
        self.name == other.name
            && self.inputs == other.inputs
            && self.outputs == other.outputs
            && self.initial == other.initial
    }

    /// The JSON encoding embedded in snapshot files.
    pub fn to_json(&self) -> Json {
        let rules = self
            .rules
            .iter()
            .map(|r| {
                Json::Object(vec![
                    ("state".into(), Json::Str(r.state.clone())),
                    ("ins".into(), str_array(&r.inputs)),
                    ("outs".into(), str_array(&r.outputs)),
                    ("target".into(), Json::Str(r.target.clone())),
                ])
            })
            .collect();
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("inputs".into(), str_array(&self.inputs)),
            ("outputs".into(), str_array(&self.outputs)),
            ("initial".into(), Json::Str(self.initial.clone())),
            ("rules".into(), Json::Array(rules)),
        ])
    }

    /// Decodes a signature from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let name = str_field(json, "name")?;
        let inputs = str_list(json, "inputs")?;
        let outputs = str_list(json, "outputs")?;
        let initial = str_field(json, "initial")?;
        let rules = match json.get("rules") {
            Some(Json::Array(items)) => items
                .iter()
                .map(|item| {
                    Ok(RuleSignature::new(
                        &str_field(item, "state")?,
                        str_list(item, "ins")?,
                        str_list(item, "outs")?,
                        &str_field(item, "target")?,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("signature `rules` is not an array".to_owned()),
        };
        Ok(ComponentSignature::new(
            &name, inputs, outputs, &initial, rules,
        ))
    }
}

pub(crate) fn str_array(names: &[String]) -> Json {
    Json::Array(names.iter().map(|n| Json::Str(n.clone())).collect())
}

pub(crate) fn str_field(json: &Json, key: &str) -> Result<String, String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

pub(crate) fn str_list(json: &Json, key: &str) -> Result<Vec<String>, String> {
    match json.get(key) {
        Some(Json::Array(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("non-string entry in `{key}`"))
            })
            .collect(),
        _ => Err(format!("missing or non-array field `{key}`")),
    }
}

/// FNV-1a, 64-bit.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_legacy::{fault_matrix, inject, MealyBuilder};

    fn sig(rules: Vec<RuleSignature>) -> ComponentSignature {
        ComponentSignature::new(
            "rear",
            ["go".into(), "halt".into()],
            ["ack".into()],
            "idle",
            rules,
        )
    }

    fn rule(state: &str, ins: &[&str], outs: &[&str], target: &str) -> RuleSignature {
        RuleSignature::new(
            state,
            ins.iter().map(|s| (*s).to_owned()),
            outs.iter().map(|s| (*s).to_owned()),
            target,
        )
    }

    #[test]
    fn rule_reordering_is_fingerprint_invariant() {
        let a = sig(vec![
            rule("idle", &["go"], &["ack"], "run"),
            rule("run", &["halt"], &[], "idle"),
        ]);
        let b = sig(vec![
            rule("run", &["halt"], &[], "idle"),
            rule("idle", &["go"], &["ack"], "run"),
        ]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn whitespace_equivalent_rules_are_fingerprint_invariant() {
        let a = sig(vec![rule("idle", &["go"], &["ack"], "run")]);
        let b = ComponentSignature::new(
            "  rear ",
            ["halt ".into(), " go".into()],
            [" ack".into()],
            " idle",
            vec![rule(" idle ", &["go "], &[" ack "], " run\t")],
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn semantic_edits_change_the_fingerprint() {
        let base = sig(vec![
            rule("idle", &["go"], &["ack"], "run"),
            rule("run", &["halt"], &[], "idle"),
        ]);
        let retargeted = sig(vec![
            rule("idle", &["go"], &["ack"], "idle"),
            rule("run", &["halt"], &[], "idle"),
        ]);
        let muted = sig(vec![
            rule("idle", &["go"], &[], "run"),
            rule("run", &["halt"], &[], "idle"),
        ]);
        let dropped = sig(vec![rule("idle", &["go"], &["ack"], "run")]);
        let renamed = ComponentSignature::new(
            "other",
            ["go".into(), "halt".into()],
            ["ack".into()],
            "idle",
            vec![
                rule("idle", &["go"], &["ack"], "run"),
                rule("run", &["halt"], &[], "idle"),
            ],
        );
        let fps = [
            base.fingerprint(),
            retargeted.fingerprint(),
            muted.fingerprint(),
            dropped.fingerprint(),
            renamed.fingerprint(),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "variants {i} and {j} collide");
            }
        }
    }

    #[test]
    fn interning_order_does_not_matter() {
        // The same machine built against universes whose signal ids were
        // handed out in different orders must fingerprint identically.
        let build = |u: &Universe| -> HiddenMealy {
            MealyBuilder::new(u, "rear")
                .input("go")
                .input("halt")
                .output("ack")
                .state("idle")
                .state("run")
                .initial("idle")
                .rule("idle", ["go"], ["ack"], "run")
                .rule("run", ["halt"], [], "idle")
                .build()
                .unwrap()
        };
        let u1 = Universe::new();
        let m1 = build(&u1);
        let u2 = Universe::new();
        // Skew u2's interning order before building.
        u2.signals(["zz", "halt", "yy", "ack"]);
        let m2 = build(&u2);
        assert_eq!(
            ComponentSignature::of_component(&m1, &u1).fingerprint(),
            ComponentSignature::of_component(&m2, &u2).fingerprint()
        );
    }

    #[test]
    fn json_round_trip() {
        let s = sig(vec![
            rule("idle", &["go"], &["ack"], "run"),
            rule("run", &["halt"], &[], "idle"),
        ]);
        let back = ComponentSignature::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.fingerprint(), s.fingerprint());
    }

    /// Golden fingerprints for a pinned machine and its full `fault_matrix`.
    /// These are the store's content addresses: if canonicalization or the
    /// hash ever changes, every persisted snapshot silently misses — this
    /// test makes that an explicit, reviewed decision.
    #[test]
    fn golden_fault_matrix_fingerprints() {
        let u = Universe::new();
        let m = MealyBuilder::new(&u, "rear")
            .input("go")
            .input("halt")
            .output("ack")
            .state("idle")
            .state("run")
            .initial("idle")
            .rule("idle", ["go"], ["ack"], "run")
            .rule("run", ["halt"], [], "idle")
            .build()
            .unwrap();
        let mut seen = vec![(
            "correct".to_owned(),
            ComponentSignature::of_component(&m, &u).fingerprint(),
        )];
        for fault in fault_matrix(&m, &u) {
            let mut variant = m.clone();
            inject(&mut variant, &u, &fault).unwrap();
            seen.push((
                fault.describe(),
                ComponentSignature::of_component(&variant, &u).fingerprint(),
            ));
        }
        let golden: Vec<(String, String)> = GOLDEN
            .iter()
            .map(|(d, f)| ((*d).to_owned(), (*f).to_owned()))
            .collect();
        assert_eq!(seen, golden, "fingerprint scheme changed");
    }

    const GOLDEN: &[(&str, &str)] = &[
        ("correct", "afdd2af22b9fdb06"),
        ("drop[idle+go]", "be1d165384f48d1c"),
        ("mute[idle+go]", "bcc9409f2d0e38e3"),
        ("redirect[idle+go>idle]", "55858ae30b46aba1"),
        ("drop[run+halt]", "1f6271ff516eab02"),
        ("redirect[run+halt>run]", "2cdffcbf80f5d347"),
    ];
}
