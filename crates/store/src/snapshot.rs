//! The versioned on-disk snapshot format.
//!
//! A [`Snapshot`] is everything a later session needs to warm-start: the
//! component signature it was learned against, the learned automaton as a
//! name-based [`IncompleteSnapshot`], the accumulated learning history, and
//! the quarantine records of flaky counterexample traces. The encoding is
//! the workspace's hand-rolled JSON ([`muml_obs::json`]) under a `"v"`
//! version tag, in the same style as `muml-serve`'s wire frames.
//!
//! Decoding is total: anything unexpected — truncation, mangled bytes, an
//! unknown version — comes back as a typed [`SnapshotError`], which the
//! store surfaces as a miss rather than an error.

use muml_automata::{IncompleteSnapshot, SnapshotRefusal, SnapshotState, SnapshotTransition};
use muml_obs::json::{parse, Json};

use crate::signature::{str_array, str_field, str_list, ComponentSignature};

/// The current snapshot schema version. Files tagged with any other value
/// are treated as misses (never migrated in place).
pub const SNAPSHOT_VERSION: i64 = 1;

/// One run's worth of learning, appended to the snapshot history each time
/// a session saves. State ids are rendered to names so the history stays
/// meaningful across restores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaRecord {
    /// States created during the run.
    pub new_states: usize,
    /// Transitions added to `T`.
    pub new_transitions: usize,
    /// Refusals added to `T̄`.
    pub new_refusals: usize,
    /// Whether the initial-state set grew.
    pub initial_changed: bool,
    /// Names of the states whose knowledge changed.
    pub dirty: Vec<String>,
}

impl DeltaRecord {
    /// Whether the run learned nothing.
    pub fn is_empty(&self) -> bool {
        self.new_states == 0
            && self.new_transitions == 0
            && self.new_refusals == 0
            && !self.initial_changed
            && self.dirty.is_empty()
    }

    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("states".into(), Json::from_usize(self.new_states)),
            ("transitions".into(), Json::from_usize(self.new_transitions)),
            ("refusals".into(), Json::from_usize(self.new_refusals)),
            ("initial_changed".into(), Json::Bool(self.initial_changed)),
            ("dirty".into(), str_array(&self.dirty)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        Ok(DeltaRecord {
            new_states: usize_field(json, "states")?,
            new_transitions: usize_field(json, "transitions")?,
            new_refusals: usize_field(json, "refusals")?,
            initial_changed: json
                .get("initial_changed")
                .and_then(Json::as_bool)
                .ok_or("missing or non-bool field `initial_changed`")?,
            dirty: str_list(json, "dirty")?,
        })
    }
}

/// A persisted learned model: the unit of storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The component this model was learned against.
    pub signature: ComponentSignature,
    /// The learned automaton, name-based and order-preserving.
    pub automaton: IncompleteSnapshot,
    /// Per-run learning history, oldest first.
    pub history: Vec<DeltaRecord>,
    /// Rendered listings of quarantined counterexample traces (PR 5's flake
    /// quarantine), carried across runs so a flaky trace is not re-driven.
    pub quarantined: Vec<String>,
}

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The `"v"` tag held a version this build does not understand.
    UnknownVersion(i64),
    /// The bytes were not a well-formed snapshot (parse failure, missing
    /// field, wrong type, dangling index).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnknownVersion(v) => write!(f, "unknown snapshot version {v}"),
            SnapshotError::Corrupt(detail) => write!(f, "corrupt snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Snapshot {
    /// Encodes the snapshot as versioned JSON text.
    pub fn encode(&self) -> String {
        let a = &self.automaton;
        let states = a
            .states
            .iter()
            .map(|s| {
                Json::Object(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("props".into(), str_array(&s.props)),
                ])
            })
            .collect();
        let transitions = a
            .transitions
            .iter()
            .map(|t| {
                Json::Object(vec![
                    ("from".into(), Json::from_usize(t.from)),
                    ("ins".into(), str_array(&t.inputs)),
                    ("outs".into(), str_array(&t.outputs)),
                    ("to".into(), Json::from_usize(t.to)),
                ])
            })
            .collect();
        let refusals = a
            .refusals
            .iter()
            .map(|r| {
                Json::Object(vec![
                    ("state".into(), Json::from_usize(r.state)),
                    ("ins".into(), str_array(&r.inputs)),
                    ("outs".into(), str_array(&r.outputs)),
                ])
            })
            .collect();
        let automaton = Json::Object(vec![
            ("name".into(), Json::Str(a.name.clone())),
            ("inputs".into(), str_array(&a.inputs)),
            ("outputs".into(), str_array(&a.outputs)),
            ("states".into(), Json::Array(states)),
            ("transitions".into(), Json::Array(transitions)),
            ("refusals".into(), Json::Array(refusals)),
            (
                "initial".into(),
                Json::Array(a.initial.iter().map(|&i| Json::from_usize(i)).collect()),
            ),
        ]);
        Json::Object(vec![
            ("v".into(), Json::Int(SNAPSHOT_VERSION)),
            ("signature".into(), self.signature.to_json()),
            ("automaton".into(), automaton),
            (
                "history".into(),
                Json::Array(self.history.iter().map(DeltaRecord::to_json).collect()),
            ),
            ("quarantined".into(), str_array(&self.quarantined)),
        ])
        .encode()
    }

    /// Decodes snapshot text.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownVersion`] when the version tag is present
    /// but unsupported, [`SnapshotError::Corrupt`] for everything else.
    pub fn decode(text: &str) -> Result<Snapshot, SnapshotError> {
        let corrupt = |detail: String| SnapshotError::Corrupt(detail);
        let json = parse(text).map_err(|e| corrupt(format!("not JSON: {e}")))?;
        let version = json
            .get("v")
            .and_then(Json::as_int)
            .ok_or_else(|| corrupt("missing version tag `v`".to_owned()))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnknownVersion(version));
        }
        let signature = json
            .get("signature")
            .ok_or_else(|| corrupt("missing `signature`".to_owned()))
            .and_then(|s| ComponentSignature::from_json(s).map_err(corrupt))?;
        let automaton = json
            .get("automaton")
            .ok_or_else(|| corrupt("missing `automaton`".to_owned()))
            .and_then(|a| decode_automaton(a).map_err(corrupt))?;
        let history = match json.get("history") {
            Some(Json::Array(items)) => items
                .iter()
                .map(DeltaRecord::from_json)
                .collect::<Result<Vec<_>, String>>()
                .map_err(corrupt)?,
            _ => return Err(corrupt("missing or non-array `history`".to_owned())),
        };
        let quarantined = str_list(&json, "quarantined").map_err(corrupt)?;
        Ok(Snapshot {
            signature,
            automaton,
            history,
            quarantined,
        })
    }
}

fn usize_field(json: &Json, key: &str) -> Result<usize, String> {
    json.get(key)
        .and_then(Json::as_int)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| format!("missing or non-natural field `{key}`"))
}

fn decode_automaton(json: &Json) -> Result<IncompleteSnapshot, String> {
    let states = match json.get("states") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|s| {
                Ok(SnapshotState {
                    name: str_field(s, "name")?,
                    props: str_list(s, "props")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing or non-array `states`".to_owned()),
    };
    let transitions = match json.get("transitions") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|t| {
                Ok(SnapshotTransition {
                    from: usize_field(t, "from")?,
                    inputs: str_list(t, "ins")?,
                    outputs: str_list(t, "outs")?,
                    to: usize_field(t, "to")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing or non-array `transitions`".to_owned()),
    };
    let refusals = match json.get("refusals") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|r| {
                Ok(SnapshotRefusal {
                    state: usize_field(r, "state")?,
                    inputs: str_list(r, "ins")?,
                    outputs: str_list(r, "outs")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing or non-array `refusals`".to_owned()),
    };
    let initial = match json.get("initial") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|i| {
                i.as_int()
                    .and_then(|v| usize::try_from(v).ok())
                    .ok_or_else(|| "non-natural entry in `initial`".to_owned())
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing or non-array `initial`".to_owned()),
    };
    Ok(IncompleteSnapshot {
        name: str_field(json, "name")?,
        inputs: str_list(json, "inputs")?,
        outputs: str_list(json, "outputs")?,
        states,
        transitions,
        refusals,
        initial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::RuleSignature;
    use muml_automata::{IncompleteAutomaton, Label, Observation, SignalSet, Universe};

    pub(crate) fn sample() -> Snapshot {
        let u = Universe::new();
        let inputs = u.signals(["go", "halt"]);
        let outputs = u.signals(["ack"]);
        let mut m = IncompleteAutomaton::trivial(&u, "rear", inputs, outputs, "idle");
        m.learn(&Observation::regular(
            vec!["idle".into(), "run".into()],
            vec![Label::new(u.signals(["go"]), u.signals(["ack"]))],
        ))
        .unwrap();
        m.learn(&Observation::blocked(
            vec!["run".into()],
            vec![Label::new(u.signals(["go"]), SignalSet::EMPTY)],
        ))
        .unwrap();
        m.set_prop("run", u.prop("busy"));
        let signature = ComponentSignature::new(
            "rear",
            ["go".into(), "halt".into()],
            ["ack".into()],
            "idle",
            vec![RuleSignature::new(
                "idle",
                ["go".to_owned()],
                ["ack".to_owned()],
                "run",
            )],
        );
        Snapshot {
            signature,
            automaton: m.to_snapshot(),
            history: vec![DeltaRecord {
                new_states: 1,
                new_transitions: 1,
                new_refusals: 1,
                initial_changed: false,
                dirty: vec!["idle".into(), "run".into()],
            }],
            quarantined: vec!["trace: idle -go/ack-> run".into()],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample();
        let back = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back, snap);
        // The restored automaton must be reconstructible.
        let u = Universe::new();
        let m = IncompleteAutomaton::from_snapshot(&u, &back.automaton).unwrap();
        assert_eq!(m.state_count(), 2);
        assert_eq!(m.transition_count(), 1);
        assert_eq!(m.refusal_count(), 1);
    }

    #[test]
    fn unknown_version_is_typed() {
        let text = sample().encode().replacen("\"v\":1", "\"v\":99", 1);
        assert_eq!(
            Snapshot::decode(&text),
            Err(SnapshotError::UnknownVersion(99))
        );
    }

    #[test]
    fn missing_version_is_corrupt() {
        assert!(matches!(
            Snapshot::decode("{}"),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let text = sample().encode();
        for len in 0..text.len() {
            let prefix = &text[..len];
            let err = Snapshot::decode(prefix).expect_err("truncated snapshot decoded");
            assert!(
                matches!(err, SnapshotError::Corrupt(_)),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn mangled_bytes_never_panic() {
        let text = sample().encode();
        let bytes = text.as_bytes();
        // Deterministic fuzz: overwrite each position with hostile bytes.
        for step in [1usize, 7, 13] {
            for i in (0..bytes.len()).step_by(step) {
                let mut mangled = bytes.to_vec();
                mangled[i] = mangled[i].wrapping_add(0x41);
                if let Ok(s) = String::from_utf8(mangled) {
                    // Either it still decodes (the byte landed in free
                    // text) or it fails with a typed error — never panics.
                    let _ = Snapshot::decode(&s);
                }
            }
        }
    }
}
