//! Persistent content-addressed store for learned behaviour models.
//!
//! The integration loop's expensive artifact is the learned
//! [`IncompleteAutomaton`](muml_automata::IncompleteAutomaton): every
//! transition in it was paid for with driven test steps on the real legacy
//! component. Legacy code changes rarely between verification campaigns, so
//! this crate persists the learned model across runs and seeds the next
//! session's initial abstraction from it instead of starting from chaos.
//!
//! Three layers:
//!
//! * [`ComponentSignature`] — a canonicalized rendering of a legacy
//!   component's interface and interpreter rule set, hashed (FNV-1a 64) into
//!   a content-address. Rule reordering and whitespace-equivalent names do
//!   not change the fingerprint; any semantic rule edit does.
//! * [`Snapshot`] — a versioned, hand-rolled JSON image (no serde in this
//!   workspace) of the learned automaton, its
//!   [`LearnDelta`](muml_automata::LearnDelta) history and the quarantine
//!   records of the run that produced it.
//! * [`Store`] — a directory of snapshot files keyed by fingerprint, with a
//!   per-component index for dirty-cone invalidation when the component
//!   *changed*, coarse file locking for cross-process sharing, and atomic
//!   rename-on-write. Loading never fails hard: every problem degrades to a
//!   typed [`MissReason`] and the session cold-starts.
//! * [`StoreIo`] — the I/O seam beneath the store. [`RealIo`] carries the
//!   fsync discipline (temp-file `sync_data` + parent-directory sync around
//!   the rename) that makes writes crash-durable; [`FaultyIo`] is the seeded
//!   fault injector (`repro chaos`) that drives the degradation ladder with
//!   torn writes, short reads, `ENOSPC`, rename and flock failures.

#![warn(missing_docs)]

mod io;
mod signature;
mod snapshot;
mod store;

pub use io::{FaultKind, FaultProfile, FaultyIo, InjectedFault, RealIo, StoreIo};
pub use signature::{ComponentSignature, RuleSignature};
pub use snapshot::{DeltaRecord, Snapshot, SnapshotError, SNAPSHOT_VERSION};
pub use store::{MissReason, Store, StoreError, StoreLookup};
