//! The on-disk store: content-addressed snapshot files, a per-component
//! index for invalidation, coarse locking and atomic writes.
//!
//! Layout (all under one directory):
//!
//! ```text
//! <dir>/<fingerprint>.json   one snapshot per component content-address
//! <dir>/index.json           component name -> latest fingerprint
//! <dir>/.lock                advisory file lock (coarse, whole-store)
//! ```
//!
//! Concurrency: one in-process mutex (fleet workers share an
//! `Arc<Store>`) plus one exclusive advisory file lock per operation (the
//! `muml-serve` daemon and ad-hoc CLI runs may share a directory across
//! processes). Writes go to a temp file in the same directory followed by
//! an atomic rename, so readers never observe a half-written snapshot —
//! at worst they miss and cold-start.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use muml_obs::json::{parse, Json};

use crate::io::{RealIo, StoreIo};
use crate::signature::ComponentSignature;
use crate::snapshot::{Snapshot, SnapshotError};

/// Why a lookup did not produce a usable snapshot. Every variant degrades
/// to a cold start; none of them is a session error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MissReason {
    /// No snapshot for this fingerprint and no previous version to patch.
    NotFound,
    /// The store directory or a snapshot file could not be read.
    Io(String),
    /// The snapshot bytes were mangled (truncation, bit rot, partial
    /// write by a non-conforming tool).
    Corrupt(String),
    /// The snapshot was written by a different schema version.
    UnknownVersion(i64),
    /// The file decoded but embeds a signature that does not hash to its
    /// own file name — somebody renamed or hand-edited it.
    FingerprintMismatch,
    /// A previous version exists but its component boundary (name,
    /// interface or initial state) changed, so no knowledge survives.
    InterfaceChanged,
}

impl MissReason {
    /// A short, stable description for telemetry.
    pub fn describe(&self) -> String {
        match self {
            MissReason::NotFound => "not-found".to_owned(),
            MissReason::Io(detail) => format!("io: {detail}"),
            MissReason::Corrupt(detail) => format!("corrupt: {detail}"),
            MissReason::UnknownVersion(v) => format!("unknown-version: {v}"),
            MissReason::FingerprintMismatch => "fingerprint-mismatch".to_owned(),
            MissReason::InterfaceChanged => "interface-changed".to_owned(),
        }
    }
}

/// The result of a [`Store::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreLookup {
    /// Exact content-address hit: the component is unchanged since the
    /// snapshot was learned, so all of it can be seeded.
    Hit {
        /// The stored snapshot.
        snapshot: Snapshot,
    },
    /// The component changed, but its boundary did not: the previous
    /// snapshot was patched by dropping the dirty cone — every state whose
    /// rules changed loses its learned transitions and refusals (the
    /// chaotic closure re-covers them pessimistically) while the rest of
    /// the knowledge is kept.
    Invalidated {
        /// The patched snapshot, re-signed with the new signature.
        snapshot: Snapshot,
        /// States whose knowledge was dropped.
        touched_states: usize,
        /// Learned transitions dropped with them.
        dropped_transitions: usize,
        /// Recorded refusals dropped with them.
        dropped_refusals: usize,
    },
    /// Nothing usable: cold-start from the trivial abstraction.
    Miss {
        /// Why.
        reason: MissReason,
    },
}

/// A hard error from [`Store::save`]. Loads never fail hard — misses are
/// data — but a failed save is reported so callers can decide whether to
/// care (the driver logs and moves on: the store is a cache).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// What failed.
    pub detail: String,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store error: {}", self.detail)
    }
}

impl std::error::Error for StoreError {}

/// A persistent, content-addressed store of learned models.
///
/// Cheap to construct — the directory is only touched on first use. Share
/// one instance (via `Arc`) across fleet workers and daemon jobs so the
/// in-process mutex actually serializes them.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    lock: Mutex<()>,
    io: Arc<dyn StoreIo>,
}

const INDEX_VERSION: i64 = 1;

impl Store {
    /// Opens (lazily) the store rooted at `dir`. Infallible: I/O problems
    /// surface as typed misses at lookup time and as [`StoreError`] at
    /// save time.
    pub fn open(dir: impl Into<PathBuf>) -> Store {
        Store::open_with_io(dir, Arc::new(RealIo))
    }

    /// Opens the store with an explicit [`StoreIo`] implementation. This
    /// is the fault-injection seam: pass an `Arc<FaultyIo>` (keeping a
    /// clone of the handle) to drive the Hit/Invalidated/Miss degradation
    /// ladder under a deterministic fault schedule.
    pub fn open_with_io(dir: impl Into<PathBuf>, io: Arc<dyn StoreIo>) -> Store {
        Store {
            dir: dir.into(),
            lock: Mutex::new(()),
            io,
        }
    }

    /// The store's root directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{fingerprint}.json"))
    }

    /// Takes the advisory file lock (blocking). Held for the duration of
    /// one lookup/save; released when the returned handle drops.
    fn file_lock(&self) -> Result<File, String> {
        self.io
            .create_dir_all(&self.dir)
            .map_err(|e| format!("create {}: {e}", self.dir.display()))?;
        let lock_path = self.dir.join(".lock");
        self.io
            .lock_exclusive(&lock_path)
            .map_err(|e| format!("lock {}: {e}", lock_path.display()))
    }

    /// Looks up the snapshot for `sig`, falling back to dirty-cone
    /// invalidation of the component's previous version on a content
    /// miss. Never fails hard.
    pub fn lookup(&self, sig: &ComponentSignature) -> StoreLookup {
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        let _file_lock = match self.file_lock() {
            Ok(f) => f,
            Err(detail) => {
                return StoreLookup::Miss {
                    reason: MissReason::Io(detail),
                }
            }
        };
        let fingerprint = sig.fingerprint();
        match self.read_snapshot(&fingerprint) {
            Ok(snapshot) => StoreLookup::Hit { snapshot },
            Err(MissReason::NotFound) => self.salvage_previous(sig),
            Err(reason) => StoreLookup::Miss { reason },
        }
    }

    /// Reads and validates the snapshot file for one fingerprint.
    fn read_snapshot(&self, fingerprint: &str) -> Result<Snapshot, MissReason> {
        let path = self.snapshot_path(fingerprint);
        let text = self.io.read_to_string(&path).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => MissReason::NotFound,
            // Non-UTF-8 bytes are data corruption, not an I/O failure.
            std::io::ErrorKind::InvalidData => MissReason::Corrupt("not UTF-8".to_owned()),
            _ => MissReason::Io(format!("read {}: {e}", path.display())),
        })?;
        let snapshot = Snapshot::decode(&text).map_err(|e| match e {
            SnapshotError::UnknownVersion(v) => MissReason::UnknownVersion(v),
            SnapshotError::Corrupt(detail) => MissReason::Corrupt(detail),
        })?;
        if snapshot.signature.fingerprint() != fingerprint {
            return Err(MissReason::FingerprintMismatch);
        }
        Ok(snapshot)
    }

    /// Content miss: consult the index for the component's previous
    /// snapshot and patch out the dirty cone.
    fn salvage_previous(&self, sig: &ComponentSignature) -> StoreLookup {
        let miss = |reason: MissReason| StoreLookup::Miss { reason };
        let previous = match self.read_index().get(&sig.name) {
            Some(fp) => fp.clone(),
            None => return miss(MissReason::NotFound),
        };
        let snapshot = match self.read_snapshot(&previous) {
            Ok(s) => s,
            Err(reason) => return miss(reason),
        };
        if !snapshot.signature.same_boundary(sig) {
            return miss(MissReason::InterfaceChanged);
        }
        invalidate_dirty_cone(snapshot, sig)
    }

    /// Persists `snapshot` under its signature's fingerprint and points
    /// the component index at it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the directory, temp file or rename fails.
    pub fn save(&self, snapshot: &Snapshot) -> Result<(), StoreError> {
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        let _file_lock = self.file_lock().map_err(|detail| StoreError { detail })?;
        let fingerprint = snapshot.signature.fingerprint();
        self.write_atomic(&self.snapshot_path(&fingerprint), &snapshot.encode())?;
        let mut index = self.read_index();
        index.set(&snapshot.signature.name, &fingerprint);
        self.write_atomic(&self.dir.join("index.json"), &index.encode())?;
        Ok(())
    }

    /// Temp-file + rename in the store directory (same filesystem, so the
    /// rename is atomic on every platform we target), with the full
    /// durability discipline: the temp file's data is synced before the
    /// rename and the directory is synced after it, so a crash at any
    /// point leaves either the old contents or the complete new ones.
    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), StoreError> {
        let err = |detail: String| StoreError { detail };
        let stem = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let tmp = self.dir.join(format!(".tmp-{}-{stem}", std::process::id()));
        self.io
            .write_durable(&tmp, text)
            .map_err(|e| err(format!("write {}: {e}", tmp.display())))?;
        if let Err(e) = self.io.rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(err(format!("rename to {}: {e}", path.display())));
        }
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| err(format!("sync dir {}: {e}", self.dir.display())))
    }

    /// Reads the component index, tolerating absence and corruption (a
    /// broken index only disables previous-version salvage).
    fn read_index(&self) -> ComponentIndex {
        let path = self.dir.join("index.json");
        let text = match self.io.read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return ComponentIndex::default(),
        };
        ComponentIndex::decode(&text).unwrap_or_default()
    }
}

/// The `index.json` contents: component name → latest fingerprint.
#[derive(Debug, Default)]
struct ComponentIndex {
    entries: Vec<(String, String)>,
}

impl ComponentIndex {
    fn get(&self, name: &str) -> Option<&String> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    fn set(&mut self, name: &str, fingerprint: &str) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, f)) => fingerprint.clone_into(f),
            None => self.entries.push((name.to_owned(), fingerprint.to_owned())),
        }
    }

    fn encode(&self) -> String {
        let components = self
            .entries
            .iter()
            .map(|(n, f)| (n.clone(), Json::Str(f.clone())))
            .collect();
        Json::Object(vec![
            ("v".into(), Json::Int(INDEX_VERSION)),
            ("components".into(), Json::Object(components)),
        ])
        .encode()
    }

    fn decode(text: &str) -> Option<ComponentIndex> {
        let json = parse(text).ok()?;
        if json.get("v").and_then(Json::as_int) != Some(INDEX_VERSION) {
            return None;
        }
        let mut entries = Vec::new();
        match json.get("components") {
            Some(Json::Object(fields)) => {
                for (name, value) in fields {
                    entries.push((name.clone(), value.as_str()?.to_owned()));
                }
            }
            _ => return None,
        }
        Some(ComponentIndex { entries })
    }
}

/// Diffs the rule sets of `snapshot`'s signature and `sig` and drops the
/// knowledge of every *touched* state — one whose outgoing rules changed
/// in any way. Knowledge at untouched states is still observation-
/// conforming: an unchanged rule means the new component steps identically
/// there, so recorded transitions and refusals remain valid; the chaotic
/// closure re-covers the dropped states pessimistically.
fn invalidate_dirty_cone(mut snapshot: Snapshot, sig: &ComponentSignature) -> StoreLookup {
    let mut touched: Vec<&str> = Vec::new();
    let old = &snapshot.signature.rules;
    let new = &sig.rules;
    // Both rule sets are canonically sorted; a symmetric-difference walk
    // collects every state that gained, lost or altered a rule.
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(a), Some(b)) if a == b => {
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                touched.push(&a.state);
                i += 1;
            }
            (Some(_), Some(b)) => {
                touched.push(&b.state);
                j += 1;
            }
            (Some(a), None) => {
                touched.push(&a.state);
                i += 1;
            }
            (None, Some(b)) => {
                touched.push(&b.state);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    touched.sort_unstable();
    touched.dedup();
    let is_touched = |idx: usize| -> bool {
        snapshot
            .automaton
            .states
            .get(idx)
            .is_some_and(|s| touched.binary_search(&s.name.as_str()).is_ok())
    };
    let kept_transitions: Vec<_> = snapshot
        .automaton
        .transitions
        .iter()
        .filter(|t| !is_touched(t.from))
        .cloned()
        .collect();
    let kept_refusals: Vec<_> = snapshot
        .automaton
        .refusals
        .iter()
        .filter(|r| !is_touched(r.state))
        .cloned()
        .collect();
    let touched_states = snapshot
        .automaton
        .states
        .iter()
        .filter(|s| touched.binary_search(&s.name.as_str()).is_ok())
        .count();
    let dropped_transitions = snapshot.automaton.transitions.len() - kept_transitions.len();
    let dropped_refusals = snapshot.automaton.refusals.len() - kept_refusals.len();
    snapshot.automaton.transitions = kept_transitions;
    snapshot.automaton.refusals = kept_refusals;
    // The patched model belongs to the *new* component now.
    snapshot.signature = sig.clone();
    snapshot.automaton.name = sig.name.clone();
    // Quarantine listings were recorded against the old component's
    // behaviour; they may be perfectly reproducible now. Drop them.
    snapshot.quarantined.clear();
    StoreLookup::Invalidated {
        snapshot,
        touched_states,
        dropped_transitions,
        dropped_refusals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::RuleSignature;
    use crate::snapshot::DeltaRecord;
    use muml_automata::{IncompleteAutomaton, Label, Observation, SignalSet, Universe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "muml-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ))
    }

    fn rule(state: &str, ins: &[&str], outs: &[&str], target: &str) -> RuleSignature {
        RuleSignature::new(
            state,
            ins.iter().map(|s| (*s).to_owned()),
            outs.iter().map(|s| (*s).to_owned()),
            target,
        )
    }

    fn base_signature() -> ComponentSignature {
        ComponentSignature::new(
            "rear",
            ["go".into(), "halt".into()],
            ["ack".into()],
            "idle",
            vec![
                rule("idle", &["go"], &["ack"], "run"),
                rule("run", &["halt"], &[], "idle"),
            ],
        )
    }

    fn learned_snapshot(sig: &ComponentSignature) -> Snapshot {
        let u = Universe::new();
        let mut m = IncompleteAutomaton::trivial(
            &u,
            &sig.name,
            u.signals(["go", "halt"]),
            u.signals(["ack"]),
            "idle",
        );
        m.learn(&Observation::regular(
            vec!["idle".into(), "run".into(), "idle".into()],
            vec![
                Label::new(u.signals(["go"]), u.signals(["ack"])),
                Label::new(u.signals(["halt"]), SignalSet::EMPTY),
            ],
        ))
        .unwrap();
        m.learn(&Observation::blocked(
            vec!["run".into()],
            vec![Label::new(u.signals(["go"]), SignalSet::EMPTY)],
        ))
        .unwrap();
        Snapshot {
            signature: sig.clone(),
            automaton: m.to_snapshot(),
            history: vec![DeltaRecord {
                new_states: 1,
                new_transitions: 2,
                new_refusals: 1,
                initial_changed: false,
                dirty: vec!["idle".into(), "run".into()],
            }],
            quarantined: vec![],
        }
    }

    #[test]
    fn save_then_lookup_hits() {
        let dir = tmpdir("hit");
        let store = Store::open(&dir);
        let sig = base_signature();
        assert_eq!(
            store.lookup(&sig),
            StoreLookup::Miss {
                reason: MissReason::NotFound
            }
        );
        let snap = learned_snapshot(&sig);
        store.save(&snap).unwrap();
        match store.lookup(&sig) {
            StoreLookup::Hit { snapshot } => assert_eq!(snapshot, snap),
            other => panic!("expected hit, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rule_edit_invalidates_only_the_dirty_cone() {
        let dir = tmpdir("cone");
        let store = Store::open(&dir);
        let sig = base_signature();
        store.save(&learned_snapshot(&sig)).unwrap();
        // Change only `run`'s rule: idle's knowledge must survive.
        let changed = ComponentSignature::new(
            "rear",
            ["go".into(), "halt".into()],
            ["ack".into()],
            "idle",
            vec![
                rule("idle", &["go"], &["ack"], "run"),
                rule("run", &["halt"], &["ack"], "idle"),
            ],
        );
        match store.lookup(&changed) {
            StoreLookup::Invalidated {
                snapshot,
                touched_states,
                dropped_transitions,
                dropped_refusals,
            } => {
                assert_eq!(touched_states, 1);
                assert_eq!(dropped_transitions, 1); // run -halt-> idle
                assert_eq!(dropped_refusals, 1); // refusal at run
                assert_eq!(snapshot.signature, changed);
                // idle's transition survives; run keeps no knowledge.
                assert_eq!(snapshot.automaton.transitions.len(), 1);
                assert_eq!(snapshot.automaton.transitions[0].from, 0);
                assert!(snapshot.automaton.refusals.is_empty());
                // Both states themselves survive.
                assert_eq!(snapshot.automaton.states.len(), 2);
            }
            other => panic!("expected invalidation, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interface_change_is_a_cold_start() {
        let dir = tmpdir("iface");
        let store = Store::open(&dir);
        let sig = base_signature();
        store.save(&learned_snapshot(&sig)).unwrap();
        let widened = ComponentSignature::new(
            "rear",
            ["go".into(), "halt".into(), "brake".into()],
            ["ack".into()],
            "idle",
            sig.rules.clone(),
        );
        assert_eq!(
            store.lookup(&widened),
            StoreLookup::Miss {
                reason: MissReason::InterfaceChanged
            }
        );
        let moved = ComponentSignature::new(
            "rear",
            ["go".into(), "halt".into()],
            ["ack".into()],
            "run",
            sig.rules.clone(),
        );
        assert_eq!(
            store.lookup(&moved),
            StoreLookup::Miss {
                reason: MissReason::InterfaceChanged
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_files_are_typed_misses() {
        let dir = tmpdir("corrupt");
        let store = Store::open(&dir);
        let sig = base_signature();
        let snap = learned_snapshot(&sig);
        store.save(&snap).unwrap();
        let path = dir.join(format!("{}.json", sig.fingerprint()));
        let text = std::fs::read_to_string(&path).unwrap();

        // Truncations at a sweep of byte lengths.
        for frac in [0, 1, 2, 3] {
            let len = text.len() * frac / 4;
            std::fs::write(&path, &text[..len]).unwrap();
            match store.lookup(&sig) {
                StoreLookup::Miss {
                    reason: MissReason::Corrupt(_),
                } => {}
                other => panic!("truncation to {len} gave {other:?}"),
            }
        }
        // Unknown version tag.
        std::fs::write(&path, text.replacen("\"v\":1", "\"v\":7", 1)).unwrap();
        assert_eq!(
            store.lookup(&sig),
            StoreLookup::Miss {
                reason: MissReason::UnknownVersion(7)
            }
        );
        // Valid snapshot under the wrong file name.
        std::fs::write(&path, learned_snapshot(&base_signature_renamed()).encode()).unwrap();
        assert_eq!(
            store.lookup(&sig),
            StoreLookup::Miss {
                reason: MissReason::FingerprintMismatch
            }
        );
        // Binary garbage.
        std::fs::write(&path, b"\x00\xffnot json at all").unwrap();
        assert!(matches!(
            store.lookup(&sig),
            StoreLookup::Miss {
                reason: MissReason::Corrupt(_)
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn base_signature_renamed() -> ComponentSignature {
        let mut sig = base_signature();
        sig.initial = "run".into();
        sig
    }

    #[test]
    fn corrupt_index_only_disables_salvage() {
        let dir = tmpdir("index");
        let store = Store::open(&dir);
        let sig = base_signature();
        store.save(&learned_snapshot(&sig)).unwrap();
        std::fs::write(dir.join("index.json"), "{{{{").unwrap();
        // Exact hit still works (index not involved)...
        assert!(matches!(store.lookup(&sig), StoreLookup::Hit { .. }));
        // ...while a changed component falls back to a plain miss.
        let changed = ComponentSignature::new(
            "rear",
            ["go".into(), "halt".into()],
            ["ack".into()],
            "idle",
            vec![rule("idle", &["go"], &["ack"], "idle")],
        );
        assert_eq!(
            store.lookup(&changed),
            StoreLookup::Miss {
                reason: MissReason::NotFound
            }
        );
        // Saving repairs the index.
        store.save(&learned_snapshot(&sig)).unwrap();
        assert!(matches!(
            store.lookup(&changed),
            StoreLookup::Invalidated { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_saves_never_corrupt() {
        let dir = tmpdir("race");
        let store = Arc::new(Store::open(&dir));
        let sig = base_signature();
        let snap = learned_snapshot(&sig);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let snap = snap.clone();
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        store.save(&snap).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(matches!(store.lookup(&sig), StoreLookup::Hit { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Two *separate* `Store` instances on one directory have separate
    /// in-process mutexes, so only the advisory flock serializes them —
    /// the cross-process sharing story (`muml-serve` + CLI runs) in
    /// single-process clothing.
    #[test]
    fn separate_instances_serialize_via_flock() {
        let dir = tmpdir("flock");
        let sig = base_signature();
        let snap = learned_snapshot(&sig);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let dir = dir.clone();
                let snap = snap.clone();
                std::thread::spawn(move || {
                    let store = Store::open(&dir);
                    for _ in 0..12 {
                        store.save(&snap).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // A fresh reader parses a complete snapshot: no interleaved or
        // half-renamed writes survived the race.
        match Store::open(&dir).lookup(&sig) {
            StoreLookup::Hit { snapshot } => assert_eq!(snapshot, snap),
            other => panic!("expected hit after racing writers, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_temp_files() {
        let dir = tmpdir("tmpless");
        let store = Store::open(&dir);
        let snap = learned_snapshot(&base_signature());
        store.save(&snap).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The systematic ladder exercise: under a sweep of seeded fault
    /// rates, every lookup must come back as Hit, Invalidated, or a typed
    /// Miss — never a panic, never a frankenstein snapshot. A Hit must be
    /// byte-identical to something that was actually saved.
    #[test]
    fn fault_injection_sweep_degrades_but_never_lies() {
        use crate::io::{FaultProfile, FaultyIo};

        for (case, rate) in [0.05_f64, 0.15, 0.35].iter().enumerate() {
            let dir = tmpdir("chaos");
            let faulty = Arc::new(FaultyIo::new(
                0x9E37_79B9_7F4A_7C15 ^ ((case as u64) << 16),
                FaultProfile::uniform(*rate),
            ));
            let store = Store::open_with_io(&dir, Arc::clone(&faulty) as Arc<dyn StoreIo>);
            let sig = base_signature();
            let snap = learned_snapshot(&sig);
            let changed = ComponentSignature::new(
                "rear",
                ["go".into(), "halt".into()],
                ["ack".into()],
                "idle",
                vec![
                    rule("idle", &["go"], &["ack"], "run"),
                    rule("run", &["halt"], &["ack"], "idle"),
                ],
            );
            let mut hits = 0_usize;
            for round in 0..60 {
                // Saves may fail (ENOSPC, rename, lock): degradation, not
                // corruption. Torn writes *succeed* and must be caught by
                // the lookup ladder as Corrupt misses.
                let _ = store.save(&snap);
                match store.lookup(&sig) {
                    StoreLookup::Hit { snapshot } => {
                        assert_eq!(snapshot, snap, "hit diverged in round {round}");
                        hits += 1;
                    }
                    StoreLookup::Invalidated { .. } => {
                        panic!("exact-fingerprint lookup cannot invalidate")
                    }
                    StoreLookup::Miss { .. } => {}
                }
                // The changed component exercises salvage: any of the
                // three outcomes is legal under faults, panics are not.
                match store.lookup(&changed) {
                    StoreLookup::Hit { .. } => panic!("changed rules cannot be an exact hit"),
                    StoreLookup::Invalidated { snapshot, .. } => {
                        assert_eq!(snapshot.signature, changed);
                    }
                    StoreLookup::Miss { .. } => {}
                }
            }
            assert!(
                faulty.injected_count() > 0,
                "rate {rate} injected nothing over 60 rounds"
            );
            assert!(hits > 0, "rate {rate} never produced a single hit");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
