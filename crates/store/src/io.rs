//! The store's I/O seam: every byte the store reads or writes goes
//! through a [`StoreIo`] implementation.
//!
//! Production code uses [`RealIo`], which adds the durability discipline
//! the plain `std::fs` calls lacked: temp files are `sync_data`'d before
//! the atomic rename and the parent directory is fsynced after it, so a
//! power loss immediately after `save` cannot leave an empty or missing
//! snapshot behind a successfully-returned call.
//!
//! Tests and the `repro chaos` campaign use [`FaultyIo`], a seeded
//! decorator that injects the faults real filesystems produce — torn
//! writes, short reads, `ENOSPC`, failed renames, failed advisory locks —
//! at configurable per-operation rates. Determinism matters: the same
//! seed yields the same fault schedule, so a chaos failure replays.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

/// Filesystem operations the store performs, abstracted so faults can be
/// injected deterministically. All methods mirror their `std::fs`
/// equivalents except [`StoreIo::write_durable`], which also flushes file
/// contents to stable storage (`sync_data`) before returning.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Reads `path` to a string.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Writes `text` to `path` and syncs the file data to disk.
    ///
    /// # Errors
    /// Propagates the underlying I/O error (including `ENOSPC`).
    fn write_durable(&self, path: &Path, text: &str) -> io::Result<()>;

    /// Renames `from` to `to` (atomic when both are on one filesystem).
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Fsyncs the directory itself so a completed rename survives power
    /// loss (directory entries are metadata; the rename alone is not
    /// durable until its directory is synced).
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Opens `path` (creating it) and takes a blocking exclusive advisory
    /// lock. The lock is released when the returned handle drops.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    fn lock_exclusive(&self, path: &Path) -> io::Result<File>;
}

/// The production [`StoreIo`]: `std::fs` plus the fsync discipline that
/// makes the temp-file + rename pattern actually crash-safe.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn write_durable(&self, path: &Path, text: &str) -> io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(text.as_bytes())?;
        // Contents must be stable before the rename publishes the name;
        // otherwise a crash can expose a zero-length "committed" file.
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directories can be opened read-only and fsynced on the unix
        // platforms we target; on platforms where this fails (or is
        // meaningless) the rename was already atomic, so degrade quietly.
        match File::open(dir) {
            Ok(handle) => handle.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn lock_exclusive(&self, path: &Path) -> io::Result<File> {
        let file = File::options()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        file.lock()?;
        Ok(file)
    }
}

/// Which fault a [`FaultyIo`] injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A write silently persisted only a prefix of its bytes (power loss
    /// between write and sync, bit-for-bit what a torn page looks like).
    TornWrite,
    /// A read silently returned a prefix of the file.
    ShortRead,
    /// A write failed with `ENOSPC`.
    Enospc,
    /// A rename failed.
    RenameFail,
    /// Taking the advisory lock failed.
    LockFail,
}

impl FaultKind {
    /// Stable label for telemetry and the chaos report.
    pub fn describe(self) -> &'static str {
        match self {
            FaultKind::TornWrite => "torn-write",
            FaultKind::ShortRead => "short-read",
            FaultKind::Enospc => "enospc",
            FaultKind::RenameFail => "rename-fail",
            FaultKind::LockFail => "lock-fail",
        }
    }
}

/// One injected fault: what happened and to which path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fault class.
    pub kind: FaultKind,
    /// The file it hit.
    pub path: String,
}

/// Per-operation fault probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability that a write persists only a prefix (but reports Ok).
    pub torn_write: f64,
    /// Probability that a read silently truncates.
    pub short_read: f64,
    /// Probability that a write fails with `ENOSPC`.
    pub enospc: f64,
    /// Probability that a rename fails.
    pub rename_fail: f64,
    /// Probability that taking the advisory lock fails.
    pub lock_fail: f64,
}

impl FaultProfile {
    /// All five fault classes at the same rate.
    pub fn uniform(rate: f64) -> FaultProfile {
        FaultProfile {
            torn_write: rate,
            short_read: rate,
            enospc: rate,
            rename_fail: rate,
            lock_fail: rate,
        }
    }
}

/// Seeded fault-injecting [`StoreIo`] decorator around [`RealIo`].
///
/// Every operation rolls the profile's rate on a deterministic xorshift
/// stream; injected faults are recorded and can be drained with
/// [`FaultyIo::take_injected`] so campaigns can report exactly what the
/// store survived.
#[derive(Debug)]
pub struct FaultyIo {
    inner: RealIo,
    state: Mutex<FaultState>,
}

#[derive(Debug)]
struct FaultState {
    rng: XorShift,
    profile: FaultProfile,
    injected: Vec<InjectedFault>,
}

impl FaultyIo {
    /// A fault injector with the given deterministic seed and profile.
    pub fn new(seed: u64, profile: FaultProfile) -> FaultyIo {
        FaultyIo {
            inner: RealIo,
            state: Mutex::new(FaultState {
                rng: XorShift::new(seed),
                profile,
                injected: Vec::new(),
            }),
        }
    }

    /// How many faults have been injected so far.
    pub fn injected_count(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .injected
            .len()
    }

    /// Drains and returns the injected-fault log.
    pub fn take_injected(&self) -> Vec<InjectedFault> {
        std::mem::take(
            &mut self
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .injected,
        )
    }

    /// Rolls `pick(profile)`; on a hit records the fault and returns the
    /// rng draw used for any secondary decision (e.g. where to tear).
    fn roll(
        &self,
        pick: impl Fn(&FaultProfile) -> f64,
        kind: FaultKind,
        path: &Path,
    ) -> Option<u64> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let rate = pick(&state.profile);
        if !state.rng.roll(rate) {
            return None;
        }
        let draw = state.rng.next();
        state.injected.push(InjectedFault {
            kind,
            path: path.display().to_string(),
        });
        Some(draw)
    }
}

impl StoreIo for FaultyIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let text = self.inner.read_to_string(path)?;
        match self.roll(|p| p.short_read, FaultKind::ShortRead, path) {
            Some(draw) if !text.is_empty() => {
                let mut cut = (draw as usize) % text.len();
                while !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                Ok(text[..cut].to_owned())
            }
            _ => Ok(text),
        }
    }

    fn write_durable(&self, path: &Path, text: &str) -> io::Result<()> {
        if self.roll(|p| p.enospc, FaultKind::Enospc, path).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC: no space left on device",
            ));
        }
        match self.roll(|p| p.torn_write, FaultKind::TornWrite, path) {
            Some(draw) if !text.is_empty() => {
                // The dangerous case: a prefix lands on disk and the call
                // still reports success, exactly like power loss between
                // a page-cache write and its flush.
                let mut cut = (draw as usize) % text.len();
                while !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                self.inner.write_durable(path, &text[..cut])
            }
            _ => self.inner.write_durable(path, text),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self
            .roll(|p| p.rename_fail, FaultKind::RenameFail, to)
            .is_some()
        {
            return Err(io::Error::other("injected rename failure"));
        }
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn lock_exclusive(&self, path: &Path) -> io::Result<File> {
        if self
            .roll(|p| p.lock_fail, FaultKind::LockFail, path)
            .is_some()
        {
            return Err(io::Error::other("injected flock failure"));
        }
        self.inner.lock_exclusive(path)
    }
}

/// xorshift64* — the same tiny deterministic generator the legacy rig
/// uses, so seeds behave identically across the workspace.
#[derive(Debug)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpfile(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "muml-io-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ))
    }

    #[test]
    fn real_io_round_trips_durably() {
        let path = tmpfile("real");
        RealIo.write_durable(&path, "hello").unwrap();
        assert_eq!(RealIo.read_to_string(&path).unwrap(), "hello");
        RealIo.sync_dir(path.parent().unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let path = tmpfile("zero");
        let io = FaultyIo::new(42, FaultProfile::uniform(0.0));
        for _ in 0..50 {
            io.write_durable(&path, "payload").unwrap();
            assert_eq!(io.read_to_string(&path).unwrap(), "payload");
        }
        assert_eq!(io.injected_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn full_rate_faults_every_fallible_op() {
        let path = tmpfile("full");
        let io = FaultyIo::new(7, FaultProfile::uniform(1.0));
        // enospc rolls first, so writes always fail at rate 1.0.
        assert!(io.write_durable(&path, "x").is_err());
        assert!(io.rename(&path, &tmpfile("full-to")).is_err());
        assert!(io.lock_exclusive(&path).is_err());
        assert_eq!(io.injected_count(), 3);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let schedule = |seed: u64| -> Vec<FaultKind> {
            let path = tmpfile("det");
            let io = FaultyIo::new(seed, FaultProfile::uniform(0.3));
            for i in 0..40 {
                let _ = io.write_durable(&path, &format!("payload-{i}"));
                let _ = io.read_to_string(&path);
            }
            std::fs::remove_file(&path).ok();
            io.take_injected().into_iter().map(|f| f.kind).collect()
        };
        let a = schedule(1234);
        assert_eq!(a, schedule(1234));
        assert!(!a.is_empty(), "rate 0.3 over 80 ops must inject something");
        assert_ne!(a, schedule(99), "different seeds should diverge");
    }

    #[test]
    fn torn_write_reports_ok_but_truncates() {
        let path = tmpfile("torn");
        let io = FaultyIo::new(
            3,
            FaultProfile {
                torn_write: 1.0,
                short_read: 0.0,
                enospc: 0.0,
                rename_fail: 0.0,
                lock_fail: 0.0,
            },
        );
        io.write_durable(&path, "0123456789").unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(on_disk.len() < 10, "torn write must lose a suffix");
        assert!("0123456789".starts_with(&on_disk));
        std::fs::remove_file(&path).ok();
    }
}
