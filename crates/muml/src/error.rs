//! Error type for the architectural layer.

use std::fmt;

/// Errors reported while assembling or verifying patterns and components.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ArchError {
    /// A referenced role does not exist in the pattern.
    UnknownRole(String),
    /// Statechart flattening failed.
    Flatten(String),
    /// Channel construction failed.
    Channel(String),
    /// Automata-kernel failure (composition, refinement, …).
    Automata(muml_automata::AutomataError),
    /// Model checking failure (counterexample extraction out of fragment).
    Logic(muml_logic::LogicError),
    /// A property attached to the pattern is not in the compositional
    /// fragment (Section 2.4) — verification results would not transfer to
    /// refinements, so this is rejected early.
    NotCompositional {
        /// Rendering of the offending formula.
        formula: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnknownRole(r) => write!(f, "unknown role `{r}`"),
            ArchError::Flatten(e) => write!(f, "statechart flattening failed: {e}"),
            ArchError::Channel(e) => write!(f, "connector construction failed: {e}"),
            ArchError::Automata(e) => write!(f, "automata error: {e}"),
            ArchError::Logic(e) => write!(f, "model checking error: {e}"),
            ArchError::NotCompositional { formula } => write!(
                f,
                "property `{formula}` is outside the compositional timed-ACTL fragment"
            ),
        }
    }
}

impl std::error::Error for ArchError {}

impl From<muml_automata::AutomataError> for ArchError {
    fn from(e: muml_automata::AutomataError) -> Self {
        ArchError::Automata(e)
    }
}

impl From<muml_logic::LogicError> for ArchError {
    fn from(e: muml_logic::LogicError) -> Self {
        ArchError::Logic(e)
    }
}

impl From<muml_rtsc::FlattenError> for ArchError {
    fn from(e: muml_rtsc::FlattenError) -> Self {
        ArchError::Flatten(e.to_string())
    }
}

impl From<muml_rtsc::ChannelError> for ArchError {
    fn from(e: muml_rtsc::ChannelError) -> Self {
        ArchError::Channel(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ArchError::UnknownRole("x".into()).to_string().contains("x"));
        let e: ArchError = muml_automata::AutomataError::UniverseMismatch.into();
        assert!(e.to_string().contains("universes"));
        assert!(ArchError::NotCompositional {
            formula: "EF p".into()
        }
        .to_string()
        .contains("EF p"));
    }
}
