//! Pattern-level verification.
//!
//! "We prove that the given constraints hold for the system by using a model
//! checker." This module checks a closed pattern (all roles composed with
//! the connector) against its pattern constraint, all role invariants, and
//! deadlock freedom — the compositional verification step Mechatronic UML
//! performs *before* components are implemented. Components then only need
//! to refine their roles (checked by
//! [`check_port_refinement`](crate::check_port_refinement)) for the results
//! to carry over (Lemmas 3 and 5).

use muml_logic::{check_all, Counterexample, Formula, Verdict};

use crate::error::ArchError;
use crate::pattern::CoordinationPattern;

/// The result of verifying a pattern.
#[derive(Debug, Clone)]
pub struct PatternReport {
    /// The properties that were checked, in order: pattern constraint, role
    /// invariants, deadlock freedom.
    pub properties: Vec<Formula>,
    /// `None` if everything holds; otherwise the first counterexample.
    pub violation: Option<Counterexample>,
    /// Size of the composed pattern state space.
    pub state_count: usize,
}

impl PatternReport {
    /// Whether the pattern satisfies all its properties.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Verifies the closed pattern against constraint, invariants, and deadlock
/// freedom.
///
/// # Errors
///
/// Composition/flattening failures, or counterexample extraction outside
/// the safety fragment.
pub fn verify_pattern(pattern: &CoordinationPattern) -> Result<PatternReport, ArchError> {
    let comp = pattern.compose_closed()?;
    let mut properties = pattern.properties();
    properties.push(Formula::deadlock_free());
    let violation = match check_all(&comp.automaton, &properties)? {
        Verdict::Holds => None,
        Verdict::Violated(c) => Some(c),
    };
    Ok(PatternReport {
        properties,
        violation,
        state_count: comp.automaton.state_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use muml_automata::Universe;
    use muml_logic::parse;
    use muml_rtsc::{ChannelSpec, RtscBuilder};

    #[test]
    fn correct_pattern_verifies() {
        let u = Universe::new();
        let a = RtscBuilder::new(&u, "a")
            .output("a.msg")
            .input("a.ack")
            .state("idle")
            .initial("idle")
            .prop("idle", "a.idle")
            .state("wait")
            .transition("idle", "wait", [], ["a.msg"])
            .transition("wait", "idle", ["a.ack"], [])
            .build()
            .unwrap();
        let b = RtscBuilder::new(&u, "b")
            .input("b.msg")
            .output("b.ack")
            .state("idle")
            .initial("idle")
            .state("got")
            .deny_stay("got")
            .transition("idle", "got", ["b.msg"], [])
            .transition("got", "idle", [], ["b.ack"])
            .build()
            .unwrap();
        let p = PatternBuilder::new(&u, "MsgAck")
            .role("sender", a)
            .role("receiver", b)
            .connector(ChannelSpec::reliable(
                "link",
                &[("a.msg", "b.msg"), ("b.ack", "a.ack")],
                1,
            ))
            .constraint(parse(&u, "AG !(a.idle & deadlock)").unwrap())
            .build()
            .unwrap();
        let report = verify_pattern(&p).unwrap();
        assert!(report.ok(), "violation: {:?}", report.violation);
        assert!(report.state_count > 0);
        assert_eq!(report.properties.len(), 2); // constraint + ¬δ
    }

    #[test]
    fn deadlocking_pattern_yields_counterexample() {
        let u = Universe::new();
        // The receiver ignores messages forever and the sender insists on an
        // ack that never comes → deadlock once the message is lost in the
        // mismatch.
        let a = RtscBuilder::new(&u, "a")
            .output("a.msg")
            .input("a.ack")
            .state("idle")
            .initial("idle")
            .deny_stay("idle")
            .state("wait")
            .deny_stay("wait")
            .transition("idle", "wait", [], ["a.msg"])
            .transition("wait", "idle", ["a.ack"], [])
            .build()
            .unwrap();
        let b = RtscBuilder::new(&u, "b")
            .input("b.msg")
            .output("b.ack")
            .state("deaf")
            .initial("deaf")
            .deny_stay("deaf")
            .build()
            .unwrap();
        let p = PatternBuilder::new(&u, "Broken")
            .role("sender", a)
            .role("receiver", b)
            .connector(ChannelSpec::reliable(
                "link",
                &[("a.msg", "b.msg"), ("b.ack", "a.ack")],
                1,
            ))
            .build()
            .unwrap();
        let report = verify_pattern(&p).unwrap();
        assert!(!report.ok());
        let cex = report.violation.unwrap();
        assert!(cex.description.contains("deadlock"));
    }
}
