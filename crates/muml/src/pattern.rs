//! Coordination patterns: roles, connectors, constraints, and context
//! extraction.
//!
//! "A pattern describes communication and therefore consists of multiple
//! communication partners, called *roles*. Roles interact through ports
//! which are linked by a connector. The communication behavior of a role is
//! specified by a real-time statechart and is restricted by an invariant.
//! The behavior of the connector is described by another real-time
//! statechart […]. The overall behavior of a pattern is restricted by a
//! pattern constraint." (Section "Modeling" of the paper.)
//!
//! The constraints, invariants, and known communication partners together
//! form the *context information* the synthesis loop exploits: for a legacy
//! component embedded at one role, [`CoordinationPattern::context_for`]
//! builds the abstract context automaton `M_a^c` from the other roles and
//! the connector.

use muml_automata::{compose, Automaton, ComposeOptions, Composition, SignalSet, Universe};
use muml_logic::Formula;
use muml_rtsc::{channel_automaton, flatten, ChannelSpec, Rtsc};

use crate::error::ArchError;

/// A role of a coordination pattern.
#[derive(Debug, Clone)]
pub struct Role {
    /// Role name, e.g. `frontRole`.
    pub name: String,
    /// The role protocol as a real-time statechart.
    pub behavior: Rtsc,
    /// The role invariant (a timed-ACTL formula), if any. For the
    /// DistanceCoordination pattern: "the front shuttle must not brake with
    /// full power while in convoy mode".
    pub invariant: Option<Formula>,
}

/// A coordination pattern.
#[derive(Debug, Clone)]
pub struct CoordinationPattern {
    /// Pattern name, e.g. `DistanceCoordination`.
    pub name: String,
    /// The universe all parts share.
    pub universe: Universe,
    /// The pattern's roles.
    pub roles: Vec<Role>,
    /// The connector linking the roles (one queue automaton; kinds cover
    /// both directions).
    pub connector: ChannelSpec,
    /// The pattern constraint, if any. For DistanceCoordination:
    /// `AG ¬(rearRole.convoy ∧ frontRole.noConvoy)`.
    pub constraint: Option<Formula>,
}

/// The extracted context for one embedded (legacy) role: everything in the
/// pattern *except* that role.
#[derive(Debug, Clone)]
pub struct PatternContext {
    /// The composed context automaton `M_a^c` (other roles ∥ connector).
    pub automaton: Automaton,
    /// Input signals the embedded component must consume (the connector
    /// delivers these to it).
    pub component_inputs: SignalSet,
    /// Output signals the embedded component must produce.
    pub component_outputs: SignalSet,
    /// Name of the role the component is embedded at.
    pub role: String,
}

impl CoordinationPattern {
    /// Looks up a role by name.
    pub fn role(&self, name: &str) -> Result<&Role, ArchError> {
        self.roles
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| ArchError::UnknownRole(name.to_owned()))
    }

    /// All properties the pattern demands: the pattern constraint plus every
    /// role invariant.
    pub fn properties(&self) -> Vec<Formula> {
        let mut out = Vec::new();
        if let Some(c) = &self.constraint {
            out.push(c.clone());
        }
        for r in &self.roles {
            if let Some(i) = &r.invariant {
                out.push(i.clone());
            }
        }
        out
    }

    /// Flattens every role and the connector and composes them into the
    /// closed pattern system (used for pattern verification).
    ///
    /// # Errors
    ///
    /// Flattening, channel, or composition failures.
    pub fn compose_closed(&self) -> Result<Composition, ArchError> {
        let mut autos: Vec<Automaton> = Vec::new();
        for r in &self.roles {
            autos.push(flatten(&r.behavior)?);
        }
        autos.push(channel_automaton(&self.universe, &self.connector)?);
        let refs: Vec<&Automaton> = autos.iter().collect();
        Ok(compose(&refs, &ComposeOptions::default())?)
    }

    /// Builds the abstract context `M_a^c` for a component embedded at
    /// `legacy_role`: the composition of all *other* roles with the
    /// connector. The embedded component's required interface is derived
    /// from the legacy role's statechart.
    ///
    /// # Errors
    ///
    /// [`ArchError::UnknownRole`] plus flattening/composition failures.
    pub fn context_for(&self, legacy_role: &str) -> Result<PatternContext, ArchError> {
        let legacy = self.role(legacy_role)?;
        let mut autos: Vec<Automaton> = Vec::new();
        for r in &self.roles {
            if r.name != legacy_role {
                autos.push(flatten(&r.behavior)?);
            }
        }
        autos.push(channel_automaton(&self.universe, &self.connector)?);
        let refs: Vec<&Automaton> = autos.iter().collect();
        let comp = compose(&refs, &ComposeOptions::default())?;
        Ok(PatternContext {
            automaton: comp.automaton,
            component_inputs: legacy.behavior.inputs(),
            component_outputs: legacy.behavior.outputs(),
            role: legacy_role.to_owned(),
        })
    }
}

/// Builder for [`CoordinationPattern`].
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    universe: Universe,
    name: String,
    roles: Vec<Role>,
    connector: Option<ChannelSpec>,
    constraint: Option<Formula>,
}

impl PatternBuilder {
    /// Starts a pattern named `name`.
    pub fn new(u: &Universe, name: &str) -> Self {
        PatternBuilder {
            universe: u.clone(),
            name: name.to_owned(),
            roles: Vec::new(),
            connector: None,
            constraint: None,
        }
    }

    /// Adds a role without invariant.
    #[must_use]
    pub fn role(self, name: &str, behavior: Rtsc) -> Self {
        self.role_with_invariant(name, behavior, None)
    }

    /// Adds a role with an optional invariant.
    #[must_use]
    pub fn role_with_invariant(
        mut self,
        name: &str,
        behavior: Rtsc,
        invariant: Option<Formula>,
    ) -> Self {
        self.roles.push(Role {
            name: name.to_owned(),
            behavior,
            invariant,
        });
        self
    }

    /// Sets the connector.
    #[must_use]
    pub fn connector(mut self, spec: ChannelSpec) -> Self {
        self.connector = Some(spec);
        self
    }

    /// Sets the pattern constraint.
    #[must_use]
    pub fn constraint(mut self, f: Formula) -> Self {
        self.constraint = Some(f);
        self
    }

    /// Finalizes the pattern.
    ///
    /// # Errors
    ///
    /// * [`ArchError::Channel`] if no connector was set.
    /// * [`ArchError::NotCompositional`] if the constraint or a role
    ///   invariant is outside the timed-ACTL fragment (results would not
    ///   transfer through refinement — Lemma 5 would not apply).
    pub fn build(self) -> Result<CoordinationPattern, ArchError> {
        let connector = self
            .connector
            .ok_or_else(|| ArchError::Channel("pattern has no connector".into()))?;
        for f in self
            .constraint
            .iter()
            .chain(self.roles.iter().filter_map(|r| r.invariant.as_ref()))
        {
            if !f.is_compositional() {
                return Err(ArchError::NotCompositional {
                    formula: f.show(&self.universe),
                });
            }
        }
        Ok(CoordinationPattern {
            name: self.name,
            universe: self.universe,
            roles: self.roles,
            connector,
            constraint: self.constraint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_logic::parse;
    use muml_rtsc::RtscBuilder;

    /// A minimal ping/pong pattern: `caller` sends ping, `callee` pongs.
    fn ping_pong(u: &Universe) -> CoordinationPattern {
        let caller = RtscBuilder::new(u, "caller")
            .output("caller.ping")
            .input("caller.pong")
            .state("idle")
            .initial("idle")
            .prop("idle", "caller.idle")
            .state("waiting")
            .transition("idle", "waiting", [], ["caller.ping"])
            .transition("waiting", "idle", ["caller.pong"], [])
            .build()
            .unwrap();
        let callee = RtscBuilder::new(u, "callee")
            .input("callee.ping")
            .output("callee.pong")
            .state("ready")
            .initial("ready")
            .state("serving")
            .transition("ready", "serving", ["callee.ping"], [])
            .transition("serving", "ready", [], ["callee.pong"])
            .build()
            .unwrap();
        PatternBuilder::new(u, "PingPong")
            .role("caller", caller)
            .role("callee", callee)
            .connector(ChannelSpec::reliable(
                "link",
                &[
                    ("caller.ping", "callee.ping"),
                    ("callee.pong", "caller.pong"),
                ],
                1,
            ))
            .constraint(parse(u, "AG !deadlock").unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn pattern_composes_closed() {
        let u = Universe::new();
        let p = ping_pong(&u);
        let comp = p.compose_closed().unwrap();
        assert!(comp.automaton.state_count() > 0);
        // fully closed: every input has a sender and vice versa, and the
        // composition is concrete.
        assert!(comp.automaton.is_concrete());
    }

    #[test]
    fn context_excludes_legacy_role() {
        let u = Universe::new();
        let p = ping_pong(&u);
        let ctx = p.context_for("callee").unwrap();
        assert_eq!(ctx.role, "callee");
        // The context consists of caller ∥ link; its open signals are the
        // callee-side ones.
        assert_eq!(ctx.component_inputs, u.signals(["callee.ping"]));
        assert_eq!(ctx.component_outputs, u.signals(["callee.pong"]));
        // callee's signals are open in the context automaton
        assert!(ctx.automaton.outputs().contains(u.signal("callee.ping")));
        assert!(ctx.automaton.inputs().contains(u.signal("callee.pong")));
    }

    #[test]
    fn unknown_role_is_error() {
        let u = Universe::new();
        let p = ping_pong(&u);
        assert!(matches!(
            p.context_for("ghost"),
            Err(ArchError::UnknownRole(_))
        ));
    }

    #[test]
    fn non_compositional_constraint_rejected() {
        let u = Universe::new();
        let caller = RtscBuilder::new(&u, "c")
            .state("s")
            .initial("s")
            .build()
            .unwrap();
        let err = PatternBuilder::new(&u, "Bad")
            .role("caller", caller)
            .connector(ChannelSpec::reliable("l", &[], 1))
            .constraint(parse(&u, "EF p").unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, ArchError::NotCompositional { .. }));
    }

    #[test]
    fn missing_connector_rejected() {
        let u = Universe::new();
        let err = PatternBuilder::new(&u, "Bad").build().unwrap_err();
        assert!(matches!(err, ArchError::Channel(_)));
    }

    #[test]
    fn properties_collects_constraint_and_invariants() {
        let u = Universe::new();
        let r = RtscBuilder::new(&u, "r")
            .state("s")
            .initial("s")
            .build()
            .unwrap();
        let p = PatternBuilder::new(&u, "P")
            .role_with_invariant("a", r.clone(), Some(parse(&u, "AG x").unwrap()))
            .role("b", r)
            .connector(ChannelSpec::reliable("l", &[], 1))
            .constraint(parse(&u, "AG !deadlock").unwrap())
            .build()
            .unwrap();
        assert_eq!(p.properties().len(), 2);
    }
}
