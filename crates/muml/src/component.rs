//! Components, ports, and role refinement.
//!
//! "Components are designed by coordinating and refining each role RTSC of
//! the involved patterns. The refinement has to respect the role RTSC (i.e.
//! not add additional behavior or block guaranteed behavior) […]. We further
//! refer to the refined roles as component ports." (Section "Modeling".)
//!
//! A [`Component`] implements one or more pattern roles; the port discipline
//! is checked with the kernel's refinement `⊑` (Definition 4) after
//! restricting the component to the port's interface (the substitution
//! conditions of Lemma 3).

use muml_automata::{
    refines_with, restrict_interface, Automaton, PropSet, RefineOptions, RefinementFailure,
};
use muml_rtsc::{flatten, Rtsc};

use crate::error::ArchError;
use crate::pattern::CoordinationPattern;

/// A binding of a component to one pattern role.
#[derive(Debug, Clone)]
pub struct PortBinding {
    /// The pattern name (diagnostic only).
    pub pattern: String,
    /// The role this port refines.
    pub role: String,
}

/// A concrete component implementing one or more pattern roles.
#[derive(Debug, Clone)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// The component behaviour (the coordinated refinement of all its
    /// ports, including any internal synchronization statechart).
    pub behavior: Rtsc,
    /// The roles this component is bound to.
    pub ports: Vec<PortBinding>,
}

impl Component {
    /// Creates a component bound to the given `(pattern, role)` pairs.
    pub fn new(name: &str, behavior: Rtsc, ports: &[(&str, &str)]) -> Self {
        Component {
            name: name.to_owned(),
            behavior,
            ports: ports
                .iter()
                .map(|(p, r)| PortBinding {
                    pattern: (*p).to_owned(),
                    role: (*r).to_owned(),
                })
                .collect(),
        }
    }

    /// Flattens the component behaviour.
    ///
    /// # Errors
    ///
    /// Propagates flattening failures.
    pub fn automaton(&self) -> Result<Automaton, ArchError> {
        Ok(flatten(&self.behavior)?)
    }
}

/// Outcome of a port-refinement check.
#[derive(Debug, Clone)]
pub enum PortCheck {
    /// The component (restricted to the port interface) refines the role.
    Refines,
    /// Refinement fails; the witness explains why (an added trace, an
    /// unmatched refusal, or a labelling mismatch).
    Violation(RefinementFailure),
}

impl PortCheck {
    /// Returns `true` if the port discipline holds.
    pub fn ok(&self) -> bool {
        matches!(self, PortCheck::Refines)
    }
}

/// Checks that `component` correctly refines `role` of `pattern`
/// (Definition 4 via the restriction of Lemma 3): the component, restricted
/// to the role's interface and labelling, must not add behaviour and must
/// not block guaranteed behaviour.
///
/// # Errors
///
/// [`ArchError::UnknownRole`] or kernel failures.
pub fn check_port_refinement(
    pattern: &CoordinationPattern,
    role: &str,
    component: &Component,
) -> Result<PortCheck, ArchError> {
    let comp_auto = flatten(&component.behavior)?;
    check_port_refinement_automaton(pattern, role, &comp_auto)
}

/// Like [`check_port_refinement`], for a component given directly as an
/// automaton — e.g. the *product* of several port behaviours. The paper's
/// shuttle "has to operate as both a rearRole and a frontRole"; its
/// composed behaviour must refine each role after restriction to that
/// port's interface (Lemma 3).
///
/// # Errors
///
/// [`ArchError::UnknownRole`] or kernel failures.
pub fn check_port_refinement_automaton(
    pattern: &CoordinationPattern,
    role: &str,
    component: &Automaton,
) -> Result<PortCheck, ArchError> {
    let role_def = pattern.role(role)?;
    let role_auto = flatten(&role_def.behavior)?;
    // Lemma 3 side conditions: restrict the component to the role interface
    // and to the propositions the role automaton knows about.
    let role_props = role_auto.prop_support();
    let restricted = restrict_interface(
        component,
        role_auto.inputs(),
        role_auto.outputs(),
        role_props,
    )?;
    let opts = RefineOptions {
        wildcard_props: PropSet::EMPTY,
        ..RefineOptions::default()
    };
    match refines_with(&restricted, &role_auto, &opts)? {
        None => Ok(PortCheck::Refines),
        Some(failure) => Ok(PortCheck::Violation(failure)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use muml_automata::Universe;
    use muml_rtsc::{ChannelSpec, RtscBuilder};

    fn simple_pattern(u: &Universe) -> CoordinationPattern {
        // role `server`: may receive req and must answer rsp; may also idle.
        let server = RtscBuilder::new(u, "server")
            .input("srv.req")
            .output("srv.rsp")
            .state("ready")
            .initial("ready")
            .state("busy")
            .deny_stay("busy")
            .transition("ready", "busy", ["srv.req"], [])
            .transition("busy", "ready", [], ["srv.rsp"])
            .build()
            .unwrap();
        let client = RtscBuilder::new(u, "client")
            .output("cli.req")
            .input("cli.rsp")
            .state("idle")
            .initial("idle")
            .state("wait")
            .transition("idle", "wait", [], ["cli.req"])
            .transition("wait", "idle", ["cli.rsp"], [])
            .build()
            .unwrap();
        PatternBuilder::new(u, "ReqRsp")
            .role("server", server)
            .role("client", client)
            .connector(ChannelSpec::reliable(
                "link",
                &[("cli.req", "srv.req"), ("srv.rsp", "cli.rsp")],
                1,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn conforming_component_refines_role() {
        let u = Universe::new();
        let p = simple_pattern(&u);
        // a component implementing the server role exactly
        let beh = RtscBuilder::new(&u, "impl")
            .input("srv.req")
            .output("srv.rsp")
            .state("r")
            .initial("r")
            .state("b")
            .deny_stay("b")
            .transition("r", "b", ["srv.req"], [])
            .transition("b", "r", [], ["srv.rsp"])
            .build()
            .unwrap();
        let c = Component::new("serverImpl", beh, &[("ReqRsp", "server")]);
        assert!(check_port_refinement(&p, "server", &c).unwrap().ok());
    }

    #[test]
    fn component_adding_behaviour_fails() {
        let u = Universe::new();
        let p = simple_pattern(&u);
        // implements the role faithfully, but may additionally answer
        // spontaneously without a request — adds a trace
        let beh = RtscBuilder::new(&u, "impl")
            .input("srv.req")
            .output("srv.rsp")
            .state("r")
            .initial("r")
            .state("b")
            .deny_stay("b")
            .transition("r", "b", ["srv.req"], [])
            .transition("b", "r", [], ["srv.rsp"])
            .transition("r", "r", [], ["srv.rsp"])
            .build()
            .unwrap();
        let c = Component::new("chatty", beh, &[("ReqRsp", "server")]);
        match check_port_refinement(&p, "server", &c).unwrap() {
            PortCheck::Violation(RefinementFailure::TraceNotIncluded { trace }) => {
                assert_eq!(trace.len(), 1);
            }
            other => panic!("expected TraceNotIncluded, got {other:?}"),
        }
    }

    #[test]
    fn component_blocking_guaranteed_behaviour_fails() {
        let u = Universe::new();
        let p = simple_pattern(&u);
        // receives req but never answers: blocks the guaranteed rsp. The
        // role's `busy` state is urgent (must answer), this component idles.
        let beh = RtscBuilder::new(&u, "impl")
            .input("srv.req")
            .output("srv.rsp")
            .state("r")
            .initial("r")
            .state("stuck")
            .transition("r", "stuck", ["srv.req"], [])
            .build()
            .unwrap();
        let c = Component::new("mute", beh, &[("ReqRsp", "server")]);
        match check_port_refinement(&p, "server", &c).unwrap() {
            PortCheck::Violation(RefinementFailure::RefusalNotMatched { label, .. }) => {
                // after req, the role guarantees rsp; the component refuses it
                assert!(label.outputs.contains(u.signal("srv.rsp")) || label.outputs.is_empty());
            }
            other => panic!("expected RefusalNotMatched, got {other:?}"),
        }
    }

    #[test]
    fn extra_private_signals_are_allowed() {
        let u = Universe::new();
        let p = simple_pattern(&u);
        // The component has an extra internal debug output; restriction to
        // the port interface removes it (Lemma 3 substitution).
        let beh = RtscBuilder::new(&u, "impl")
            .input("srv.req")
            .output("srv.rsp")
            .output("impl.debug")
            .state("r")
            .initial("r")
            .state("b")
            .deny_stay("b")
            .transition("r", "b", ["srv.req"], ["impl.debug"])
            .transition("b", "r", [], ["srv.rsp"])
            .build()
            .unwrap();
        let c = Component::new("debuggable", beh, &[("ReqRsp", "server")]);
        assert!(check_port_refinement(&p, "server", &c).unwrap().ok());
    }

    #[test]
    fn component_accessors() {
        let u = Universe::new();
        let beh = RtscBuilder::new(&u, "x")
            .state("s")
            .initial("s")
            .build()
            .unwrap();
        let c = Component::new("c", beh, &[("P", "r")]);
        assert_eq!(c.name, "c");
        assert_eq!(c.ports.len(), 1);
        assert!(c.automaton().is_ok());
    }
}
