//! The Mechatronic UML architectural layer: coordination patterns, roles,
//! connectors, components, and ports.
//!
//! Implements the modeling level of *Giese, Henkler, Hirsch: Combining
//! Formal Verification and Testing for Correct Legacy Component Integration
//! in Mechatronic UML*:
//!
//! * [`CoordinationPattern`] — reusable real-time coordination patterns:
//!   roles with RTSC protocols and invariants, an explicit connector
//!   (event-queue automaton with delay/reliability QoS), and a pattern
//!   constraint in timed ACTL.
//! * [`verify_pattern`] — compositional pattern verification (constraint +
//!   role invariants + deadlock freedom on the closed pattern).
//! * [`Component`] / [`check_port_refinement`] — components refine the role
//!   protocols they are bound to; the check is Definition 4's refinement
//!   after the interface restriction of Lemma 3.
//! * [`CoordinationPattern::context_for`] — extraction of the abstract
//!   context `M_a^c` for a *legacy* component embedded at one role: the
//!   composition of all other roles and the connector. This is the context
//!   information the iterative synthesis of `muml-core` exploits.

#![warn(missing_docs)]

mod component;
mod error;
mod pattern;
mod verify;

pub use component::{
    check_port_refinement, check_port_refinement_automaton, Component, PortBinding, PortCheck,
};
pub use error::ArchError;
pub use pattern::{CoordinationPattern, PatternBuilder, PatternContext, Role};
pub use verify::{verify_pattern, PatternReport};
