//! The DistanceCoordination pattern (Figure 1 of the paper).
//!
//! Two roles — `rearRole` and `frontRole` — coordinate two successive
//! shuttles over a wireless connector so that convoys are only formed (and
//! the inter-shuttle distance only reduced) with the front shuttle's
//! consent:
//!
//! * **pattern constraint**: `AG ¬(rearRole.convoy ∧ frontRole.noConvoy)` —
//!   never may the rear shuttle tailgate while the front one would brake
//!   with full force;
//! * **frontRole invariant**: in convoy mode the front shuttle brakes with
//!   reduced force only (`AG (frontRole.convoy → frontRole.reducedBraking)`);
//! * **rearRole invariant**: outside a convoy the rear shuttle keeps full
//!   braking distance (`AG (rearRole.noConvoy → rearRole.fullBraking)`).
//!
//! Here the role protocols use role-qualified signal names and an explicit
//! delay-1 connector (the wireless link); the *integration* walkthrough of
//! [`crate::scenario`] instead embeds the legacy component directly against
//! the front role (a delay-0 link), matching the paper's listings.

use muml_arch::{CoordinationPattern, PatternBuilder};
use muml_automata::Universe;
use muml_logic::parse;
use muml_rtsc::{ChannelSpec, Rtsc, RtscBuilder};

/// The rear role protocol (role-qualified signals).
pub fn rear_role_rtsc(u: &Universe) -> Rtsc {
    RtscBuilder::new(u, "rearRole")
        .output("rearRole.convoyProposal")
        .output("rearRole.breakConvoyProposal")
        .input("rearRole.convoyProposalRejected")
        .input("rearRole.startConvoy")
        .input("rearRole.breakConvoyRejected")
        .input("rearRole.breakConvoyAccepted")
        .state("noConvoy")
        .prop("noConvoy", "rearRole.noConvoy")
        .prop("noConvoy", "rearRole.fullBraking")
        .substate("noConvoy", "default")
        .substate("noConvoy", "wait")
        .prop("noConvoy::wait", "rearRole.waiting")
        .initial("noConvoy")
        .state("convoy")
        .prop("convoy", "rearRole.convoy")
        .state("breaking")
        .prop("breaking", "rearRole.fullBraking")
        .transition(
            "noConvoy::default",
            "noConvoy::wait",
            [],
            ["rearRole.convoyProposal"],
        )
        .transition(
            "noConvoy::wait",
            "noConvoy::default",
            ["rearRole.convoyProposalRejected"],
            [],
        )
        .transition("noConvoy::wait", "convoy", ["rearRole.startConvoy"], [])
        // the rear shuttle falls back to full distance *before* proposing
        // to dissolve the convoy
        .transition("convoy", "breaking", [], ["rearRole.breakConvoyProposal"])
        .transition("breaking", "convoy", ["rearRole.breakConvoyRejected"], [])
        .transition("breaking", "noConvoy", ["rearRole.breakConvoyAccepted"], [])
        .build()
        .expect("rear role statechart is well-formed")
}

/// The front role protocol (role-qualified signals).
pub fn front_role_pattern_rtsc(u: &Universe) -> Rtsc {
    RtscBuilder::new(u, "frontRole")
        .input("frontRole.convoyProposal")
        .input("frontRole.breakConvoyProposal")
        .output("frontRole.convoyProposalRejected")
        .output("frontRole.startConvoy")
        .output("frontRole.breakConvoyRejected")
        .output("frontRole.breakConvoyAccepted")
        .state("noConvoy")
        .prop("noConvoy", "frontRole.noConvoy")
        .substate("noConvoy", "default")
        .substate("noConvoy", "answer")
        .deny_stay("noConvoy::answer")
        .initial("noConvoy")
        .state("convoy")
        .prop("convoy", "frontRole.convoy")
        .prop("convoy", "frontRole.reducedBraking")
        .state("break")
        .deny_stay("break")
        .prop("break", "frontRole.convoy")
        .prop("break", "frontRole.reducedBraking")
        .transition(
            "noConvoy::default",
            "noConvoy::answer",
            ["frontRole.convoyProposal"],
            [],
        )
        .transition(
            "noConvoy::answer",
            "noConvoy::default",
            [],
            ["frontRole.convoyProposalRejected"],
        )
        .transition("noConvoy::answer", "convoy", [], ["frontRole.startConvoy"])
        .transition("convoy", "break", ["frontRole.breakConvoyProposal"], [])
        .transition("break", "convoy", [], ["frontRole.breakConvoyRejected"])
        .transition("break", "noConvoy", [], ["frontRole.breakConvoyAccepted"])
        .build()
        .expect("front role statechart is well-formed")
}

/// The complete DistanceCoordination pattern of Figure 1: both roles, the
/// wireless connector (reliable, delay 1), the pattern constraint, and the
/// role invariants.
pub fn distance_coordination(u: &Universe) -> CoordinationPattern {
    let connector = ChannelSpec::reliable(
        "wireless",
        &[
            ("rearRole.convoyProposal", "frontRole.convoyProposal"),
            (
                "rearRole.breakConvoyProposal",
                "frontRole.breakConvoyProposal",
            ),
            (
                "frontRole.convoyProposalRejected",
                "rearRole.convoyProposalRejected",
            ),
            ("frontRole.startConvoy", "rearRole.startConvoy"),
            (
                "frontRole.breakConvoyRejected",
                "rearRole.breakConvoyRejected",
            ),
            (
                "frontRole.breakConvoyAccepted",
                "rearRole.breakConvoyAccepted",
            ),
        ],
        1,
    );
    PatternBuilder::new(u, "DistanceCoordination")
        .role_with_invariant(
            "rearRole",
            rear_role_rtsc(u),
            Some(parse(u, "AG (rearRole.noConvoy -> rearRole.fullBraking)").unwrap()),
        )
        .role_with_invariant(
            "frontRole",
            front_role_pattern_rtsc(u),
            Some(parse(u, "AG (frontRole.convoy -> frontRole.reducedBraking)").unwrap()),
        )
        .connector(connector)
        .constraint(parse(u, "AG !(rearRole.convoy & frontRole.noConvoy)").unwrap())
        .build()
        .expect("DistanceCoordination pattern is well-formed")
}

/// A rear role with a *timeout* (Real-Time Statechart clock): if no answer
/// arrives within `timeout` time units, the shuttle gives up waiting and
/// re-proposes. Over a reliable delay-1 link the answer always arrives
/// within 3 ticks, so the timeout never fires; over a lossy link it is the
/// recovery mechanism that keeps the shuttle from being stuck forever.
pub fn rear_role_with_timeout(u: &Universe, timeout: u32) -> Rtsc {
    use muml_rtsc::CmpOp;
    RtscBuilder::new(u, "rearRole")
        .output("rearRole.convoyProposal")
        .output("rearRole.breakConvoyProposal")
        .input("rearRole.convoyProposalRejected")
        .input("rearRole.startConvoy")
        .input("rearRole.breakConvoyRejected")
        .input("rearRole.breakConvoyAccepted")
        .clock("c")
        .state("noConvoy")
        .prop("noConvoy", "rearRole.noConvoy")
        .prop("noConvoy", "rearRole.fullBraking")
        .substate("noConvoy", "default")
        .substate("noConvoy", "wait")
        .prop("noConvoy::wait", "rearRole.waiting")
        .invariant("noConvoy::wait", "c", CmpOp::Le, timeout)
        .initial("noConvoy")
        .state("convoy")
        .prop("convoy", "rearRole.convoy")
        .state("breaking")
        .prop("breaking", "rearRole.fullBraking")
        .transition_timed(
            "noConvoy::default",
            "noConvoy::wait",
            [],
            ["rearRole.convoyProposal"],
            [],
            ["c"],
        )
        .transition(
            "noConvoy::wait",
            "noConvoy::default",
            ["rearRole.convoyProposalRejected"],
            [],
        )
        .transition("noConvoy::wait", "convoy", ["rearRole.startConvoy"], [])
        // timeout: give up waiting and re-propose
        .transition_timed(
            "noConvoy::wait",
            "noConvoy::default",
            [],
            [],
            [("c", CmpOp::Ge, timeout)],
            [],
        )
        .transition("convoy", "breaking", [], ["rearRole.breakConvoyProposal"])
        .transition("breaking", "convoy", ["rearRole.breakConvoyRejected"], [])
        .transition("breaking", "noConvoy", ["rearRole.breakConvoyAccepted"], [])
        .build()
        .expect("timed rear role is well-formed")
}

/// The DistanceCoordination pattern over a **lossy** wireless link — the
/// QoS variant the paper motivates ("channel delay and reliability, which
/// are of crucial importance for real-time systems"). The protocol has no
/// retransmission, so message loss breaks its bounded-liveness: a dropped
/// proposal leaves the rear shuttle waiting forever.
pub fn distance_coordination_lossy(u: &Universe) -> CoordinationPattern {
    let reliable = distance_coordination(u);
    let kinds: Vec<(&str, &str)> = reliable
        .connector
        .kinds
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let connector = ChannelSpec::lossy("wireless", &kinds, 1);
    PatternBuilder::new(u, "DistanceCoordinationLossy")
        .role("rearRole", rear_role_rtsc(u))
        .role("frontRole", front_role_pattern_rtsc(u))
        .connector(connector)
        .constraint(parse(u, "AG !(rearRole.convoy & frontRole.noConvoy)").unwrap())
        .build()
        .expect("lossy pattern is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_arch::verify_pattern;

    #[test]
    fn figure1_pattern_structure() {
        let u = Universe::new();
        let p = distance_coordination(&u);
        assert_eq!(p.name, "DistanceCoordination");
        assert_eq!(p.roles.len(), 2);
        assert_eq!(p.connector.kinds.len(), 6);
        assert_eq!(p.properties().len(), 3); // constraint + 2 invariants
    }

    #[test]
    fn pattern_verifies() {
        let u = Universe::new();
        let p = distance_coordination(&u);
        let report = verify_pattern(&p).unwrap();
        assert!(
            report.ok(),
            "pattern violated: {:?}",
            report.violation.map(|c| c.description)
        );
        assert!(
            report.state_count > 5,
            "composed {} states",
            report.state_count
        );
    }

    #[test]
    fn connector_reliability_decides_bounded_liveness() {
        // The paper singles out channel delay *and reliability* as crucial.
        // Bounded liveness — "a waiting rear shuttle gets its answer within
        // 8 time units" — holds over the reliable link and fails over the
        // lossy one (a dropped proposal leaves the shuttle waiting forever;
        // the safety constraint is untouched either way).
        use muml_logic::{check_all, Verdict};
        let u = Universe::new();
        let liveness = parse(&u, "AG (rearRole.waiting -> AF[1,8] !rearRole.waiting)").unwrap();

        let reliable = distance_coordination(&u).compose_closed().unwrap();
        match check_all(&reliable.automaton, std::slice::from_ref(&liveness)).unwrap() {
            Verdict::Holds => {}
            Verdict::Violated(c) => {
                panic!("reliable link must meet the deadline: {}", c.description)
            }
        }

        let lossy = distance_coordination_lossy(&u).compose_closed().unwrap();
        match check_all(&lossy.automaton, &[liveness]).unwrap() {
            Verdict::Violated(_) => {}
            Verdict::Holds => panic!("lossy link must break the deadline"),
        }
        // …while the safety constraint survives loss:
        let safety = parse(&u, "AG !(rearRole.convoy & frontRole.noConvoy)").unwrap();
        match check_all(&lossy.automaton, &[safety]).unwrap() {
            Verdict::Holds => {}
            Verdict::Violated(c) => panic!("loss must not break safety: {}", c.description),
        }
    }

    #[test]
    fn timeout_restores_escape_from_waiting_under_loss() {
        // Under a lossy link, *bounded* liveness is impossible (every
        // retransmission may be lost too), but a timeout restores the
        // weaker escape property AG(waiting → EF ¬waiting): the shuttle is
        // never irrecoverably stuck. Without the timeout the property fails
        // (a lost proposal leaves `wait` with no exit at all).
        //
        // Loss is modelled on the *uplink only* (the proposal kinds): if
        // downlink answers could vanish too, a lost `startConvoy`
        // desynchronizes the shuttles — the front believes the convoy
        // exists, the rear re-proposes, and the front (in convoy mode)
        // cannot even receive the proposal: the timeout alone cannot repair
        // that, which this test suite demonstrated before the protocol was
        // narrowed. QoS assumptions are part of the pattern's contract.
        use muml_logic::Checker;
        let u = Universe::new();
        let escape = parse(&u, "AG (rearRole.waiting -> EF !rearRole.waiting)").unwrap();

        // lossy uplink + timeout: escape holds
        let kinds_owned = distance_coordination(&u).connector.kinds;
        let kinds: Vec<(&str, &str)> = kinds_owned
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let with_timeout = PatternBuilder::new(&u, "LossyWithTimeout")
            .role("rearRole", rear_role_with_timeout(&u, 6))
            .role("frontRole", front_role_pattern_rtsc(&u))
            .connector(ChannelSpec::lossy_for(
                "wireless",
                &kinds,
                1,
                &["rearRole.convoyProposal"],
            ))
            .build()
            .unwrap()
            .compose_closed()
            .unwrap();
        assert!(
            Checker::new(&with_timeout.automaton).satisfies(&escape),
            "timeout must guarantee an escape from waiting"
        );

        // lossy without timeout: escape fails
        let without = distance_coordination_lossy(&u).compose_closed().unwrap();
        assert!(
            !Checker::new(&without.automaton).satisfies(&escape),
            "without a timeout a lost proposal strands the shuttle"
        );

        // reliable + timeout: the timeout never fires spuriously — the
        // pattern still verifies end to end (safety + deadlock freedom).
        let reliable_timed = PatternBuilder::new(&u, "ReliableWithTimeout")
            .role("rearRole", rear_role_with_timeout(&u, 6))
            .role("frontRole", front_role_pattern_rtsc(&u))
            .connector(ChannelSpec::reliable("wireless", &kinds, 1))
            .constraint(parse(&u, "AG !(rearRole.convoy & frontRole.noConvoy)").unwrap())
            .build()
            .unwrap();
        let report = verify_pattern(&reliable_timed).unwrap();
        assert!(report.ok(), "{:?}", report.violation.map(|c| c.description));
    }

    #[test]
    fn context_extraction_for_rear_role() {
        let u = Universe::new();
        let p = distance_coordination(&u);
        let ctx = p.context_for("rearRole").unwrap();
        assert_eq!(ctx.role, "rearRole");
        assert_eq!(ctx.component_outputs.len(), 2);
        assert_eq!(ctx.component_inputs.len(), 4);
    }
}
