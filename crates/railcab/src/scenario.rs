//! The paper's walkthrough: every figure and listing of Sections 3–5,
//! regenerated from the implementation.
//!
//! The paper embeds the legacy rear shuttle (`shuttle2`) directly against
//! the known front role (`shuttle1`) — Listing 1.1 shows both partners
//! exchanging messages within one step, i.e. a delay-free link — so the
//! walkthrough composes the legacy closure with
//! [`front_context`](crate::front_context) directly.
//!
//! Note on concrete traces: our model checker returns *shortest*
//! counterexamples, while the authors' checker returned a longer one in
//! Listing 1.1; the artefacts here match the paper's in kind (the same
//! verdicts, listing formats, and learned models), not byte-for-byte.

use muml_automata::{chaotic_automaton, to_dot, Automaton, IncompleteAutomaton, Universe};
use muml_core::obs::EventSink;
use muml_core::{default_mapper, initial_abstraction};
use muml_core::{IntegrationReport, IntegrationSession, LegacyUnit};
use muml_legacy::{execute_expected_trace, HiddenMealy, PortMap};
use muml_logic::{parse, Formula};

use crate::front::front_context;
use crate::messages::{rear_inputs, rear_outputs};
use crate::rear::{correct_shuttle, faulty_shuttle, full_shuttle};

/// The pattern constraint, phrased over the embedded component's state
/// propositions: `AG ¬(shuttle2.convoy ∧ front.noConvoy)`.
pub fn pattern_constraint(u: &Universe) -> Formula {
    parse(u, "AG !(shuttle2.convoy & front.noConvoy)").unwrap()
}

/// The port map of the legacy rear shuttle: all its messages cross the
/// `rearRole` port (as in the paper's `[Message] … portName="rearRole"`).
pub fn rear_port_map(u: &Universe) -> PortMap {
    let mut pm = PortMap::with_default("rearRole");
    pm.assign(rear_inputs(u).union(rear_outputs(u)), "rearRole");
    pm
}

/// Figure 3: the maximal chaotic automaton over the rear interface (DOT).
pub fn fig3_chaotic_automaton(u: &Universe) -> String {
    let mc = chaotic_automaton(u, "chaos", rear_inputs(u), rear_outputs(u), None);
    to_dot(&mc)
}

/// Figure 4: the trivial initial incomplete automaton `M_l^0` (4a) and its
/// chaotic closure `M_a^0` (4b).
pub fn fig4_initial(u: &Universe) -> (IncompleteAutomaton, Automaton) {
    let shuttle = correct_shuttle(u);
    let chaos = u.prop("__chaos__");
    let mapper = default_mapper("shuttle2");
    initial_abstraction(u, &shuttle, chaos, &mapper)
}

/// Figure 5: the known context (front role) as DOT.
pub fn fig5_context(u: &Universe) -> String {
    to_dot(&front_context(u))
}

/// Listing 1.1: an early counterexample of the iterative synthesis — a run
/// into the chaotic closure that manifests a deadlock at `s_δ`, rendered in
/// the paper's listing style. (Our model checker returns *shortest*
/// counterexamples, so the first few iterations produce shorter runs than
/// the authors' Listing 1.1; we show the first one that actually reaches
/// the chaotic states, which is the paper's situation.)
pub fn listing_1_1(u: &Universe) -> String {
    let mut shuttle = correct_shuttle(u);
    let report = integrate(u, &mut shuttle);
    report
        .iterations
        .iter()
        .filter_map(|r| r.counterexample.as_deref())
        .find(|c| c.contains("s_delta") || c.contains("s_all"))
        .unwrap_or_else(|| {
            report
                .iterations
                .first()
                .and_then(|r| r.counterexample.as_deref())
                .unwrap_or("")
        })
        .to_owned()
}

/// Listings 1.2 and 1.3: the minimal-probe recording and the
/// full-instrumentation replay trace of testing the negotiation prefix of
/// the paper's counterexample (propose → rejected) against the *faulty*
/// shuttle. The replay reveals the "blocking state": the shuttle is already
/// in `convoy` when the rejection arrives — "a conflict with expected
/// behavior based on the initial counterexample".
pub fn listings_1_2_and_1_3(u: &Universe) -> (String, String) {
    use muml_automata::{Label, SignalSet};
    let mut shuttle = faulty_shuttle(u);
    let ports = rear_port_map(u);
    let expected = vec![
        Label::new(SignalSet::EMPTY, u.signals(["convoyProposal"])),
        Label::new(u.signals(["convoyProposalRejected"]), SignalSet::EMPTY),
    ];
    let outcome =
        execute_expected_trace(&mut shuttle, &expected, u, &ports).expect("deterministic");
    (
        outcome.recording.monitor_trace(u, &ports).to_string(),
        outcome.monitor.to_string(),
    )
}

/// Runs the full integration loop for a given shuttle.
pub fn integrate(u: &Universe, shuttle: &mut HiddenMealy) -> IntegrationReport {
    let mut sink = muml_core::obs::NullSink;
    integrate_with(u, shuttle, &mut sink)
}

/// Runs the full integration loop for a given shuttle, reporting every
/// [`muml_core::obs::LoopEvent`] of the run to `sink` — the instrumented
/// walkthrough behind `repro fig2 --json` and the golden-event test.
pub fn integrate_with(
    u: &Universe,
    shuttle: &mut HiddenMealy,
    sink: &mut dyn EventSink,
) -> IntegrationReport {
    let ctx = front_context(u);
    let ports = rear_port_map(u);
    IntegrationSession::new(u, &ctx)
        .formula(pattern_constraint(u))
        .unit(LegacyUnit::new(shuttle, ports))
        .sink(sink)
        .run()
        .expect("integration loop runs to a verdict")
}

/// Figure 6 / Listing 1.4: integrating the faulty shuttle. Returns the
/// report (a real fault) and the learned model as DOT (Figure 6).
pub fn integrate_faulty(u: &Universe) -> (IntegrationReport, String) {
    let mut shuttle = faulty_shuttle(u);
    let report = integrate(u, &mut shuttle);
    let dot = to_dot(&report.learned[0].known_automaton());
    (report, dot)
}

/// Figure 7: integrating the correct shuttle. Returns the report (proven)
/// and the learned model as DOT (Figure 7).
pub fn integrate_correct(u: &Universe) -> (IntegrationReport, String) {
    let mut shuttle = correct_shuttle(u);
    let report = integrate(u, &mut shuttle);
    let dot = to_dot(&report.learned[0].known_automaton());
    (report, dot)
}

/// Integrating the full-protocol shuttle (exercises the break-convoy
/// machinery as well).
pub fn integrate_full(u: &Universe) -> IntegrationReport {
    let mut shuttle = full_shuttle(u);
    integrate(u, &mut shuttle)
}

/// Listing 1.5: the successful learning step — the correct shuttle driven
/// along the negotiation (propose → rejected → propose → startConvoy),
/// monitored with full instrumentation.
pub fn listing_1_5(u: &Universe) -> String {
    use muml_automata::{Label, SignalSet};
    let mut shuttle = correct_shuttle(u);
    let ports = rear_port_map(u);
    let proposal = u.signals(["convoyProposal"]);
    let rejected = u.signals(["convoyProposalRejected"]);
    let start = u.signals(["startConvoy"]);
    let expected = vec![
        Label::new(SignalSet::EMPTY, proposal),
        Label::new(rejected, SignalSet::EMPTY),
        Label::new(SignalSet::EMPTY, proposal),
        Label::new(start, SignalSet::EMPTY),
    ];
    let outcome =
        execute_expected_trace(&mut shuttle, &expected, u, &ports).expect("deterministic");
    assert!(outcome.confirmed, "the correct shuttle realizes the trace");
    outcome.monitor.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_core::IntegrationVerdict;

    #[test]
    fn listing_1_1_shape() {
        let u = Universe::new();
        let text = listing_1_1(&u);
        // The counterexample involves the front role and the chaotic states.
        assert!(text.contains("shuttle1."), "{text}");
        assert!(text.contains("shuttle2."), "{text}");
        assert!(text.contains("s_delta") || text.contains("s_all"), "{text}");
    }

    #[test]
    fn listings_1_2_and_1_3_shapes() {
        let u = Universe::new();
        let (minimal, full) = listings_1_2_and_1_3(&u);
        // Listing 1.2: messages only, on port rearRole.
        assert!(!minimal.contains("CurrentState"));
        assert!(minimal.is_empty() || minimal.contains("portName=\"rearRole\""));
        // Listing 1.3: states and timing as well.
        assert!(full.contains("[CurrentState]"));
    }

    #[test]
    fn faulty_shuttle_fault_matches_listing_1_4() {
        let u = Universe::new();
        let (report, _dot) = integrate_faulty(&u);
        match &report.verdict {
            IntegrationVerdict::RealFault {
                property, rendered, ..
            } => {
                assert!(property.contains("shuttle2.convoy"));
                assert!(property.contains("front.noConvoy"));
                // Listing 1.4: the violation manifests with shuttle1 in
                // (noConvoy::)answer and shuttle2 in convoy:
                //   shuttle1.noConvoy::default, shuttle2.noConvoy
                //   shuttle2.convoyProposal!, shuttle1.convoyProposal?
                //   shuttle1.noConvoy::answer, shuttle2.convoy
                assert!(rendered.contains("shuttle2.convoy"), "{rendered}");
                assert!(rendered.contains("shuttle1.noConvoy::answer"), "{rendered}");
                assert!(rendered.contains("shuttle2.convoyProposal!"), "{rendered}");
                assert!(rendered.contains("shuttle1.convoyProposal?"), "{rendered}");
            }
            v => panic!("expected a real fault, got {v:?}"),
        }
        // Fast conflict detection (claim C3): a handful of iterations.
        assert!(
            report.stats.iterations <= 10,
            "took {} iterations",
            report.stats.iterations
        );
    }

    #[test]
    fn correct_shuttle_is_proven_with_partial_learning() {
        let u = Universe::new();
        let (report, dot) = integrate_correct(&u);
        assert!(report.verdict.proven(), "{:?}", report.verdict);
        // Figure 7: the learned model covers the negotiation states.
        let learned = &report.learned[0];
        assert!(learned.find_state("noConvoy::default").is_some());
        assert!(learned.find_state("noConvoy::wait").is_some());
        assert!(learned.find_state("convoy").is_some());
        assert!(dot.contains("noConvoy::wait"));
        // The conservative shuttle never breaks convoys, so nothing about
        // the break machinery was learned (claim C4: partial learning).
        assert!(learned.known_automaton().transitions().all(|(_, t)| {
            !t.guard
                .input_support()
                .contains(u.signal("breakConvoyRejected"))
        }));
    }

    #[test]
    fn full_shuttle_is_proven() {
        let u = Universe::new();
        let report = integrate_full(&u);
        assert!(report.verdict.proven(), "{:?}", report.verdict);
        // The full shuttle's break cycle was learned.
        let learned = &report.learned[0];
        assert!(learned.find_state("convoy::breaking").is_some());
    }

    #[test]
    fn listing_1_5_shape() {
        let u = Universe::new();
        let text = listing_1_5(&u);
        assert!(text.contains("[CurrentState] name=\"noConvoy::default\""));
        assert!(text.contains(
            "[Message] name=\"convoyProposal\", portName=\"rearRole\", type=\"outgoing\""
        ));
        assert!(text
            .contains("[Message] name=\"startConvoy\", portName=\"rearRole\", type=\"incoming\""));
        assert!(text.contains("[Timing] count=4"));
        assert!(text.contains("[CurrentState] name=\"convoy\""));
    }

    #[test]
    fn figures_render() {
        let u = Universe::new();
        assert!(fig3_chaotic_automaton(&u).contains("s_all"));
        let (m0, a0) = fig4_initial(&u);
        assert_eq!(m0.state_count(), 1);
        assert_eq!(a0.state_count(), 4);
        assert!(fig5_context(&u).contains("noConvoy::default"));
    }
}
