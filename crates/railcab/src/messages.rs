//! Message vocabulary of the DistanceCoordination pattern.
//!
//! The paper's example exchanges five messages between the rear shuttle
//! (which wants to form or break a convoy) and the front shuttle:
//!
//! * `convoyProposal` (rear → front): request to form a convoy;
//! * `convoyProposalRejected` (front → rear): refusal;
//! * `startConvoy` (front → rear): acceptance — both enter convoy mode;
//! * `breakConvoyProposal` (rear → front): request to dissolve the convoy;
//! * `breakConvoyRejected` / `breakConvoyAccepted` (front → rear): the
//!   front's decision.

use muml_automata::{SignalSet, Universe};

/// `convoyProposal` (rear → front).
pub const CONVOY_PROPOSAL: &str = "convoyProposal";
/// `convoyProposalRejected` (front → rear).
pub const CONVOY_PROPOSAL_REJECTED: &str = "convoyProposalRejected";
/// `startConvoy` (front → rear).
pub const START_CONVOY: &str = "startConvoy";
/// `breakConvoyProposal` (rear → front).
pub const BREAK_CONVOY_PROPOSAL: &str = "breakConvoyProposal";
/// `breakConvoyRejected` (front → rear).
pub const BREAK_CONVOY_REJECTED: &str = "breakConvoyRejected";
/// `breakConvoyAccepted` (front → rear).
pub const BREAK_CONVOY_ACCEPTED: &str = "breakConvoyAccepted";

/// The messages sent by the rear shuttle (outputs of the legacy component).
pub fn rear_outputs(u: &Universe) -> SignalSet {
    u.signals([CONVOY_PROPOSAL, BREAK_CONVOY_PROPOSAL])
}

/// The messages received by the rear shuttle (inputs of the legacy
/// component).
pub fn rear_inputs(u: &Universe) -> SignalSet {
    u.signals([
        CONVOY_PROPOSAL_REJECTED,
        START_CONVOY,
        BREAK_CONVOY_REJECTED,
        BREAK_CONVOY_ACCEPTED,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_are_disjoint() {
        let u = Universe::new();
        assert!(rear_outputs(&u).is_disjoint(rear_inputs(&u)));
        assert_eq!(rear_outputs(&u).len(), 2);
        assert_eq!(rear_inputs(&u).len(), 4);
    }
}
