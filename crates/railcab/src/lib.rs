//! The RailCab shuttle-convoy case study — the paper's running example.
//!
//! Autonomous shuttles reduce air-resistance energy losses by forming
//! convoys with small inter-shuttle distances. Convoy formation is
//! safety-critical: the rear shuttle may only reduce its distance (convoy
//! mode) if the front shuttle has agreed to brake with reduced force. The
//! DistanceCoordination pattern ([`distance_coordination`], Figure 1)
//! guarantees `AG ¬(rearRole.convoy ∧ frontRole.noConvoy)`.
//!
//! The rear shuttle's software is a *legacy component*
//! ([`correct_shuttle`], [`full_shuttle`], [`faulty_shuttle`]); the
//! [`scenario`] module walks through the paper's Sections 3–5: initial
//! synthesis (Figure 4), verification against the front-role context
//! (Figure 5, Listing 1.1), counterexample-based testing with deterministic
//! replay (Listings 1.2/1.3), and iterative learning until either the
//! faulty shuttle's conflict is confirmed (Figure 6, Listing 1.4) or the
//! correct shuttle's integration is proven (Figure 7, Listing 1.5).

#![warn(missing_docs)]

mod front;
mod messages;
mod pattern;
mod rear;
pub mod scenario;

pub use front::{front_context, front_role_rtsc};
pub use messages::{
    rear_inputs, rear_outputs, BREAK_CONVOY_ACCEPTED, BREAK_CONVOY_PROPOSAL, BREAK_CONVOY_REJECTED,
    CONVOY_PROPOSAL, CONVOY_PROPOSAL_REJECTED, START_CONVOY,
};
pub use pattern::{
    distance_coordination, distance_coordination_lossy, front_role_pattern_rtsc, rear_role_rtsc,
    rear_role_with_timeout,
};
pub use rear::{correct_shuttle, faulty_shuttle, full_shuttle, shuttle_variants, ShuttleVariant};
