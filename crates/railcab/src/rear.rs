//! Legacy rear-shuttle implementations.
//!
//! Three hidden-state components simulate the legacy shuttle software (see
//! DESIGN.md §5):
//!
//! * [`correct_shuttle`] — the behaviour of the paper's Figure 7: proposes
//!   a convoy, retries after rejection, enters convoy mode on
//!   `startConvoy`, and stays there quietly. It never exercises the
//!   break-convoy machinery, which lets the verifier prove correctness
//!   *without* learning that part (claim C4).
//! * [`full_shuttle`] — additionally dissolves convoys via
//!   `breakConvoyProposal`, cycling through the complete protocol.
//! * [`faulty_shuttle`] — the paper's Figure 6 conflict: after sending
//!   `convoyProposal` it enters convoy mode *immediately*, without waiting
//!   for `startConvoy`; a rejection leaves it in convoy while the front
//!   shuttle is in noConvoy — violating the pattern constraint.

use muml_automata::Universe;
use muml_legacy::{HiddenMealy, MealyBuilder};

use crate::messages::*;

fn base_builder(u: &Universe) -> MealyBuilder {
    MealyBuilder::new(u, "shuttle2")
        .input(CONVOY_PROPOSAL_REJECTED)
        .input(START_CONVOY)
        .input(BREAK_CONVOY_REJECTED)
        .input(BREAK_CONVOY_ACCEPTED)
        .output(CONVOY_PROPOSAL)
        .output(BREAK_CONVOY_PROPOSAL)
}

/// The correct, conservative rear shuttle (Figure 7): proposes, retries on
/// rejection, follows in convoy mode indefinitely.
pub fn correct_shuttle(u: &Universe) -> HiddenMealy {
    base_builder(u)
        .state("noConvoy::default")
        .initial("noConvoy::default")
        .state("noConvoy::wait")
        .state("convoy")
        .rule("noConvoy::default", [], [CONVOY_PROPOSAL], "noConvoy::wait")
        .rule(
            "noConvoy::wait",
            [CONVOY_PROPOSAL_REJECTED],
            [],
            "noConvoy::default",
        )
        .rule("noConvoy::wait", [START_CONVOY], [], "convoy")
        .rule("convoy", [], [], "convoy")
        .build()
        .expect("correct shuttle is well-formed")
}

/// A correct rear shuttle exercising the *whole* protocol: it rides in
/// convoy for a few periods, then proposes to break; on rejection it keeps
/// riding, on acceptance it returns to noConvoy and starts over.
pub fn full_shuttle(u: &Universe) -> HiddenMealy {
    base_builder(u)
        .state("noConvoy::default")
        .initial("noConvoy::default")
        .state("noConvoy::wait")
        .state("convoy")
        .state("convoy::riding")
        .state("convoy::breaking")
        .rule("noConvoy::default", [], [CONVOY_PROPOSAL], "noConvoy::wait")
        .rule(
            "noConvoy::wait",
            [CONVOY_PROPOSAL_REJECTED],
            [],
            "noConvoy::default",
        )
        .rule("noConvoy::wait", [START_CONVOY], [], "convoy")
        // one quiet period in convoy, then a break proposal
        .rule("convoy", [], [], "convoy::riding")
        .rule(
            "convoy::riding",
            [],
            [BREAK_CONVOY_PROPOSAL],
            "convoy::breaking",
        )
        .rule("convoy::breaking", [BREAK_CONVOY_REJECTED], [], "convoy")
        .rule(
            "convoy::breaking",
            [BREAK_CONVOY_ACCEPTED],
            [],
            "noConvoy::default",
        )
        .build()
        .expect("full shuttle is well-formed")
}

/// The faulty rear shuttle of Figure 6: enters `convoy` immediately after
/// *proposing*, ignoring the front shuttle's decision. Together with a
/// rejecting front this violates the DistanceCoordination constraint
/// `AG ¬(rear.convoy ∧ front.noConvoy)` — the safety-critical situation the
/// pattern exists to prevent (the front would brake with full force while
/// the rear tailgates).
pub fn faulty_shuttle(u: &Universe) -> HiddenMealy {
    base_builder(u)
        .state("noConvoy")
        .initial("noConvoy")
        .state("convoy")
        .rule("noConvoy", [], [CONVOY_PROPOSAL], "convoy")
        .rule("convoy", [CONVOY_PROPOSAL_REJECTED], [], "convoy") // ignores the rejection!
        .rule("convoy", [START_CONVOY], [], "convoy")
        .rule("convoy", [], [], "convoy")
        .build()
        .expect("faulty shuttle is well-formed")
}

/// A named constructor for one rear-shuttle implementation variant.
///
/// The constructor is a plain `fn` pointer so a variant table is `Copy`,
/// `Send`, and buildable in any thread against a thread-local
/// [`Universe`] — the shape batch-campaign generators need.
#[derive(Debug, Clone, Copy)]
pub struct ShuttleVariant {
    /// Stable variant name (`correct`, `full`, `faulty`).
    pub name: &'static str,
    /// Builds the variant against the given universe.
    pub build: fn(&Universe) -> HiddenMealy,
    /// Whether the un-tampered variant satisfies the pattern constraint
    /// (the expected verdict of a fault-free integration run).
    pub proven_when_unmodified: bool,
}

/// The rear-shuttle implementation matrix, in stable campaign order.
pub fn shuttle_variants() -> &'static [ShuttleVariant] {
    &[
        ShuttleVariant {
            name: "correct",
            build: correct_shuttle,
            proven_when_unmodified: true,
        },
        ShuttleVariant {
            name: "full",
            build: full_shuttle,
            proven_when_unmodified: true,
        },
        ShuttleVariant {
            name: "faulty",
            build: faulty_shuttle,
            proven_when_unmodified: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_automata::SignalSet;
    use muml_legacy::{LegacyComponent, StateObservable};

    #[test]
    fn variant_matrix_is_stable_and_buildable() {
        let names: Vec<&str> = shuttle_variants().iter().map(|v| v.name).collect();
        assert_eq!(names, ["correct", "full", "faulty"]);
        let u = Universe::new();
        for variant in shuttle_variants() {
            let m = (variant.build)(&u);
            assert_eq!(m.name(), "shuttle2");
            assert!(m.state_count() >= 2);
        }
    }

    #[test]
    fn correct_shuttle_negotiates() {
        let u = Universe::new();
        let mut s = correct_shuttle(&u);
        assert_eq!(s.step(SignalSet::EMPTY), u.signals([CONVOY_PROPOSAL]));
        assert_eq!(s.observable_state(), "noConvoy::wait");
        assert_eq!(
            s.step(u.signals([CONVOY_PROPOSAL_REJECTED])),
            SignalSet::EMPTY
        );
        assert_eq!(s.observable_state(), "noConvoy::default");
        s.step(SignalSet::EMPTY);
        assert_eq!(s.step(u.signals([START_CONVOY])), SignalSet::EMPTY);
        assert_eq!(s.observable_state(), "convoy");
        // stays in convoy quietly
        assert_eq!(s.step(SignalSet::EMPTY), SignalSet::EMPTY);
        assert_eq!(s.observable_state(), "convoy");
    }

    #[test]
    fn faulty_shuttle_enters_convoy_without_permission() {
        let u = Universe::new();
        let mut s = faulty_shuttle(&u);
        assert_eq!(s.step(SignalSet::EMPTY), u.signals([CONVOY_PROPOSAL]));
        // Figure 6: already in convoy, before any answer arrived.
        assert_eq!(s.observable_state(), "convoy");
        // and a rejection does not dislodge it
        s.step(u.signals([CONVOY_PROPOSAL_REJECTED]));
        assert_eq!(s.observable_state(), "convoy");
    }

    #[test]
    fn full_shuttle_breaks_convoys() {
        let u = Universe::new();
        let mut s = full_shuttle(&u);
        s.step(SignalSet::EMPTY); // propose
        s.step(u.signals([START_CONVOY])); // accepted
        assert_eq!(s.observable_state(), "convoy");
        s.step(SignalSet::EMPTY); // riding
        let out = s.step(SignalSet::EMPTY);
        assert_eq!(out, u.signals([BREAK_CONVOY_PROPOSAL]));
        assert_eq!(s.observable_state(), "convoy::breaking");
        s.step(u.signals([BREAK_CONVOY_ACCEPTED]));
        assert_eq!(s.observable_state(), "noConvoy::default");
    }

    #[test]
    fn all_shuttles_are_deterministic_components() {
        let u = Universe::new();
        for mut s in [correct_shuttle(&u), full_shuttle(&u), faulty_shuttle(&u)] {
            let a = s.step(SignalSet::EMPTY);
            s.reset();
            let b = s.step(SignalSet::EMPTY);
            assert_eq!(a, b);
        }
    }
}
