//! The front role — the known context `M_a^c` of the legacy rear shuttle
//! (Figure 5 of the paper).
//!
//! "The automaton starts in the noConvoy state. The automaton remains in
//! the state until the frontRole receives the convoyProposal message.
//! Thereafter the automaton switches to the answer state. In this state,
//! the automaton non-deterministically decides to reject the convoy
//! (convoyProposalRejected) or to start the convoy (startConvoy). In the
//! latter case the automaton switches to the convoy state and remains there
//! until a breakConvoyProposal message is received. The automaton decides
//! to reject or accept this message."
//!
//! `answer` is a substate of the `noConvoy` composite (the shuttle is not
//! yet in a convoy while negotiating), matching the paper's Listing 1.4
//! where the constraint is already violated at `shuttle1.answer`.

use muml_automata::Automaton;
use muml_rtsc::{flatten, Rtsc, RtscBuilder};

use crate::messages::*;

/// The front role as a Real-Time Statechart.
pub fn front_role_rtsc(u: &muml_automata::Universe) -> Rtsc {
    RtscBuilder::new(u, "shuttle1")
        .input(CONVOY_PROPOSAL)
        .input(BREAK_CONVOY_PROPOSAL)
        .output(CONVOY_PROPOSAL_REJECTED)
        .output(START_CONVOY)
        .output(BREAK_CONVOY_REJECTED)
        .output(BREAK_CONVOY_ACCEPTED)
        .state("noConvoy")
        .prop("noConvoy", "front.noConvoy")
        .substate("noConvoy", "default")
        .substate("noConvoy", "answer")
        .deny_stay("noConvoy::answer")
        .initial("noConvoy")
        .state("convoy")
        .prop("convoy", "front.convoy")
        .prop("convoy", "front.reducedBraking")
        .state("break")
        .deny_stay("break")
        .prop("break", "front.convoy")
        .transition(
            "noConvoy::default",
            "noConvoy::answer",
            [CONVOY_PROPOSAL],
            [],
        )
        .transition(
            "noConvoy::answer",
            "noConvoy::default",
            [],
            [CONVOY_PROPOSAL_REJECTED],
        )
        .transition("noConvoy::answer", "convoy", [], [START_CONVOY])
        .transition("convoy", "break", [BREAK_CONVOY_PROPOSAL], [])
        .transition("break", "convoy", [], [BREAK_CONVOY_REJECTED])
        .transition("break", "noConvoy", [], [BREAK_CONVOY_ACCEPTED])
        .build()
        .expect("front role statechart is well-formed")
}

/// The flattened front-role automaton — the abstract context for the
/// embedded legacy rear shuttle.
pub fn front_context(u: &muml_automata::Universe) -> Automaton {
    flatten(&front_role_rtsc(u)).expect("front role flattens")
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_automata::{Label, SignalSet};

    #[test]
    fn figure5_structure() {
        let u = muml_automata::Universe::new();
        let m = front_context(&u);
        // noConvoy::default, noConvoy::answer, convoy, break
        assert_eq!(m.state_count(), 4);
        let d = m.find_state("noConvoy::default").unwrap();
        assert_eq!(m.initial_states(), &[d]);
        // composite prop applies to both substates
        assert!(m.props_of(d).contains(u.prop("front.noConvoy")));
        let a = m.find_state("noConvoy::answer").unwrap();
        assert!(m.props_of(a).contains(u.prop("front.noConvoy")));
    }

    #[test]
    fn negotiation_paths() {
        let u = muml_automata::Universe::new();
        let m = front_context(&u);
        let d = m.find_state("noConvoy::default").unwrap();
        let a = m.find_state("noConvoy::answer").unwrap();
        let c = m.find_state("convoy").unwrap();
        let receive = Label::new(u.signals([CONVOY_PROPOSAL]), SignalSet::EMPTY);
        assert_eq!(m.successors(d, receive), vec![a]);
        // answer is urgent and nondeterministically rejects or starts
        let reject = Label::new(SignalSet::EMPTY, u.signals([CONVOY_PROPOSAL_REJECTED]));
        let start = Label::new(SignalSet::EMPTY, u.signals([START_CONVOY]));
        assert_eq!(m.successors(a, reject), vec![d]);
        assert_eq!(m.successors(a, start), vec![c]);
        assert!(!m.enables(a, Label::EMPTY)); // no idling while answering
                                              // convoy waits, then handles break proposals
        assert!(m.enables(c, Label::EMPTY));
        let brk = Label::new(u.signals([BREAK_CONVOY_PROPOSAL]), SignalSet::EMPTY);
        let b = m.find_state("break").unwrap();
        assert_eq!(m.successors(c, brk), vec![b]);
        let acc = Label::new(SignalSet::EMPTY, u.signals([BREAK_CONVOY_ACCEPTED]));
        assert_eq!(m.successors(b, acc), vec![d]); // back to noConvoy::default
    }
}
