//! Typed fleet-level failures.
//!
//! Per-job failures are [`JobOutcome`](crate::JobOutcome) rows; a
//! [`FleetError`] is a failure of the *campaign machinery itself* — the
//! pool could not run the jobs it was given. It is surfaced on
//! [`FleetReport::error`](crate::FleetReport) rather than returned as a
//! hard error so that the results of jobs that did complete are never
//! discarded.

use std::fmt;

/// A campaign-level failure of the worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// Every worker thread exited while the coordinator was still
    /// submitting jobs, so the remainder of the campaign was never run.
    /// The jobs already completed are still in
    /// [`FleetReport::results`](crate::FleetReport); the `dropped` jobs are
    /// absent from the report entirely.
    WorkersGone {
        /// Jobs submitted to the pool before the workers disappeared.
        submitted: usize,
        /// Jobs that were never handed to a worker.
        dropped: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::WorkersGone { submitted, dropped } => write!(
                f,
                "all workers exited early: {submitted} jobs submitted, {dropped} never ran"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl FleetError {
    /// The stable wire slug of this error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            FleetError::WorkersGone { .. } => "workers_gone",
        }
    }
}
