//! Campaign jobs: a resolved request plus its work closure.
//!
//! A [`JobRequest`] (see [`crate::request`]) is plain data — the
//! coordinates of one cell of a campaign matrix (scenario × pattern ×
//! component variant × fault) plus its resource budget. The executable
//! half is the [`Job`]'s *work closure*, which builds its own universe,
//! context, and component inside the worker thread (automata universes are
//! cheap and sessions must not share mutable state across jobs) and runs
//! an [`IntegrationSession`](muml_core::IntegrationSession) wired to the
//! [`JobContext`]'s cancellation token.

use muml_core::{CancelToken, CoreError, IntegrationReport, IntegrationStats, IntegrationVerdict};
use muml_obs::SharedSink;

use crate::request::JobRequest;

/// Per-job execution context handed to the work closure.
#[derive(Debug, Clone, Default)]
pub struct JobContext {
    /// The job's cancellation token — pre-armed with the request's
    /// deadline. The closure must thread it into its session
    /// ([`IntegrationSession::cancel_token`](muml_core::IntegrationSession::cancel_token)
    /// or [`IntegrationConfig::with_cancel_token`](muml_core::IntegrationConfig::with_cancel_token))
    /// for the deadline to take effect.
    pub cancel: CancelToken,
    /// Where the session's per-iteration loop events should go, when a
    /// subscriber is listening (`None` = discard). Work closures that run
    /// an `IntegrationSession` should wire this in as the session sink.
    pub loop_sink: Option<SharedSink>,
    /// The campaign's shared warm-start store, when the pool was given one
    /// (see [`FleetConfig::with_store`](crate::FleetConfig::with_store)).
    /// Work closures attach it to their session via
    /// [`IntegrationConfig::with_shared_store`](muml_core::IntegrationConfig::with_shared_store)
    /// and sign their units so repeat campaigns seed from persisted
    /// snapshots.
    pub store: Option<std::sync::Arc<muml_core::store::Store>>,
}

/// The executable work of a job. Runs on a worker thread; everything the
/// session needs (universe, context automaton, component) is built inside.
/// `Fn` (not `FnOnce`) so the pool can re-run the closure when the request
/// grants [`retries`](JobRequest::retries) after a rig-attributed failure
/// — and so the supervisor can re-queue it after a worker crash.
pub type JobWork = Box<dyn Fn(&JobContext) -> Result<IntegrationReport, CoreError> + Send>;

/// Panic payload that kills the worker thread running the job.
///
/// A work closure that calls `std::panic::panic_any(WorkerKill)` does not
/// get the ordinary panic treatment (an [`JobOutcome::Error`] on a healthy
/// worker); instead the worker itself is considered dead — the pool's
/// supervisor respawns a replacement and re-queues the in-flight job under
/// its crash budget. The chaos campaign uses this to simulate worker
/// processes being OOM-killed or segfaulting mid-job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill;

/// One schedulable unit: a request plus its work closure.
pub struct Job {
    /// The declarative description.
    pub request: JobRequest,
    /// The work to run.
    pub work: JobWork,
}

impl Job {
    /// Pairs a request with its work closure.
    pub fn new(
        request: JobRequest,
        work: impl Fn(&JobContext) -> Result<IntegrationReport, CoreError> + Send + 'static,
    ) -> Self {
        Job {
            request,
            work: Box::new(work),
        }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("request", &self.request)
            .finish_non_exhaustive()
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The integration was proven correct.
    Proven,
    /// A real integration fault was confirmed by testing.
    RealFault {
        /// The violated property (rendered).
        property: String,
    },
    /// The session exhausted its flake budget and honestly declined to
    /// issue a verdict (see
    /// [`IntegrationVerdict::Inconclusive`](muml_core::IntegrationVerdict)).
    Inconclusive {
        /// Counterexamples the session quarantined before giving up.
        quarantined: usize,
    },
    /// The job hit its wall-clock deadline and was cancelled.
    TimedOut,
    /// The session hit its iteration cap.
    IterationLimit,
    /// The job never ran: its component's circuit breaker had already
    /// tripped, so the pool short-circuited it.
    Quarantined,
    /// The job killed its worker thread more times than the pool's crash
    /// budget tolerates; the supervisor gave up re-queueing it.
    Crashed {
        /// Worker crashes attributed to this job.
        crashes: usize,
    },
    /// The session failed (or the work closure panicked).
    Error {
        /// The error (or panic) message.
        message: String,
    },
}

impl JobOutcome {
    /// Stable snake_case name (histogram key, JSON encoding).
    pub fn name(&self) -> &'static str {
        match self {
            JobOutcome::Proven => "proven",
            JobOutcome::RealFault { .. } => "real_fault",
            JobOutcome::Inconclusive { .. } => "inconclusive",
            JobOutcome::TimedOut => "timed_out",
            JobOutcome::IterationLimit => "iteration_limit",
            JobOutcome::Quarantined => "quarantined",
            JobOutcome::Crashed { .. } => "crashed",
            JobOutcome::Error { .. } => "error",
        }
    }

    /// All outcome names, in the fixed histogram order.
    pub fn names() -> [&'static str; 8] {
        [
            "proven",
            "real_fault",
            "inconclusive",
            "timed_out",
            "iteration_limit",
            "quarantined",
            "crashed",
            "error",
        ]
    }

    /// Whether the outcome counts as a rig-attributed failure for the
    /// retry loop and the per-component circuit breaker: errors and
    /// inconclusive runs might succeed on a healthier rig, whereas
    /// proofs, confirmed faults, timeouts, and iteration caps are
    /// properties of the job itself.
    pub fn is_rig_failure(&self) -> bool {
        matches!(
            self,
            JobOutcome::Error { .. } | JobOutcome::Inconclusive { .. }
        )
    }
}

/// The result of one executed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's request (report rows are sorted by `request.id`).
    pub request: JobRequest,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Verification iterations performed.
    pub iterations: usize,
    /// The session's statistics rollup (all-default for jobs that errored
    /// or timed out before producing a report).
    pub stats: IntegrationStats,
    /// The worker that executed the job (telemetry; excluded from the
    /// fingerprint).
    pub worker: usize,
    /// Wall-clock nanoseconds the job occupied its worker (telemetry;
    /// excluded from the fingerprint).
    pub nanos: u64,
    /// Executions the job took (1 = first try; 0 = short-circuited by a
    /// tripped breaker). Rig-health telemetry; excluded from the
    /// fingerprint.
    pub attempts: usize,
}

/// The circuit-breaker grouping key of a request: the component variant
/// when set (campaign cells for the same variant exercise the same legacy
/// rig), the job name otherwise.
pub(crate) fn breaker_key(request: &JobRequest) -> String {
    if request.variant.is_empty() {
        request.name.clone()
    } else {
        request.variant.clone()
    }
}

/// Classifies a session result into a [`JobOutcome`] plus its iteration
/// count and stats rollup. Shared by the in-process pool and the
/// `muml-serve` daemon so the two agree on outcome semantics.
pub fn classify(
    result: Result<IntegrationReport, CoreError>,
) -> (JobOutcome, usize, IntegrationStats) {
    match result {
        Ok(report) => {
            let iterations = report.stats.iterations;
            let outcome = match report.verdict {
                IntegrationVerdict::Proven => JobOutcome::Proven,
                IntegrationVerdict::RealFault { property, .. } => {
                    JobOutcome::RealFault { property }
                }
                IntegrationVerdict::Inconclusive { quarantined, .. } => {
                    JobOutcome::Inconclusive { quarantined }
                }
            };
            (outcome, iterations, report.stats)
        }
        Err(CoreError::Cancelled { iterations }) => (
            JobOutcome::TimedOut,
            iterations,
            IntegrationStats::default(),
        ),
        Err(CoreError::IterationLimit(n)) => {
            (JobOutcome::IterationLimit, n, IntegrationStats::default())
        }
        Err(e) => (
            JobOutcome::Error {
                message: e.to_string(),
            },
            0,
            IntegrationStats::default(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn request_builder_chains() {
        let request = JobRequest::new(3, "faulty/drop[x]")
            .with_scenario("railcab-convoy")
            .with_pattern("DistanceCoordination")
            .with_variant("faulty")
            .with_fault("drop[x]")
            .with_max_iterations(64)
            .with_deadline(Duration::from_secs(5));
        assert_eq!(request.id, 3);
        assert_eq!(request.fault.as_deref(), Some("drop[x]"));
        assert_eq!(request.max_iterations, 64);
        assert_eq!(request.deadline, Some(Duration::from_secs(5)));
    }

    #[test]
    fn classify_maps_errors() {
        let (outcome, iterations, _) = classify(Err(CoreError::Cancelled { iterations: 4 }));
        assert_eq!(outcome, JobOutcome::TimedOut);
        assert_eq!(iterations, 4);
        let (outcome, iterations, _) = classify(Err(CoreError::IterationLimit(9)));
        assert_eq!(outcome, JobOutcome::IterationLimit);
        assert_eq!(iterations, 9);
        let (outcome, _, _) = classify(Err(CoreError::InterfaceMismatch { detail: "x".into() }));
        assert!(matches!(outcome, JobOutcome::Error { .. }));
        assert_eq!(outcome.name(), "error");
    }

    #[test]
    fn classify_maps_inconclusive_verdicts() {
        let report = IntegrationReport {
            verdict: IntegrationVerdict::Inconclusive {
                quarantined: 3,
                attempts: 17,
            },
            iterations: Vec::new(),
            learned: Vec::new(),
            stats: IntegrationStats::default(),
        };
        let (outcome, _, _) = classify(Ok(report));
        assert_eq!(outcome, JobOutcome::Inconclusive { quarantined: 3 });
        assert_eq!(outcome.name(), "inconclusive");
        assert!(outcome.is_rig_failure());
    }

    #[test]
    fn classify_names_the_nondeterministic_component() {
        // A strict-mode session surfaces nondeterminism as a typed error;
        // the fleet keeps the component name in the outcome message.
        let (outcome, _, _) = classify(Err(CoreError::Nondeterministic {
            component: "wobbly-shuttle".into(),
            period: 5,
        }));
        match &outcome {
            JobOutcome::Error { message } => {
                assert!(message.contains("wobbly-shuttle"), "{message}");
                assert!(message.contains("determinism"), "{message}");
            }
            other => panic!("expected an error outcome, got {other:?}"),
        }
        assert!(outcome.is_rig_failure());
    }

    #[test]
    fn breaker_key_prefers_the_variant() {
        let request = JobRequest::new(0, "faulty/drop[x]").with_variant("faulty");
        assert_eq!(breaker_key(&request), "faulty");
        let request = JobRequest::new(1, "anonymous");
        assert_eq!(breaker_key(&request), "anonymous");
    }
}
