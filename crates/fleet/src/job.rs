//! Campaign jobs: the declarative description of one integration run.
//!
//! A [`JobSpec`] is plain data — the coordinates of one cell of a campaign
//! matrix (scenario × pattern × component variant × fault) plus its
//! resource budget. The executable half is the [`Job`]'s *work closure*,
//! which builds its own universe, context, and component inside the worker
//! thread (automata universes are cheap and sessions must not share
//! mutable state across jobs) and runs an
//! [`IntegrationSession`](muml_core::IntegrationSession) wired to the
//! [`JobContext`]'s cancellation token.

use std::time::Duration;

use muml_core::{CancelToken, CoreError, IntegrationReport, IntegrationStats, IntegrationVerdict};

/// The declarative description of one campaign job.
///
/// `id` is assigned by the campaign *generator*, not the submitter: report
/// ordering is by `id`, so shuffling the submission order (or changing the
/// worker count) cannot change the aggregated report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Stable job id (position in the generated campaign).
    pub id: usize,
    /// Display name (`variant/fault` by convention).
    pub name: String,
    /// The scenario the job exercises (e.g. `railcab-convoy`).
    pub scenario: String,
    /// The coordination pattern whose constraint is checked.
    pub pattern: String,
    /// The legacy-component variant under integration.
    pub variant: String,
    /// The seeded fault, if any (`None` = baseline run).
    pub fault: Option<String>,
    /// Iteration cap handed to the session.
    pub max_iterations: usize,
    /// Per-job wall-clock deadline (`None` = no deadline).
    pub deadline: Option<Duration>,
    /// Extra executions granted after a rig-attributed failure
    /// (`Error`/`Inconclusive` outcomes); `0` = single attempt.
    pub retries: usize,
}

impl JobSpec {
    /// A spec with the given coordinates, no fault, a 10 000-iteration cap,
    /// and no deadline.
    pub fn new(id: usize, name: impl Into<String>) -> Self {
        JobSpec {
            id,
            name: name.into(),
            scenario: String::new(),
            pattern: String::new(),
            variant: String::new(),
            fault: None,
            max_iterations: 10_000,
            deadline: None,
            retries: 0,
        }
    }

    /// Sets the scenario label.
    #[must_use]
    pub fn with_scenario(mut self, scenario: impl Into<String>) -> Self {
        self.scenario = scenario.into();
        self
    }

    /// Sets the pattern label.
    #[must_use]
    pub fn with_pattern(mut self, pattern: impl Into<String>) -> Self {
        self.pattern = pattern.into();
        self
    }

    /// Sets the component-variant label.
    #[must_use]
    pub fn with_variant(mut self, variant: impl Into<String>) -> Self {
        self.variant = variant.into();
        self
    }

    /// Sets the fault label.
    #[must_use]
    pub fn with_fault(mut self, fault: impl Into<String>) -> Self {
        self.fault = Some(fault.into());
        self
    }

    /// Sets the iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Grants extra executions after rig-attributed failures.
    #[must_use]
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }
}

/// Per-job execution context handed to the work closure.
#[derive(Debug, Clone)]
pub struct JobContext {
    /// The job's cancellation token — pre-armed with the spec's deadline.
    /// The closure must thread it into its session
    /// ([`IntegrationSession::cancel_token`](muml_core::IntegrationSession::cancel_token)
    /// or [`IntegrationConfig::with_cancel_token`](muml_core::IntegrationConfig::with_cancel_token))
    /// for the deadline to take effect.
    pub cancel: CancelToken,
}

/// The executable work of a job. Runs on a worker thread; everything the
/// session needs (universe, context automaton, component) is built inside.
/// `Fn` (not `FnOnce`) so the pool can re-run the closure when the spec
/// grants [`retries`](JobSpec::retries) after a rig-attributed failure.
pub type JobWork = Box<dyn Fn(&JobContext) -> Result<IntegrationReport, CoreError> + Send>;

/// One schedulable unit: a spec plus its work closure.
pub struct Job {
    /// The declarative description.
    pub spec: JobSpec,
    /// The work to run.
    pub work: JobWork,
}

impl Job {
    /// Pairs a spec with its work closure.
    pub fn new(
        spec: JobSpec,
        work: impl Fn(&JobContext) -> Result<IntegrationReport, CoreError> + Send + 'static,
    ) -> Self {
        Job {
            spec,
            work: Box::new(work),
        }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The integration was proven correct.
    Proven,
    /// A real integration fault was confirmed by testing.
    RealFault {
        /// The violated property (rendered).
        property: String,
    },
    /// The session exhausted its flake budget and honestly declined to
    /// issue a verdict (see
    /// [`IntegrationVerdict::Inconclusive`](muml_core::IntegrationVerdict)).
    Inconclusive {
        /// Counterexamples the session quarantined before giving up.
        quarantined: usize,
    },
    /// The job hit its wall-clock deadline and was cancelled.
    TimedOut,
    /// The session hit its iteration cap.
    IterationLimit,
    /// The job never ran: its component's circuit breaker had already
    /// tripped, so the pool short-circuited it.
    Quarantined,
    /// The session failed (or the work closure panicked).
    Error {
        /// The error (or panic) message.
        message: String,
    },
}

impl JobOutcome {
    /// Stable snake_case name (histogram key, JSON encoding).
    pub fn name(&self) -> &'static str {
        match self {
            JobOutcome::Proven => "proven",
            JobOutcome::RealFault { .. } => "real_fault",
            JobOutcome::Inconclusive { .. } => "inconclusive",
            JobOutcome::TimedOut => "timed_out",
            JobOutcome::IterationLimit => "iteration_limit",
            JobOutcome::Quarantined => "quarantined",
            JobOutcome::Error { .. } => "error",
        }
    }

    /// All outcome names, in the fixed histogram order.
    pub fn names() -> [&'static str; 7] {
        [
            "proven",
            "real_fault",
            "inconclusive",
            "timed_out",
            "iteration_limit",
            "quarantined",
            "error",
        ]
    }

    /// Whether the outcome counts as a rig-attributed failure for the
    /// retry loop and the per-component circuit breaker: errors and
    /// inconclusive runs might succeed on a healthier rig, whereas
    /// proofs, confirmed faults, timeouts, and iteration caps are
    /// properties of the job itself.
    pub fn is_rig_failure(&self) -> bool {
        matches!(
            self,
            JobOutcome::Error { .. } | JobOutcome::Inconclusive { .. }
        )
    }
}

/// The result of one executed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's spec (report rows are sorted by `spec.id`).
    pub spec: JobSpec,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Verification iterations performed.
    pub iterations: usize,
    /// The session's statistics rollup (all-default for jobs that errored
    /// or timed out before producing a report).
    pub stats: IntegrationStats,
    /// The worker that executed the job (telemetry; excluded from the
    /// fingerprint).
    pub worker: usize,
    /// Wall-clock nanoseconds the job occupied its worker (telemetry;
    /// excluded from the fingerprint).
    pub nanos: u64,
    /// Executions the job took (1 = first try; 0 = short-circuited by a
    /// tripped breaker). Rig-health telemetry; excluded from the
    /// fingerprint.
    pub attempts: usize,
}

/// The circuit-breaker grouping key of a spec: the component variant when
/// set (campaign cells for the same variant exercise the same legacy rig),
/// the job name otherwise.
pub(crate) fn breaker_key(spec: &JobSpec) -> String {
    if spec.variant.is_empty() {
        spec.name.clone()
    } else {
        spec.variant.clone()
    }
}

/// Classifies a session result into a [`JobOutcome`] plus its iteration
/// count and stats rollup.
pub(crate) fn classify(
    result: Result<IntegrationReport, CoreError>,
) -> (JobOutcome, usize, IntegrationStats) {
    match result {
        Ok(report) => {
            let iterations = report.stats.iterations;
            let outcome = match report.verdict {
                IntegrationVerdict::Proven => JobOutcome::Proven,
                IntegrationVerdict::RealFault { property, .. } => {
                    JobOutcome::RealFault { property }
                }
                IntegrationVerdict::Inconclusive { quarantined, .. } => {
                    JobOutcome::Inconclusive { quarantined }
                }
            };
            (outcome, iterations, report.stats)
        }
        Err(CoreError::Cancelled { iterations }) => (
            JobOutcome::TimedOut,
            iterations,
            IntegrationStats::default(),
        ),
        Err(CoreError::IterationLimit(n)) => {
            (JobOutcome::IterationLimit, n, IntegrationStats::default())
        }
        Err(e) => (
            JobOutcome::Error {
                message: e.to_string(),
            },
            0,
            IntegrationStats::default(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chains() {
        let spec = JobSpec::new(3, "faulty/drop[x]")
            .with_scenario("railcab-convoy")
            .with_pattern("DistanceCoordination")
            .with_variant("faulty")
            .with_fault("drop[x]")
            .with_max_iterations(64)
            .with_deadline(Duration::from_secs(5));
        assert_eq!(spec.id, 3);
        assert_eq!(spec.fault.as_deref(), Some("drop[x]"));
        assert_eq!(spec.max_iterations, 64);
        assert_eq!(spec.deadline, Some(Duration::from_secs(5)));
    }

    #[test]
    fn classify_maps_errors() {
        let (outcome, iterations, _) = classify(Err(CoreError::Cancelled { iterations: 4 }));
        assert_eq!(outcome, JobOutcome::TimedOut);
        assert_eq!(iterations, 4);
        let (outcome, iterations, _) = classify(Err(CoreError::IterationLimit(9)));
        assert_eq!(outcome, JobOutcome::IterationLimit);
        assert_eq!(iterations, 9);
        let (outcome, _, _) = classify(Err(CoreError::InterfaceMismatch { detail: "x".into() }));
        assert!(matches!(outcome, JobOutcome::Error { .. }));
        assert_eq!(outcome.name(), "error");
    }

    #[test]
    fn classify_maps_inconclusive_verdicts() {
        let report = IntegrationReport {
            verdict: IntegrationVerdict::Inconclusive {
                quarantined: 3,
                attempts: 17,
            },
            iterations: Vec::new(),
            learned: Vec::new(),
            stats: IntegrationStats::default(),
        };
        let (outcome, _, _) = classify(Ok(report));
        assert_eq!(outcome, JobOutcome::Inconclusive { quarantined: 3 });
        assert_eq!(outcome.name(), "inconclusive");
        assert!(outcome.is_rig_failure());
    }

    #[test]
    fn classify_names_the_nondeterministic_component() {
        // A strict-mode session surfaces nondeterminism as a typed error;
        // the fleet keeps the component name in the outcome message.
        let (outcome, _, _) = classify(Err(CoreError::Nondeterministic {
            component: "wobbly-shuttle".into(),
            period: 5,
        }));
        match &outcome {
            JobOutcome::Error { message } => {
                assert!(message.contains("wobbly-shuttle"), "{message}");
                assert!(message.contains("determinism"), "{message}");
            }
            other => panic!("expected an error outcome, got {other:?}"),
        }
        assert!(outcome.is_rig_failure());
    }

    #[test]
    fn breaker_key_prefers_the_variant() {
        let spec = JobSpec::new(0, "faulty/drop[x]").with_variant("faulty");
        assert_eq!(breaker_key(&spec), "faulty");
        let spec = JobSpec::new(1, "anonymous");
        assert_eq!(breaker_key(&spec), "anonymous");
    }
}
