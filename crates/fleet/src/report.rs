//! Deterministic campaign aggregation.
//!
//! Job execution is concurrent and completion order is scheduling-shaped,
//! but the aggregated [`FleetReport`] is *deterministic*: rows are sorted
//! by the request id assigned at campaign-generation time, and the
//! [`fingerprint`](FleetReport::fingerprint) projects away every
//! timing-dependent field (durations, worker assignments, the slowest-job
//! table). Two runs of the same campaign — with different worker counts or
//! submission orders — produce identical fingerprints; see DESIGN.md §11
//! for the full argument.

use muml_obs::json::Json;

use crate::error::FleetError;
use crate::job::{JobOutcome, JobResult};

/// The aggregated result of a campaign.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Worker-pool size the campaign ran with.
    pub workers: usize,
    /// Per-job results, sorted by `request.id`.
    pub results: Vec<JobResult>,
    /// Circuit breakers that tripped during the campaign, sorted by key:
    /// `(component key, consecutive failures at the trip)`. Health
    /// telemetry; excluded from the fingerprint (the quarantined job
    /// *outcomes* it caused are in `results` and fingerprinted there).
    pub breaker_trips: Vec<(String, usize)>,
    /// Wall-clock nanoseconds for the whole campaign.
    pub wall_nanos: u64,
    /// Campaign-level failure, if the pool machinery itself broke down
    /// (e.g. [`FleetError::WorkersGone`] when every worker exited before
    /// the campaign drained). Excluded from the fingerprint — like
    /// `breaker_trips`, it describes *how* the campaign ran, not what the
    /// jobs concluded; the missing job rows it implies are already visible
    /// in the fingerprinted `results`.
    pub error: Option<FleetError>,
}

impl FleetReport {
    /// Builds a report from completion-ordered results (sorts by request
    /// id).
    pub(crate) fn new(
        workers: usize,
        mut results: Vec<JobResult>,
        mut breaker_trips: Vec<(String, usize)>,
        wall_nanos: u64,
        error: Option<FleetError>,
    ) -> Self {
        results.sort_by_key(|r| r.request.id);
        breaker_trips.sort();
        FleetReport {
            workers,
            results,
            breaker_trips,
            wall_nanos,
            error,
        }
    }

    /// The verdict histogram, in the fixed [`JobOutcome::names`] order
    /// (zero counts included).
    pub fn histogram(&self) -> Vec<(&'static str, usize)> {
        JobOutcome::names()
            .into_iter()
            .map(|name| {
                let count = self
                    .results
                    .iter()
                    .filter(|r| r.outcome.name() == name)
                    .count();
                (name, count)
            })
            .collect()
    }

    /// Total verification iterations across all jobs.
    pub fn total_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).sum()
    }

    /// Total component steps driven by the test harness across all jobs.
    pub fn total_driven_steps(&self) -> usize {
        self.results.iter().map(|r| r.stats.driven_steps).sum()
    }

    /// Sum of per-job wall-clock times — the serial-execution estimate a
    /// pool's speedup is measured against.
    pub fn busy_nanos(&self) -> u64 {
        self.results.iter().map(|r| r.nanos).sum()
    }

    /// Total job executions, retries included (quarantined jobs count 0).
    pub fn total_attempts(&self) -> usize {
        self.results.iter().map(|r| r.attempts).sum()
    }

    /// Job-level retries across the campaign (attempts beyond the first).
    pub fn total_retries(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.attempts.saturating_sub(1))
            .sum()
    }

    /// Jobs short-circuited by a tripped circuit breaker.
    pub fn quarantined_jobs(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome == JobOutcome::Quarantined)
            .count()
    }

    /// Trace-cache hits (full verdict tuples served without driving the
    /// rig) across all jobs.
    pub fn total_cache_hits(&self) -> usize {
        self.results.iter().map(|r| r.stats.trace_cache_hits).sum()
    }

    /// Rig steps the trace cache saved across all jobs (the serial
    /// counterfactual minus the steps actually driven).
    pub fn total_cache_saved_steps(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.stats.trace_cache_saved_steps)
            .sum()
    }

    /// Counterexample tests skipped by the per-run dedup guard across all
    /// jobs.
    pub fn total_dedup_skipped(&self) -> usize {
        self.results.iter().map(|r| r.stats.dedup_skipped).sum()
    }

    /// The `n` slowest jobs, slowest first (ties broken by request id).
    pub fn slowest(&self, n: usize) -> Vec<&JobResult> {
        let mut rows: Vec<&JobResult> = self.results.iter().collect();
        rows.sort_by_key(|r| (std::cmp::Reverse(r.nanos), r.request.id));
        rows.truncate(n);
        rows
    }

    /// The full JSON encoding, timing fields included.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("workers".to_owned(), Json::from_usize(self.workers)),
            ("jobs".to_owned(), Json::from_usize(self.results.len())),
            ("wall_nanos".to_owned(), Json::from_u64(self.wall_nanos)),
            (
                "histogram".to_owned(),
                Json::Object(
                    self.histogram()
                        .into_iter()
                        .map(|(name, count)| (name.to_owned(), Json::from_usize(count)))
                        .collect(),
                ),
            ),
            (
                "results".to_owned(),
                Json::Array(self.results.iter().map(|r| job_json(r, true)).collect()),
            ),
            (
                "error".to_owned(),
                match &self.error {
                    Some(e) => Json::Object(vec![
                        ("kind".to_owned(), Json::Str(e.kind().to_owned())),
                        ("message".to_owned(), Json::Str(e.to_string())),
                    ]),
                    None => Json::Null,
                },
            ),
        ];
        obj.push((
            "health".to_owned(),
            Json::Object(vec![
                (
                    "attempts".to_owned(),
                    Json::from_usize(self.total_attempts()),
                ),
                ("retries".to_owned(), Json::from_usize(self.total_retries())),
                (
                    "quarantined_jobs".to_owned(),
                    Json::from_usize(self.quarantined_jobs()),
                ),
                (
                    "trace_cache_hits".to_owned(),
                    Json::from_usize(self.total_cache_hits()),
                ),
                (
                    "trace_cache_saved_steps".to_owned(),
                    Json::from_usize(self.total_cache_saved_steps()),
                ),
                (
                    "dedup_skipped".to_owned(),
                    Json::from_usize(self.total_dedup_skipped()),
                ),
                (
                    "breaker_trips".to_owned(),
                    Json::Array(
                        self.breaker_trips
                            .iter()
                            .map(|(key, failures)| {
                                Json::Object(vec![
                                    ("key".to_owned(), Json::Str(key.clone())),
                                    ("failures".to_owned(), Json::from_usize(*failures)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
        obj.push((
            "slowest".to_owned(),
            Json::Array(
                self.slowest(5)
                    .into_iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("job".to_owned(), Json::from_usize(r.request.id)),
                            ("name".to_owned(), Json::Str(r.request.name.clone())),
                            ("nanos".to_owned(), Json::from_u64(r.nanos)),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Object(obj)
    }

    /// The deterministic projection of the report, encoded as canonical
    /// JSON: job coordinates, outcomes, iteration counts, and the verdict
    /// histogram — **no** durations, worker assignments, pool size, or
    /// slowest table. Equal campaigns yield equal fingerprints regardless
    /// of worker count or submission order.
    pub fn fingerprint(&self) -> String {
        Json::Object(vec![
            ("jobs".to_owned(), Json::from_usize(self.results.len())),
            (
                "histogram".to_owned(),
                Json::Object(
                    self.histogram()
                        .into_iter()
                        .map(|(name, count)| (name.to_owned(), Json::from_usize(count)))
                        .collect(),
                ),
            ),
            (
                "results".to_owned(),
                Json::Array(self.results.iter().map(|r| job_json(r, false)).collect()),
            ),
        ])
        .encode()
    }

    /// A human-readable summary: histogram, totals, and the slowest jobs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ms = |nanos: u64| format!("{:.2}ms", nanos as f64 / 1.0e6);
        out.push_str(&format!(
            "fleet: {} jobs on {} workers in {} (busy {})\n",
            self.results.len(),
            self.workers,
            ms(self.wall_nanos),
            ms(self.busy_nanos()),
        ));
        out.push_str("  verdicts:");
        for (name, count) in self.histogram() {
            if count > 0 {
                out.push_str(&format!(" {name}={count}"));
            }
        }
        out.push('\n');
        out.push_str(&format!(
            "  {} iterations, {} driven steps\n",
            self.total_iterations(),
            self.total_driven_steps()
        ));
        if self.total_cache_hits() > 0 || self.total_dedup_skipped() > 0 {
            out.push_str(&format!(
                "  trace cache: {} hits, {} rig steps saved, {} tests deduped\n",
                self.total_cache_hits(),
                self.total_cache_saved_steps(),
                self.total_dedup_skipped(),
            ));
        }
        if let Some(e) = &self.error {
            out.push_str(&format!("  fleet error: {e}\n"));
        }
        if self.total_retries() > 0 || !self.breaker_trips.is_empty() {
            out.push_str(&format!(
                "  rig health: {} attempts ({} retries), {} jobs quarantined\n",
                self.total_attempts(),
                self.total_retries(),
                self.quarantined_jobs(),
            ));
            for (key, failures) in &self.breaker_trips {
                out.push_str(&format!(
                    "  breaker: `{key}` tripped after {failures} consecutive failures\n"
                ));
            }
        }
        for r in self.slowest(5) {
            out.push_str(&format!(
                "  slow: job {} `{}` {} ({})\n",
                r.request.id,
                r.request.name,
                ms(r.nanos),
                r.outcome.name()
            ));
        }
        out
    }
}

/// One result row as JSON. `timing` controls whether the
/// scheduling-dependent fields (worker, nanos) are included — the
/// fingerprint excludes them.
fn job_json(r: &JobResult, timing: bool) -> Json {
    let mut obj = vec![
        ("job".to_owned(), Json::from_usize(r.request.id)),
        ("name".to_owned(), Json::Str(r.request.name.clone())),
        ("scenario".to_owned(), Json::Str(r.request.scenario.clone())),
        ("pattern".to_owned(), Json::Str(r.request.pattern.clone())),
        ("variant".to_owned(), Json::Str(r.request.variant.clone())),
        (
            "fault".to_owned(),
            match &r.request.fault {
                Some(f) => Json::Str(f.clone()),
                None => Json::Null,
            },
        ),
        ("outcome".to_owned(), Json::Str(r.outcome.name().to_owned())),
        (
            "property".to_owned(),
            match &r.outcome {
                JobOutcome::RealFault { property } => Json::Str(property.clone()),
                _ => Json::Null,
            },
        ),
        (
            "quarantined".to_owned(),
            match &r.outcome {
                JobOutcome::Inconclusive { quarantined } => Json::from_usize(*quarantined),
                _ => Json::Null,
            },
        ),
        ("iterations".to_owned(), Json::from_usize(r.iterations)),
        (
            "driven_steps".to_owned(),
            Json::from_usize(r.stats.driven_steps),
        ),
    ];
    if timing {
        obj.push(("worker".to_owned(), Json::from_usize(r.worker)));
        obj.push(("nanos".to_owned(), Json::from_u64(r.nanos)));
        obj.push(("attempts".to_owned(), Json::from_usize(r.attempts)));
    }
    Json::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobRequest;
    use muml_core::IntegrationStats;

    fn result(id: usize, outcome: JobOutcome, worker: usize, nanos: u64) -> JobResult {
        JobResult {
            request: JobRequest::new(id, format!("job-{id}")),
            outcome,
            iterations: id + 1,
            stats: IntegrationStats::default(),
            worker,
            nanos,
            attempts: 1,
        }
    }

    #[test]
    fn report_sorts_by_id_and_fingerprints_ignore_timing() {
        let a = FleetReport::new(
            4,
            vec![
                result(2, JobOutcome::Proven, 3, 500),
                result(0, JobOutcome::TimedOut, 1, 900),
                result(1, JobOutcome::Proven, 0, 100),
            ],
            Vec::new(),
            10_000,
            None,
        );
        let b = FleetReport::new(
            1,
            vec![
                result(0, JobOutcome::TimedOut, 0, 111),
                result(1, JobOutcome::Proven, 0, 222),
                result(2, JobOutcome::Proven, 0, 333),
            ],
            Vec::new(),
            99_999,
            None,
        );
        assert_eq!(
            a.results.iter().map(|r| r.request.id).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.to_json(), b.to_json()); // timing differs
        assert_eq!(a.histogram()[0], ("proven", 2));
        assert_eq!(a.histogram()[3], ("timed_out", 1));
    }

    #[test]
    fn slowest_ranks_by_duration() {
        let report = FleetReport::new(
            2,
            vec![
                result(0, JobOutcome::Proven, 0, 50),
                result(1, JobOutcome::Proven, 1, 500),
                result(2, JobOutcome::Proven, 0, 5),
            ],
            Vec::new(),
            1_000,
            None,
        );
        let slow: Vec<usize> = report.slowest(2).iter().map(|r| r.request.id).collect();
        assert_eq!(slow, [1, 0]);
        assert_eq!(report.busy_nanos(), 555);
        assert!(report.render().contains("slow: job 1"));
    }

    #[test]
    fn health_stats_surface_retries_and_breaker_trips() {
        let mut flaky = result(
            0,
            JobOutcome::Error {
                message: "x".into(),
            },
            0,
            10,
        );
        flaky.attempts = 3;
        let report = FleetReport::new(
            1,
            vec![
                flaky,
                result(1, JobOutcome::Quarantined, 0, 0),
                result(2, JobOutcome::Proven, 0, 20),
            ],
            vec![("wobbly".to_owned(), 2)],
            1_000,
            None,
        );
        assert_eq!(report.total_retries(), 2);
        assert_eq!(report.quarantined_jobs(), 1);
        let text = report.render();
        assert!(
            text.contains("rig health: 5 attempts (2 retries)"),
            "{text}"
        );
        assert!(text.contains("breaker: `wobbly` tripped after 2"), "{text}");
        let json = report.to_json().encode();
        assert!(json.contains("\"breaker_trips\""), "{json}");
        // Fingerprint ignores attempts and breaker trips but keeps the
        // quarantined outcome itself.
        let fp = report.fingerprint();
        assert!(fp.contains("\"quarantined\""), "{fp}");
        assert!(!fp.contains("breaker_trips"), "{fp}");
        assert!(!fp.contains("attempts"), "{fp}");
    }

    #[test]
    fn trace_cache_aggregates_surface_in_health_and_render() {
        let mut warm = result(0, JobOutcome::Proven, 0, 10);
        warm.stats.trace_cache_hits = 4;
        warm.stats.trace_cache_saved_steps = 36;
        warm.stats.dedup_skipped = 2;
        let report = FleetReport::new(
            1,
            vec![warm, result(1, JobOutcome::Proven, 0, 20)],
            Vec::new(),
            1_000,
            None,
        );
        assert_eq!(report.total_cache_hits(), 4);
        assert_eq!(report.total_cache_saved_steps(), 36);
        assert_eq!(report.total_dedup_skipped(), 2);
        let text = report.render();
        assert!(
            text.contains("trace cache: 4 hits, 36 rig steps saved, 2 tests deduped"),
            "{text}"
        );
        let json = report.to_json().encode();
        assert!(json.contains("\"trace_cache_saved_steps\":36"), "{json}");
        // Cold campaigns stay silent.
        let cold = FleetReport::new(
            1,
            vec![result(0, JobOutcome::Proven, 0, 10)],
            Vec::new(),
            1_000,
            None,
        );
        assert!(!cold.render().contains("trace cache"), "{}", cold.render());
    }

    #[test]
    fn workers_gone_error_surfaces_outside_the_fingerprint() {
        let failed = FleetReport::new(
            2,
            vec![result(0, JobOutcome::Proven, 0, 10)],
            Vec::new(),
            1_000,
            Some(FleetError::WorkersGone {
                submitted: 1,
                dropped: 4,
            }),
        );
        let clean = FleetReport::new(
            2,
            vec![result(0, JobOutcome::Proven, 0, 10)],
            Vec::new(),
            1_000,
            None,
        );
        let text = failed.render();
        assert!(
            text.contains("fleet error: all workers exited early: 1 jobs submitted, 4 never ran"),
            "{text}"
        );
        assert!(
            !clean.render().contains("fleet error"),
            "{}",
            clean.render()
        );
        let json = failed.to_json().encode();
        assert!(json.contains("\"workers_gone\""), "{json}");
        assert!(clean.to_json().encode().contains("\"error\":null"));
        // The fingerprint describes what the jobs concluded, not how the
        // campaign machinery fared.
        assert_eq!(failed.fingerprint(), clean.fingerprint());
    }
}
