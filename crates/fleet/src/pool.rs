//! The worker pool: bounded submission, shared-receiver dispatch,
//! cooperative deadlines, and single-threaded event forwarding.
//!
//! Topology (see DESIGN.md §11 for the queue-discipline discussion):
//!
//! ```text
//!   coordinator ──sync_channel(queue_bound)──▶ workers (shared receiver)
//!        ▲                                        │
//!        └──────────unbounded channel─────────────┘  (Started/Done/stats)
//! ```
//!
//! * The job channel is *bounded*: a full queue blocks submission, so a
//!   campaign generator producing jobs faster than the pool drains them is
//!   back-pressured instead of buffering the whole campaign.
//! * Workers share one receiver behind a mutex and pull as they free up —
//!   jobs are never pre-assigned, so a slow job on one worker cannot
//!   strand queued jobs behind it.
//! * The back-channel is unbounded, so workers never block on the
//!   coordinator and the bounded queue cannot deadlock.
//! * The coordinator is the only thread touching the [`FleetSink`]: worker
//!   messages are forwarded in arrival order, which keeps sinks free of
//!   locking requirements.
//!
//! Each job's work closure runs under `catch_unwind`; a panicking job is
//! reported as [`JobOutcome::Error`](crate::JobOutcome) and its worker
//! keeps serving the queue.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use muml_core::CancelToken;
use muml_obs::{FleetEvent, FleetSink, SharedSink};

use crate::error::FleetError;
use crate::job::{breaker_key, classify, Job, JobContext, JobOutcome, JobResult};
use crate::report::FleetReport;

/// Worker-pool configuration.
///
/// The struct is `#[non_exhaustive]`; construct it with
/// [`FleetConfig::default`] (one worker, queue bound 8, no retries or
/// breaker) and refine via the chainable setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Worker-pool size (clamped to at least 1).
    pub workers: usize,
    /// Capacity of the bounded job queue (clamped to at least 1);
    /// submission blocks while the queue is full.
    pub queue_bound: usize,
    /// Pause between retry attempts of the same job (rig cool-down).
    pub retry_backoff: Duration,
    /// Per-component circuit breaker: `Some(k)` trips a component's
    /// breaker after `k` *consecutive* rig-attributed job failures
    /// (`error`/`inconclusive`) and short-circuits its remaining jobs to
    /// [`JobOutcome::Quarantined`]. To keep the fingerprint deterministic,
    /// enabling the breaker serializes each component's jobs (id order) on
    /// one worker; different components still run concurrently. `None`
    /// (default) keeps the fully parallel dispatch with no breaker.
    pub breaker_threshold: Option<usize>,
    /// Per-iteration loop-event sink handed to every job via
    /// [`JobContext::loop_sink`](crate::JobContext) (`None` = discard).
    /// A `muml-serve` daemon plugs a subscriber fan-out in here; the
    /// in-process CLI normally leaves it unset.
    pub loop_sink: Option<SharedSink>,
    /// Warm-start store shared by every worker via
    /// [`JobContext::store`](crate::JobContext) (`None` = stateless jobs).
    /// The store serializes its own file access, so one instance safely
    /// backs the whole pool — and a co-resident `muml-serve` daemon.
    pub store: Option<Arc<muml_core::store::Store>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 1,
            queue_bound: 8,
            retry_backoff: Duration::ZERO,
            breaker_threshold: None,
            loop_sink: None,
            store: None,
        }
    }
}

impl FleetConfig {
    /// Sets the worker-pool size.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the job-queue capacity.
    #[must_use]
    pub fn with_queue_bound(mut self, queue_bound: usize) -> Self {
        self.queue_bound = queue_bound;
        self
    }

    /// Sets the pause between retry attempts of the same job.
    #[must_use]
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Enables the per-component circuit breaker (see
    /// [`breaker_threshold`](FleetConfig::breaker_threshold)).
    #[must_use]
    pub fn with_breaker_threshold(mut self, threshold: usize) -> Self {
        self.breaker_threshold = Some(threshold.max(1));
        self
    }

    /// Routes per-iteration loop events from every job to `sink` (see
    /// [`FleetConfig::loop_sink`]).
    #[must_use]
    pub fn with_loop_sink(mut self, sink: SharedSink) -> Self {
        self.loop_sink = Some(sink);
        self
    }

    /// Opens (or creates) the warm-start store rooted at `path` and shares
    /// it with every worker (see [`FleetConfig::store`]).
    #[must_use]
    pub fn with_store(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.store = Some(Arc::new(muml_core::store::Store::open(path)));
        self
    }

    /// Shares an already-open store with every worker.
    #[must_use]
    pub fn with_shared_store(mut self, store: Arc<muml_core::store::Store>) -> Self {
        self.store = Some(store);
        self
    }
}

/// Worker → coordinator messages.
enum Message {
    Started {
        job: usize,
        name: String,
        worker: usize,
    },
    Retried {
        job: usize,
        worker: usize,
        attempt: usize,
    },
    BreakerTripped {
        key: String,
        failures: usize,
    },
    Quarantined {
        job: usize,
        key: String,
    },
    Done(Box<JobResult>),
    WorkerIdle {
        worker: usize,
        jobs: usize,
        busy_nanos: u64,
    },
}

/// Runs `jobs` across the configured worker pool and aggregates the
/// deterministic [`FleetReport`]. Fleet-level telemetry is forwarded to
/// `sink` from the coordinator thread.
pub fn run_fleet(jobs: Vec<Job>, config: &FleetConfig, sink: &mut dyn FleetSink) -> FleetReport {
    let workers = config.workers.max(1);
    let queue_bound = config.queue_bound.max(1);
    let total = jobs.len();
    let start = Instant::now();
    sink.emit(&FleetEvent::FleetStarted {
        jobs: total,
        workers,
    });

    // With the breaker enabled, each component's jobs form one batch that
    // a single worker runs in id order — the only dispatch under which
    // "which jobs saw a tripped breaker" is independent of scheduling, so
    // the fingerprint stays deterministic. Without it, every job is its
    // own batch and the dispatch is exactly the fully parallel one.
    let batches: Vec<Vec<Job>> = match config.breaker_threshold {
        None => jobs.into_iter().map(|j| vec![j]).collect(),
        Some(_) => {
            let mut keyed: Vec<(String, Vec<Job>)> = Vec::new();
            for job in jobs {
                let key = breaker_key(&job.request);
                match keyed.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, group)) => group.push(job),
                    None => keyed.push((key, vec![job])),
                }
            }
            keyed.into_iter().map(|(_, group)| group).collect()
        }
    };

    let (job_tx, job_rx) = mpsc::sync_channel::<Vec<Job>>(queue_bound);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (msg_tx, msg_rx) = mpsc::channel::<Message>();

    let mut results: Vec<JobResult> = Vec::with_capacity(total);
    let mut breaker_trips: Vec<(String, usize)> = Vec::new();
    let mut error: Option<FleetError> = None;
    let mut submitted = 0usize;
    let mut started = 0usize;
    let mut finished = 0usize;

    thread::scope(|scope| {
        for worker in 0..workers {
            let rx = Arc::clone(&job_rx);
            let tx = msg_tx.clone();
            let backoff = config.retry_backoff;
            let threshold = config.breaker_threshold;
            let loop_sink = config.loop_sink.clone();
            let store = config.store.clone();
            scope.spawn(move || worker_loop(worker, rx, tx, backoff, threshold, loop_sink, store));
        }
        // The workers hold the only remaining senders; dropping ours makes
        // the drain loop below terminate when the last worker exits.
        drop(msg_tx);

        let mut batch_iter = batches.into_iter();
        loop {
            let Some(batch) = batch_iter.next() else {
                break;
            };
            let size = batch.len();
            // Blocks while the queue is full — the backpressure point. A
            // send error means every worker has already exited (the channel
            // has no receivers left): record the typed failure and keep the
            // results of the jobs that did run instead of panicking the
            // coordinator on top of whatever killed the workers.
            if let Err(returned) = submit(&job_tx, batch) {
                let dropped = returned.len() + batch_iter.by_ref().map(|b| b.len()).sum::<usize>();
                error = Some(FleetError::WorkersGone { submitted, dropped });
                break;
            }
            submitted += size;
            for msg in msg_rx.try_iter() {
                handle(
                    msg,
                    sink,
                    &mut results,
                    &mut breaker_trips,
                    &mut started,
                    &mut finished,
                );
            }
            sink.emit(&FleetEvent::QueueDepth {
                pending: submitted.saturating_sub(started),
                finished,
            });
        }
        drop(job_tx); // close the queue: idle workers exit

        for msg in msg_rx.iter() {
            let wall_nanos = start.elapsed().as_nanos() as u64;
            match msg {
                Message::WorkerIdle {
                    worker,
                    jobs,
                    busy_nanos,
                } => sink.emit(&FleetEvent::WorkerUtilization {
                    worker,
                    jobs,
                    busy_nanos,
                    wall_nanos,
                }),
                other => handle(
                    other,
                    sink,
                    &mut results,
                    &mut breaker_trips,
                    &mut started,
                    &mut finished,
                ),
            }
        }
    });

    sink.emit(&FleetEvent::FleetFinished {
        jobs: finished,
        nanos: start.elapsed().as_nanos() as u64,
    });
    FleetReport::new(
        workers,
        results,
        breaker_trips,
        start.elapsed().as_nanos() as u64,
        error,
    )
}

/// Hands one batch to the pool, returning the batch when every worker has
/// already exited (the job channel has no receivers left). Split out of
/// [`run_fleet`] so the workers-gone path is unit-testable without having
/// to kill real worker threads.
fn submit(
    job_tx: &mpsc::SyncSender<Vec<Job>>,
    batch: Vec<Job>,
) -> std::result::Result<(), Vec<Job>> {
    job_tx.send(batch).map_err(|mpsc::SendError(b)| b)
}

fn worker_loop(
    worker: usize,
    rx: Arc<Mutex<mpsc::Receiver<Vec<Job>>>>,
    tx: mpsc::Sender<Message>,
    retry_backoff: Duration,
    breaker_threshold: Option<usize>,
    loop_sink: Option<SharedSink>,
    store: Option<Arc<muml_core::store::Store>>,
) {
    let mut jobs = 0usize;
    let mut busy_nanos = 0u64;
    loop {
        // Hold the lock across `recv`: exactly one worker waits on the
        // channel while the rest queue on the mutex; each batch wakes one.
        let next = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv()
        };
        let Ok(batch) = next else { break };
        // Consecutive rig-attributed failures within the batch (one
        // component when the breaker groups batches by key).
        let mut failures = 0usize;
        let mut tripped = false;
        for job in batch {
            let Job { request, work } = job;
            if tripped {
                let _ = tx.send(Message::Quarantined {
                    job: request.id,
                    key: breaker_key(&request),
                });
                let _ = tx.send(Message::Done(Box::new(JobResult {
                    request,
                    outcome: JobOutcome::Quarantined,
                    iterations: 0,
                    stats: muml_core::IntegrationStats::default(),
                    worker,
                    nanos: 0,
                    attempts: 0,
                })));
                continue;
            }
            let _ = tx.send(Message::Started {
                job: request.id,
                name: request.name.clone(),
                worker,
            });
            let job_start = Instant::now();
            let mut attempts = 0usize;
            let (outcome, iterations, stats) = loop {
                attempts += 1;
                // The deadline re-arms per attempt: a retry is a fresh run.
                let cancel = match request.deadline {
                    Some(deadline) => CancelToken::with_timeout(deadline),
                    None => CancelToken::new(),
                };
                let context = JobContext {
                    cancel,
                    loop_sink: loop_sink.clone(),
                    store: store.clone(),
                };
                let run = catch_unwind(AssertUnwindSafe(|| work(&context)));
                let classified = match run {
                    Ok(result) => classify(result),
                    Err(panic) => {
                        let message = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "job panicked".to_owned());
                        (
                            JobOutcome::Error { message },
                            0,
                            muml_core::IntegrationStats::default(),
                        )
                    }
                };
                if classified.0.is_rig_failure() && attempts <= request.retries {
                    let _ = tx.send(Message::Retried {
                        job: request.id,
                        worker,
                        attempt: attempts,
                    });
                    if !retry_backoff.is_zero() {
                        thread::sleep(retry_backoff);
                    }
                    continue;
                }
                break classified;
            };
            let nanos = job_start.elapsed().as_nanos() as u64;
            if let Some(threshold) = breaker_threshold {
                if outcome.is_rig_failure() {
                    failures += 1;
                    if failures >= threshold {
                        tripped = true;
                        let _ = tx.send(Message::BreakerTripped {
                            key: breaker_key(&request),
                            failures,
                        });
                    }
                } else {
                    failures = 0;
                }
            }
            jobs += 1;
            busy_nanos += nanos;
            let _ = tx.send(Message::Done(Box::new(JobResult {
                request,
                outcome,
                iterations,
                stats,
                worker,
                nanos,
                attempts,
            })));
        }
    }
    let _ = tx.send(Message::WorkerIdle {
        worker,
        jobs,
        busy_nanos,
    });
}

fn handle(
    msg: Message,
    sink: &mut dyn FleetSink,
    results: &mut Vec<JobResult>,
    breaker_trips: &mut Vec<(String, usize)>,
    started: &mut usize,
    finished: &mut usize,
) {
    match msg {
        Message::Started { job, name, worker } => {
            *started += 1;
            sink.emit(&FleetEvent::JobStarted { job, name, worker });
        }
        Message::Retried {
            job,
            worker,
            attempt,
        } => {
            sink.emit(&FleetEvent::JobRetried {
                job,
                worker,
                attempt,
            });
        }
        Message::BreakerTripped { key, failures } => {
            sink.emit(&FleetEvent::BreakerTripped {
                key: key.clone(),
                failures,
            });
            breaker_trips.push((key, failures));
        }
        Message::Quarantined { job, key } => {
            // Counts as dispatched for the queue-depth gauge even though
            // no JobStarted is emitted: the job will never start.
            *started += 1;
            sink.emit(&FleetEvent::JobQuarantined { job, key });
        }
        Message::Done(result) => {
            let result = *result;
            *finished += 1;
            if result.outcome == JobOutcome::TimedOut {
                sink.emit(&FleetEvent::JobTimedOut {
                    job: result.request.id,
                    worker: result.worker,
                    nanos: result.nanos,
                });
            }
            sink.emit(&FleetEvent::JobFinished {
                job: result.request.id,
                worker: result.worker,
                outcome: result.outcome.name().to_owned(),
                iterations: result.iterations,
                nanos: result.nanos,
            });
            results.push(result);
        }
        Message::WorkerIdle { .. } => unreachable!("drained only after queue close"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobRequest;
    use muml_core::{IntegrationReport, IntegrationStats, IntegrationVerdict};

    fn job(id: usize) -> Job {
        Job::new(JobRequest::new(id, format!("job-{id}")), |_ctx| {
            Ok(IntegrationReport {
                verdict: IntegrationVerdict::Proven,
                iterations: Vec::new(),
                learned: Vec::new(),
                stats: IntegrationStats::default(),
            })
        })
    }

    #[test]
    fn submit_returns_the_batch_when_all_workers_exited() {
        let (tx, rx) = mpsc::sync_channel::<Vec<Job>>(1);
        drop(rx); // every worker gone: the receiver side no longer exists
        let returned = submit(&tx, vec![job(0), job(1)]).unwrap_err();
        assert_eq!(returned.len(), 2);
        assert_eq!(returned[0].request.id, 0);
        assert_eq!(returned[1].request.id, 1);
    }

    #[test]
    fn submit_delivers_while_a_worker_listens() {
        let (tx, rx) = mpsc::sync_channel::<Vec<Job>>(1);
        submit(&tx, vec![job(7)]).unwrap();
        assert_eq!(rx.recv().unwrap()[0].request.id, 7);
    }

    #[test]
    fn workers_gone_accounting_matches_the_pool_loop() {
        // Replicates the run_fleet submission loop against a dead pool: the
        // failing batch plus every unsubmitted batch counts as dropped.
        let batches: Vec<Vec<Job>> = vec![vec![job(0)], vec![job(1), job(2)], vec![job(3)]];
        let (tx, rx) = mpsc::sync_channel::<Vec<Job>>(8);
        drop(rx);
        let mut submitted = 0usize;
        let mut error = None;
        let mut batch_iter = batches.into_iter();
        loop {
            let Some(batch) = batch_iter.next() else {
                break;
            };
            let size = batch.len();
            if let Err(returned) = submit(&tx, batch) {
                let dropped = returned.len() + batch_iter.by_ref().map(|b| b.len()).sum::<usize>();
                error = Some(FleetError::WorkersGone { submitted, dropped });
                break;
            }
            submitted += size;
        }
        assert_eq!(
            error,
            Some(FleetError::WorkersGone {
                submitted: 0,
                dropped: 4
            })
        );
    }
}
