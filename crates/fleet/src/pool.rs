//! The worker pool: bounded submission, shared-receiver dispatch,
//! cooperative deadlines, worker supervision, and single-threaded event
//! forwarding.
//!
//! Topology (see DESIGN.md §11 for the queue-discipline discussion):
//!
//! ```text
//!   coordinator ──sync_channel(queue_bound)──▶ workers (shared receiver)
//!        ▲                                        │
//!        └──────────unbounded channel─────────────┘  (Started/Done/stats)
//! ```
//!
//! * The job channel is *bounded*: a full queue blocks submission, so a
//!   campaign generator producing jobs faster than the pool drains them is
//!   back-pressured instead of buffering the whole campaign.
//! * Workers share one receiver behind a mutex and pull as they free up —
//!   jobs are never pre-assigned, so a slow job on one worker cannot
//!   strand queued jobs behind it.
//! * The back-channel is unbounded, so workers never block on the
//!   coordinator and the bounded queue cannot deadlock.
//! * The coordinator is the only thread touching the [`FleetSink`]: worker
//!   messages are forwarded in arrival order, which keeps sinks free of
//!   locking requirements.
//!
//! Each job's work closure runs under `catch_unwind`; a panicking job is
//! reported as [`JobOutcome::Error`](crate::JobOutcome) and its worker
//! keeps serving the queue. The exception is the
//! [`WorkerKill`](crate::WorkerKill) panic payload, which kills the worker
//! itself: the coordinator doubles as a supervisor, respawning a
//! replacement and re-queueing the in-flight job (plus the untouched rest
//! of its batch) until the job exhausts its per-job crash budget, at which
//! point it is reported as a typed
//! [`JobOutcome::Crashed`](crate::JobOutcome) — the pool never hangs and
//! never silently shrinks.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use muml_core::CancelToken;
use muml_obs::{FleetEvent, FleetSink, SharedSink};

use crate::error::FleetError;
use crate::job::{breaker_key, classify, Job, JobContext, JobOutcome, JobResult, WorkerKill};
use crate::report::FleetReport;

/// Worker-pool configuration.
///
/// The struct is `#[non_exhaustive]`; construct it with
/// [`FleetConfig::default`] (one worker, queue bound 8, no retries or
/// breaker, crash budget 2) and refine via the chainable setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Worker-pool size (clamped to at least 1).
    pub workers: usize,
    /// Capacity of the bounded job queue (clamped to at least 1);
    /// submission blocks while the queue is full.
    pub queue_bound: usize,
    /// Pause between retry attempts of the same job (rig cool-down).
    pub retry_backoff: Duration,
    /// Per-component circuit breaker: `Some(k)` trips a component's
    /// breaker after `k` *consecutive* rig-attributed job failures
    /// (`error`/`inconclusive`) and short-circuits its remaining jobs to
    /// [`JobOutcome::Quarantined`]. To keep the fingerprint deterministic,
    /// enabling the breaker serializes each component's jobs (id order) on
    /// one worker; different components still run concurrently. `None`
    /// (default) keeps the fully parallel dispatch with no breaker.
    pub breaker_threshold: Option<usize>,
    /// How many times one job may kill its worker and still be re-queued.
    /// Crash number `crash_budget + 1` stops re-queueing and reports the
    /// job as [`JobOutcome::Crashed`]. The *worker* is always respawned —
    /// the pool never shrinks.
    pub crash_budget: usize,
    /// Per-iteration loop-event sink handed to every job via
    /// [`JobContext::loop_sink`](crate::JobContext) (`None` = discard).
    /// A `muml-serve` daemon plugs a subscriber fan-out in here; the
    /// in-process CLI normally leaves it unset.
    pub loop_sink: Option<SharedSink>,
    /// Warm-start store shared by every worker via
    /// [`JobContext::store`](crate::JobContext) (`None` = stateless jobs).
    /// The store serializes its own file access, so one instance safely
    /// backs the whole pool — and a co-resident `muml-serve` daemon.
    pub store: Option<Arc<muml_core::store::Store>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 1,
            queue_bound: 8,
            retry_backoff: Duration::ZERO,
            breaker_threshold: None,
            crash_budget: 2,
            loop_sink: None,
            store: None,
        }
    }
}

impl FleetConfig {
    /// Sets the worker-pool size.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the job-queue capacity.
    #[must_use]
    pub fn with_queue_bound(mut self, queue_bound: usize) -> Self {
        self.queue_bound = queue_bound;
        self
    }

    /// Sets the pause between retry attempts of the same job.
    #[must_use]
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Enables the per-component circuit breaker (see
    /// [`breaker_threshold`](FleetConfig::breaker_threshold)).
    #[must_use]
    pub fn with_breaker_threshold(mut self, threshold: usize) -> Self {
        self.breaker_threshold = Some(threshold.max(1));
        self
    }

    /// Sets the per-job crash budget (see
    /// [`crash_budget`](FleetConfig::crash_budget)).
    #[must_use]
    pub fn with_crash_budget(mut self, budget: usize) -> Self {
        self.crash_budget = budget;
        self
    }

    /// Routes per-iteration loop events from every job to `sink` (see
    /// [`FleetConfig::loop_sink`]).
    #[must_use]
    pub fn with_loop_sink(mut self, sink: SharedSink) -> Self {
        self.loop_sink = Some(sink);
        self
    }

    /// Opens (or creates) the warm-start store rooted at `path` and shares
    /// it with every worker (see [`FleetConfig::store`]).
    #[must_use]
    pub fn with_store(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.store = Some(Arc::new(muml_core::store::Store::open(path)));
        self
    }

    /// Shares an already-open store with every worker.
    #[must_use]
    pub fn with_shared_store(mut self, store: Arc<muml_core::store::Store>) -> Self {
        self.store = Some(store);
        self
    }
}

/// Worker → coordinator messages.
enum Message {
    Started {
        job: usize,
        name: String,
        worker: usize,
    },
    Retried {
        job: usize,
        worker: usize,
        attempt: usize,
    },
    BreakerTripped {
        key: String,
        failures: usize,
    },
    Quarantined {
        job: usize,
        key: String,
    },
    Done(Box<JobResult>),
    /// The worker thread died under a [`WorkerKill`] panic. Carries the
    /// in-flight job and the untouched remainder of its batch back to the
    /// supervisor; the sender exits without a `WorkerIdle` report.
    WorkerCrashed {
        worker: usize,
        job: Box<Job>,
        rest: Vec<Job>,
    },
    WorkerIdle {
        worker: usize,
        jobs: usize,
        busy_nanos: u64,
    },
}

/// Coordinator-side aggregation state, threaded through message handling.
#[derive(Default)]
struct Progress {
    results: Vec<JobResult>,
    breaker_trips: Vec<(String, usize)>,
    started: usize,
    finished: usize,
}

/// Runs `jobs` across the configured worker pool and aggregates the
/// deterministic [`FleetReport`]. Fleet-level telemetry is forwarded to
/// `sink` from the coordinator thread.
pub fn run_fleet(jobs: Vec<Job>, config: &FleetConfig, sink: &mut dyn FleetSink) -> FleetReport {
    let workers = config.workers.max(1);
    let queue_bound = config.queue_bound.max(1);
    let total = jobs.len();
    let start = Instant::now();
    sink.emit(&FleetEvent::FleetStarted {
        jobs: total,
        workers,
    });

    // With the breaker enabled, each component's jobs form one batch that
    // a single worker runs in id order — the only dispatch under which
    // "which jobs saw a tripped breaker" is independent of scheduling, so
    // the fingerprint stays deterministic. Without it, every job is its
    // own batch and the dispatch is exactly the fully parallel one.
    let batches: Vec<Vec<Job>> = match config.breaker_threshold {
        None => jobs.into_iter().map(|j| vec![j]).collect(),
        Some(_) => {
            let mut keyed: Vec<(String, Vec<Job>)> = Vec::new();
            for job in jobs {
                let key = breaker_key(&job.request);
                match keyed.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, group)) => group.push(job),
                    None => keyed.push((key, vec![job])),
                }
            }
            keyed.into_iter().map(|(_, group)| group).collect()
        }
    };

    let (job_tx, job_rx) = mpsc::sync_channel::<Vec<Job>>(queue_bound);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (msg_tx, msg_rx) = mpsc::channel::<Message>();

    let mut progress = Progress::default();
    let mut error: Option<FleetError> = None;
    let mut submitted = 0usize;
    // The supervisor keeps its own clones of the channel ends so it can
    // wire up replacement workers mid-flight.
    let mut supervisor = Supervisor {
        job_rx: Arc::clone(&job_rx),
        msg_tx: msg_tx.clone(),
        retry_backoff: config.retry_backoff,
        breaker_threshold: config.breaker_threshold,
        loop_sink: config.loop_sink.clone(),
        store: config.store.clone(),
        crash_budget: config.crash_budget,
        crash_counts: HashMap::new(),
        next_worker: workers,
    };

    thread::scope(|scope| {
        for worker in 0..workers {
            supervisor.spawn_worker(scope, worker, None);
        }
        // Workers (and the supervisor, for respawns) hold the remaining
        // senders; the drain loop below terminates by counting live
        // workers rather than waiting for channel disconnection.
        drop(msg_tx);

        let mut batch_iter = batches.into_iter();
        'submission: loop {
            let Some(batch) = batch_iter.next() else {
                break;
            };
            let size = batch.len();
            // The backpressure point: a full queue makes the coordinator
            // wait — but it must keep pumping messages while it waits, or
            // a crashed worker would never be respawned and a fully-dead
            // pool would deadlock the blocked submission.
            let mut pending = Some(batch);
            while let Some(batch) = pending.take() {
                match job_tx.try_send(batch) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(batch)) => {
                        pending = Some(batch);
                        for msg in msg_rx.try_iter() {
                            dispatch(msg, scope, &mut supervisor, sink, &mut progress);
                        }
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(mpsc::TrySendError::Disconnected(returned)) => {
                        // Every worker has already exited and the channel
                        // is gone: record the typed failure and keep the
                        // results of the jobs that did run.
                        let dropped =
                            returned.len() + batch_iter.by_ref().map(|b| b.len()).sum::<usize>();
                        error = Some(FleetError::WorkersGone { submitted, dropped });
                        break 'submission;
                    }
                }
            }
            submitted += size;
            for msg in msg_rx.try_iter() {
                dispatch(msg, scope, &mut supervisor, sink, &mut progress);
            }
            sink.emit(&FleetEvent::QueueDepth {
                pending: submitted.saturating_sub(progress.started),
                finished: progress.finished,
            });
        }
        drop(job_tx); // close the queue: idle workers exit

        // Every live worker eventually reports WorkerIdle (its Done
        // messages precede it in sender order); crashed workers are
        // replaced one-for-one, so the live count is exactly `workers`.
        let mut live = workers;
        while live > 0 {
            let Ok(msg) = msg_rx.recv() else { break };
            match msg {
                Message::WorkerIdle {
                    worker,
                    jobs,
                    busy_nanos,
                } => {
                    live -= 1;
                    sink.emit(&FleetEvent::WorkerUtilization {
                        worker,
                        jobs,
                        busy_nanos,
                        wall_nanos: start.elapsed().as_nanos() as u64,
                    });
                }
                other => dispatch(other, scope, &mut supervisor, sink, &mut progress),
            }
        }
    });

    sink.emit(&FleetEvent::FleetFinished {
        jobs: progress.finished,
        nanos: start.elapsed().as_nanos() as u64,
    });
    FleetReport::new(
        workers,
        progress.results,
        progress.breaker_trips,
        start.elapsed().as_nanos() as u64,
        error,
    )
}

/// Hands one batch to the pool, returning the batch when every worker has
/// already exited (the job channel has no receivers left). Kept for the
/// workers-gone unit tests; [`run_fleet`] itself uses a non-blocking pump
/// so it can respawn crashed workers while back-pressured.
#[cfg(test)]
fn submit(
    job_tx: &mpsc::SyncSender<Vec<Job>>,
    batch: Vec<Job>,
) -> std::result::Result<(), Vec<Job>> {
    job_tx.send(batch).map_err(|mpsc::SendError(b)| b)
}

/// Routes one worker message: crash messages go to the supervisor (which
/// may synthesize a `Crashed` result), everything else to [`handle`].
fn dispatch<'scope, 'env>(
    msg: Message,
    scope: &'scope thread::Scope<'scope, 'env>,
    supervisor: &mut Supervisor,
    sink: &mut dyn FleetSink,
    progress: &mut Progress,
) {
    match msg {
        Message::WorkerCrashed { worker, job, rest } => {
            let (event, synthesized) = supervisor.on_crash(scope, worker, *job, rest);
            sink.emit(&event);
            if let Some(done) = synthesized {
                handle(done, sink, progress);
            }
        }
        other => handle(other, sink, progress),
    }
}

/// The supervision half of the coordinator: spawns workers, counts per-job
/// crashes, and replaces dead workers one-for-one.
struct Supervisor {
    job_rx: Arc<Mutex<mpsc::Receiver<Vec<Job>>>>,
    msg_tx: mpsc::Sender<Message>,
    retry_backoff: Duration,
    breaker_threshold: Option<usize>,
    loop_sink: Option<SharedSink>,
    store: Option<Arc<muml_core::store::Store>>,
    crash_budget: usize,
    crash_counts: HashMap<usize, usize>,
    next_worker: usize,
}

impl Supervisor {
    fn spawn_worker<'scope, 'env>(
        &self,
        scope: &'scope thread::Scope<'scope, 'env>,
        worker: usize,
        initial: Option<Vec<Job>>,
    ) {
        let spawn = WorkerSpawn {
            worker,
            initial,
            rx: Arc::clone(&self.job_rx),
            tx: self.msg_tx.clone(),
            retry_backoff: self.retry_backoff,
            breaker_threshold: self.breaker_threshold,
            loop_sink: self.loop_sink.clone(),
            store: self.store.clone(),
        };
        scope.spawn(move || worker_loop(spawn));
    }

    /// Handles one worker death: always respawns a replacement (seeded
    /// with the untouched rest of the dead worker's batch, preserving the
    /// breaker's one-component-one-worker id order), re-queues the
    /// in-flight job while its crash budget lasts, and past the budget
    /// synthesizes the terminal [`JobOutcome::Crashed`] result instead.
    fn on_crash<'scope, 'env>(
        &mut self,
        scope: &'scope thread::Scope<'scope, 'env>,
        dead_worker: usize,
        job: Job,
        rest: Vec<Job>,
    ) -> (FleetEvent, Option<Message>) {
        let id = job.request.id;
        let crashes = {
            let count = self.crash_counts.entry(id).or_insert(0);
            *count += 1;
            *count
        };
        let mut initial = Vec::new();
        let synthesized = if crashes > self.crash_budget {
            Some(Message::Done(Box::new(JobResult {
                request: job.request,
                outcome: JobOutcome::Crashed { crashes },
                iterations: 0,
                stats: muml_core::IntegrationStats::default(),
                worker: dead_worker,
                nanos: 0,
                attempts: crashes,
            })))
        } else {
            initial.push(job);
            None
        };
        initial.extend(rest);
        let worker = self.next_worker;
        self.next_worker += 1;
        let seed = if initial.is_empty() {
            None
        } else {
            Some(initial)
        };
        self.spawn_worker(scope, worker, seed);
        (
            FleetEvent::WorkerRespawned {
                worker,
                job: id,
                crashes,
            },
            synthesized,
        )
    }
}

/// Everything a worker thread needs, bundled so spawns and respawns share
/// one signature.
struct WorkerSpawn {
    worker: usize,
    /// A batch to run before joining the shared queue — the re-queued
    /// remains of a crashed predecessor.
    initial: Option<Vec<Job>>,
    rx: Arc<Mutex<mpsc::Receiver<Vec<Job>>>>,
    tx: mpsc::Sender<Message>,
    retry_backoff: Duration,
    breaker_threshold: Option<usize>,
    loop_sink: Option<SharedSink>,
    store: Option<Arc<muml_core::store::Store>>,
}

/// A worker's mutable execution state across batches.
struct WorkerState {
    worker: usize,
    tx: mpsc::Sender<Message>,
    retry_backoff: Duration,
    breaker_threshold: Option<usize>,
    loop_sink: Option<SharedSink>,
    store: Option<Arc<muml_core::store::Store>>,
    jobs: usize,
    busy_nanos: u64,
}

fn worker_loop(spawn: WorkerSpawn) {
    let WorkerSpawn {
        worker,
        initial,
        rx,
        tx,
        retry_backoff,
        breaker_threshold,
        loop_sink,
        store,
    } = spawn;
    let mut state = WorkerState {
        worker,
        tx,
        retry_backoff,
        breaker_threshold,
        loop_sink,
        store,
        jobs: 0,
        busy_nanos: 0,
    };
    if let Some(batch) = initial {
        if !state.run_batch(batch) {
            return; // killed: the supervisor has been told, just die
        }
    }
    loop {
        // Hold the lock across `recv`: exactly one worker waits on the
        // channel while the rest queue on the mutex; each batch wakes one.
        let next = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv()
        };
        let Ok(batch) = next else { break };
        if !state.run_batch(batch) {
            return;
        }
    }
    let _ = state.tx.send(Message::WorkerIdle {
        worker: state.worker,
        jobs: state.jobs,
        busy_nanos: state.busy_nanos,
    });
}

impl WorkerState {
    /// Runs one batch to completion. Returns `false` if a job killed this
    /// worker (a [`WorkerKill`] panic escaped a work closure) — the crash
    /// message, carrying the job and the unprocessed rest of the batch,
    /// has already been sent and the thread must exit.
    fn run_batch(&mut self, batch: Vec<Job>) -> bool {
        // Consecutive rig-attributed failures within the batch (one
        // component when the breaker groups batches by key).
        let mut failures = 0usize;
        let mut tripped = false;
        let mut batch_iter = batch.into_iter();
        while let Some(job) = batch_iter.next() {
            let Job { request, work } = job;
            if tripped {
                let _ = self.tx.send(Message::Quarantined {
                    job: request.id,
                    key: breaker_key(&request),
                });
                let _ = self.tx.send(Message::Done(Box::new(JobResult {
                    request,
                    outcome: JobOutcome::Quarantined,
                    iterations: 0,
                    stats: muml_core::IntegrationStats::default(),
                    worker: self.worker,
                    nanos: 0,
                    attempts: 0,
                })));
                continue;
            }
            let _ = self.tx.send(Message::Started {
                job: request.id,
                name: request.name.clone(),
                worker: self.worker,
            });
            let job_start = Instant::now();
            let mut attempts = 0usize;
            let (outcome, iterations, stats) = loop {
                attempts += 1;
                // The deadline re-arms per attempt: a retry is a fresh run.
                let cancel = match request.deadline {
                    Some(deadline) => CancelToken::with_timeout(deadline),
                    None => CancelToken::new(),
                };
                let context = JobContext {
                    cancel,
                    loop_sink: self.loop_sink.clone(),
                    store: self.store.clone(),
                };
                let run = catch_unwind(AssertUnwindSafe(|| work(&context)));
                let classified = match run {
                    Ok(result) => classify(result),
                    Err(panic) if panic.downcast_ref::<WorkerKill>().is_some() => {
                        // This worker is dead. Hand the in-flight job and
                        // the untouched rest of the batch back to the
                        // supervisor and exit without an idle report.
                        let rest: Vec<Job> = batch_iter.by_ref().collect();
                        let _ = self.tx.send(Message::WorkerCrashed {
                            worker: self.worker,
                            job: Box::new(Job { request, work }),
                            rest,
                        });
                        return false;
                    }
                    Err(panic) => {
                        let message = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "job panicked".to_owned());
                        (
                            JobOutcome::Error { message },
                            0,
                            muml_core::IntegrationStats::default(),
                        )
                    }
                };
                if classified.0.is_rig_failure() && attempts <= request.retries {
                    let _ = self.tx.send(Message::Retried {
                        job: request.id,
                        worker: self.worker,
                        attempt: attempts,
                    });
                    if !self.retry_backoff.is_zero() {
                        thread::sleep(self.retry_backoff);
                    }
                    continue;
                }
                break classified;
            };
            let nanos = job_start.elapsed().as_nanos() as u64;
            if let Some(threshold) = self.breaker_threshold {
                if outcome.is_rig_failure() {
                    failures += 1;
                    if failures >= threshold {
                        tripped = true;
                        let _ = self.tx.send(Message::BreakerTripped {
                            key: breaker_key(&request),
                            failures,
                        });
                    }
                } else {
                    failures = 0;
                }
            }
            self.jobs += 1;
            self.busy_nanos += nanos;
            let _ = self.tx.send(Message::Done(Box::new(JobResult {
                request,
                outcome,
                iterations,
                stats,
                worker: self.worker,
                nanos,
                attempts,
            })));
        }
        true
    }
}

fn handle(msg: Message, sink: &mut dyn FleetSink, progress: &mut Progress) {
    match msg {
        Message::Started { job, name, worker } => {
            progress.started += 1;
            sink.emit(&FleetEvent::JobStarted { job, name, worker });
        }
        Message::Retried {
            job,
            worker,
            attempt,
        } => {
            sink.emit(&FleetEvent::JobRetried {
                job,
                worker,
                attempt,
            });
        }
        Message::BreakerTripped { key, failures } => {
            sink.emit(&FleetEvent::BreakerTripped {
                key: key.clone(),
                failures,
            });
            progress.breaker_trips.push((key, failures));
        }
        Message::Quarantined { job, key } => {
            // Counts as dispatched for the queue-depth gauge even though
            // no JobStarted is emitted: the job will never start.
            progress.started += 1;
            sink.emit(&FleetEvent::JobQuarantined { job, key });
        }
        Message::Done(result) => {
            let result = *result;
            progress.finished += 1;
            if result.outcome == JobOutcome::TimedOut {
                sink.emit(&FleetEvent::JobTimedOut {
                    job: result.request.id,
                    worker: result.worker,
                    nanos: result.nanos,
                });
            }
            sink.emit(&FleetEvent::JobFinished {
                job: result.request.id,
                worker: result.worker,
                outcome: result.outcome.name().to_owned(),
                iterations: result.iterations,
                nanos: result.nanos,
            });
            progress.results.push(result);
        }
        Message::WorkerCrashed { .. } => unreachable!("routed to the supervisor by dispatch"),
        Message::WorkerIdle { .. } => unreachable!("drained only after queue close"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobRequest;
    use muml_core::{IntegrationReport, IntegrationStats, IntegrationVerdict};
    use muml_obs::FleetCollector;
    use std::panic::panic_any;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn job(id: usize) -> Job {
        Job::new(JobRequest::new(id, format!("job-{id}")), |_ctx| {
            Ok(IntegrationReport {
                verdict: IntegrationVerdict::Proven,
                iterations: Vec::new(),
                learned: Vec::new(),
                stats: IntegrationStats::default(),
            })
        })
    }

    /// A job that kills its worker on the first `crashes` executions and
    /// then completes normally.
    fn crashing_job(id: usize, crashes: usize) -> Job {
        let calls = AtomicUsize::new(0);
        Job::new(JobRequest::new(id, format!("killer-{id}")), move |_ctx| {
            if calls.fetch_add(1, Ordering::SeqCst) < crashes {
                panic_any(WorkerKill);
            }
            Ok(IntegrationReport {
                verdict: IntegrationVerdict::Proven,
                iterations: Vec::new(),
                learned: Vec::new(),
                stats: IntegrationStats::default(),
            })
        })
    }

    #[test]
    fn submit_returns_the_batch_when_all_workers_exited() {
        let (tx, rx) = mpsc::sync_channel::<Vec<Job>>(1);
        drop(rx); // every worker gone: the receiver side no longer exists
        let returned = submit(&tx, vec![job(0), job(1)]).unwrap_err();
        assert_eq!(returned.len(), 2);
        assert_eq!(returned[0].request.id, 0);
        assert_eq!(returned[1].request.id, 1);
    }

    #[test]
    fn submit_delivers_while_a_worker_listens() {
        let (tx, rx) = mpsc::sync_channel::<Vec<Job>>(1);
        submit(&tx, vec![job(7)]).unwrap();
        assert_eq!(rx.recv().unwrap()[0].request.id, 7);
    }

    #[test]
    fn workers_gone_accounting_matches_the_pool_loop() {
        // Replicates the run_fleet submission loop against a dead pool: the
        // failing batch plus every unsubmitted batch counts as dropped.
        let batches: Vec<Vec<Job>> = vec![vec![job(0)], vec![job(1), job(2)], vec![job(3)]];
        let (tx, rx) = mpsc::sync_channel::<Vec<Job>>(8);
        drop(rx);
        let mut submitted = 0usize;
        let mut error = None;
        let mut batch_iter = batches.into_iter();
        loop {
            let Some(batch) = batch_iter.next() else {
                break;
            };
            let size = batch.len();
            if let Err(returned) = submit(&tx, batch) {
                let dropped = returned.len() + batch_iter.by_ref().map(|b| b.len()).sum::<usize>();
                error = Some(FleetError::WorkersGone { submitted, dropped });
                break;
            }
            submitted += size;
        }
        assert_eq!(
            error,
            Some(FleetError::WorkersGone {
                submitted: 0,
                dropped: 4
            })
        );
    }

    #[test]
    fn crashed_worker_is_respawned_and_job_requeued() {
        let jobs = vec![job(0), crashing_job(1, 2), job(2)];
        let mut sink = FleetCollector::new();
        let report = run_fleet(
            jobs,
            &FleetConfig::default().with_workers(2).with_crash_budget(2),
            &mut sink,
        );
        assert!(report.error.is_none());
        assert_eq!(report.results.len(), 3);
        for result in &report.results {
            assert_eq!(result.outcome, JobOutcome::Proven, "{result:?}");
        }
        let kinds = sink.kinds();
        assert_eq!(
            kinds.iter().filter(|k| **k == "worker_respawned").count(),
            2,
            "{kinds:?}"
        );
        // One-for-one replacement: exactly `workers` idle reports.
        assert_eq!(
            kinds.iter().filter(|k| **k == "worker_utilization").count(),
            2
        );
    }

    #[test]
    fn crash_budget_exhaustion_yields_typed_crashed_outcome() {
        let always = usize::MAX; // never completes
        let jobs = vec![crashing_job(0, always), job(1)];
        let mut sink = FleetCollector::new();
        let report = run_fleet(
            jobs,
            &FleetConfig::default().with_workers(1).with_crash_budget(1),
            &mut sink,
        );
        assert!(report.error.is_none());
        assert_eq!(report.results.len(), 2);
        assert_eq!(
            report.results[0].outcome,
            JobOutcome::Crashed { crashes: 2 },
            "budget 1 allows one re-queue; the second crash is terminal"
        );
        assert_eq!(report.results[0].attempts, 2);
        assert_eq!(report.results[1].outcome, JobOutcome::Proven);
        let respawns = sink
            .kinds()
            .iter()
            .filter(|k| **k == "worker_respawned")
            .count();
        assert_eq!(respawns, 2);
    }

    #[test]
    fn crash_mid_batch_requeues_the_rest_in_order() {
        // Breaker mode groups one variant's jobs into a single batch on
        // one worker; a crash on the middle job must not lose the tail.
        let mut jobs = vec![job(0)];
        jobs[0].request.variant = "stable".into();
        let mut killer = crashing_job(1, 1);
        killer.request.variant = "stable".into();
        jobs.push(killer);
        let mut tail = job(2);
        tail.request.variant = "stable".into();
        jobs.push(tail);
        let mut sink = FleetCollector::new();
        let report = run_fleet(
            jobs,
            &FleetConfig::default()
                .with_workers(2)
                .with_breaker_threshold(3)
                .with_crash_budget(2),
            &mut sink,
        );
        assert!(report.error.is_none());
        assert_eq!(report.results.len(), 3);
        for result in &report.results {
            assert_eq!(result.outcome, JobOutcome::Proven, "{result:?}");
        }
        assert_eq!(
            sink.kinds()
                .iter()
                .filter(|k| **k == "worker_respawned")
                .count(),
            1
        );
    }

    #[test]
    fn many_concurrent_crashes_never_hang_the_fleet() {
        // Every job crashes once on a small pool with a tiny queue: the
        // submission pump must keep respawning workers under full
        // backpressure and still drain everything.
        let jobs: Vec<Job> = (0..12).map(|id| crashing_job(id, 1)).collect();
        let report = run_fleet(
            jobs,
            &FleetConfig::default()
                .with_workers(2)
                .with_queue_bound(1)
                .with_crash_budget(3),
            &mut muml_obs::NullFleetSink,
        );
        assert!(report.error.is_none());
        assert_eq!(report.results.len(), 12);
        for result in &report.results {
            assert_eq!(result.outcome, JobOutcome::Proven, "{result:?}");
        }
    }
}
