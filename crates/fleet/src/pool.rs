//! The worker pool: bounded submission, shared-receiver dispatch,
//! cooperative deadlines, and single-threaded event forwarding.
//!
//! Topology (see DESIGN.md §11 for the queue-discipline discussion):
//!
//! ```text
//!   coordinator ──sync_channel(queue_bound)──▶ workers (shared receiver)
//!        ▲                                        │
//!        └──────────unbounded channel─────────────┘  (Started/Done/stats)
//! ```
//!
//! * The job channel is *bounded*: a full queue blocks submission, so a
//!   campaign generator producing jobs faster than the pool drains them is
//!   back-pressured instead of buffering the whole campaign.
//! * Workers share one receiver behind a mutex and pull as they free up —
//!   jobs are never pre-assigned, so a slow job on one worker cannot
//!   strand queued jobs behind it.
//! * The back-channel is unbounded, so workers never block on the
//!   coordinator and the bounded queue cannot deadlock.
//! * The coordinator is the only thread touching the [`FleetSink`]: worker
//!   messages are forwarded in arrival order, which keeps sinks free of
//!   locking requirements.
//!
//! Each job's work closure runs under `catch_unwind`; a panicking job is
//! reported as [`JobOutcome::Error`](crate::JobOutcome) and its worker
//! keeps serving the queue.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use muml_core::CancelToken;
use muml_obs::{FleetEvent, FleetSink};

use crate::job::{classify, Job, JobContext, JobOutcome, JobResult};
use crate::report::FleetReport;

/// Worker-pool configuration.
///
/// The struct is `#[non_exhaustive]`; construct it with
/// [`FleetConfig::default`] (one worker, queue bound 8) and refine via the
/// chainable setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Worker-pool size (clamped to at least 1).
    pub workers: usize,
    /// Capacity of the bounded job queue (clamped to at least 1);
    /// submission blocks while the queue is full.
    pub queue_bound: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 1,
            queue_bound: 8,
        }
    }
}

impl FleetConfig {
    /// Sets the worker-pool size.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the job-queue capacity.
    #[must_use]
    pub fn with_queue_bound(mut self, queue_bound: usize) -> Self {
        self.queue_bound = queue_bound;
        self
    }
}

/// Worker → coordinator messages.
enum Message {
    Started {
        job: usize,
        name: String,
        worker: usize,
    },
    Done(Box<JobResult>),
    WorkerIdle {
        worker: usize,
        jobs: usize,
        busy_nanos: u64,
    },
}

/// Runs `jobs` across the configured worker pool and aggregates the
/// deterministic [`FleetReport`]. Fleet-level telemetry is forwarded to
/// `sink` from the coordinator thread.
pub fn run_fleet(jobs: Vec<Job>, config: &FleetConfig, sink: &mut dyn FleetSink) -> FleetReport {
    let workers = config.workers.max(1);
    let queue_bound = config.queue_bound.max(1);
    let total = jobs.len();
    let start = Instant::now();
    sink.emit(&FleetEvent::FleetStarted {
        jobs: total,
        workers,
    });

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(queue_bound);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (msg_tx, msg_rx) = mpsc::channel::<Message>();

    let mut results: Vec<JobResult> = Vec::with_capacity(total);
    let mut submitted = 0usize;
    let mut started = 0usize;
    let mut finished = 0usize;

    thread::scope(|scope| {
        for worker in 0..workers {
            let rx = Arc::clone(&job_rx);
            let tx = msg_tx.clone();
            scope.spawn(move || worker_loop(worker, rx, tx));
        }
        // The workers hold the only remaining senders; dropping ours makes
        // the drain loop below terminate when the last worker exits.
        drop(msg_tx);

        for job in jobs {
            // Blocks while the queue is full — the backpressure point.
            job_tx.send(job).expect("workers outlive submission");
            submitted += 1;
            for msg in msg_rx.try_iter() {
                handle(msg, sink, &mut results, &mut started, &mut finished);
            }
            sink.emit(&FleetEvent::QueueDepth {
                pending: submitted - started,
                finished,
            });
        }
        drop(job_tx); // close the queue: idle workers exit

        for msg in msg_rx.iter() {
            let wall_nanos = start.elapsed().as_nanos() as u64;
            match msg {
                Message::WorkerIdle {
                    worker,
                    jobs,
                    busy_nanos,
                } => sink.emit(&FleetEvent::WorkerUtilization {
                    worker,
                    jobs,
                    busy_nanos,
                    wall_nanos,
                }),
                other => handle(other, sink, &mut results, &mut started, &mut finished),
            }
        }
    });

    sink.emit(&FleetEvent::FleetFinished {
        jobs: finished,
        nanos: start.elapsed().as_nanos() as u64,
    });
    FleetReport::new(workers, results, start.elapsed().as_nanos() as u64)
}

fn handle(
    msg: Message,
    sink: &mut dyn FleetSink,
    results: &mut Vec<JobResult>,
    started: &mut usize,
    finished: &mut usize,
) {
    match msg {
        Message::Started { job, name, worker } => {
            *started += 1;
            sink.emit(&FleetEvent::JobStarted { job, name, worker });
        }
        Message::Done(result) => {
            let result = *result;
            *finished += 1;
            if result.outcome == JobOutcome::TimedOut {
                sink.emit(&FleetEvent::JobTimedOut {
                    job: result.spec.id,
                    worker: result.worker,
                    nanos: result.nanos,
                });
            }
            sink.emit(&FleetEvent::JobFinished {
                job: result.spec.id,
                worker: result.worker,
                outcome: result.outcome.name().to_owned(),
                iterations: result.iterations,
                nanos: result.nanos,
            });
            results.push(result);
        }
        Message::WorkerIdle { .. } => unreachable!("drained only after queue close"),
    }
}

fn worker_loop(worker: usize, rx: Arc<Mutex<mpsc::Receiver<Job>>>, tx: mpsc::Sender<Message>) {
    let mut jobs = 0usize;
    let mut busy_nanos = 0u64;
    loop {
        // Hold the lock across `recv`: exactly one worker waits on the
        // channel while the rest queue on the mutex; each job wakes one.
        let next = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv()
        };
        let Ok(job) = next else { break };
        let _ = tx.send(Message::Started {
            job: job.spec.id,
            name: job.spec.name.clone(),
            worker,
        });
        let cancel = match job.spec.deadline {
            Some(deadline) => CancelToken::with_timeout(deadline),
            None => CancelToken::new(),
        };
        let context = JobContext { cancel };
        let job_start = Instant::now();
        let Job { spec, work } = job;
        let outcome = catch_unwind(AssertUnwindSafe(move || work(&context)));
        let nanos = job_start.elapsed().as_nanos() as u64;
        let (outcome, iterations, stats) = match outcome {
            Ok(result) => classify(result),
            Err(panic) => {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".to_owned());
                (
                    JobOutcome::Error { message },
                    0,
                    muml_core::IntegrationStats::default(),
                )
            }
        };
        jobs += 1;
        busy_nanos += nanos;
        let _ = tx.send(Message::Done(Box::new(JobResult {
            spec,
            outcome,
            iterations,
            stats,
            worker,
            nanos,
        })));
    }
    let _ = tx.send(Message::WorkerIdle {
        worker,
        jobs,
        busy_nanos,
    });
}
