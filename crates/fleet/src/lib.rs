//! Concurrent batch verification for integration campaigns.
//!
//! One integration session answers one question: *does this component,
//! under this context, satisfy this constraint?* Real integration work
//! asks that question dozens of times — per component variant, per seeded
//! fault, per coordination pattern — and each run spends most of its time
//! blocked on the test harness (counterexample replay against the legacy
//! rig). This crate is the campaign layer above
//! [`muml_core::IntegrationSession`]:
//!
//! * [`JobRequest`] / [`Job`] — a declarative campaign cell (scenario ×
//!   pattern × variant × fault, plus iteration cap and deadline) paired
//!   with a work closure that builds and runs its session inside a worker
//!   thread. A `JobRequest` is wire-encodable
//!   ([`to_json`](JobRequest::to_json) / [`from_json`](JobRequest::from_json))
//!   and a [`JobRegistry`] resolves it back into a runnable [`Job`]
//!   server-side, so the same type serves as the `muml-serve` wire schema,
//!   the fleet input, and the bench-campaign cell.
//! * [`run_fleet`] / [`FleetConfig`] — a fixed pool of std threads fed by
//!   a *bounded* queue (submission back-pressures), with per-job
//!   wall-clock deadlines enforced through the cooperative
//!   [`muml_core::CancelToken`] and panicking jobs contained per job.
//! * [`FleetReport`] — the deterministic aggregation: rows sorted by
//!   generation-time job id, a verdict histogram, per-job
//!   [`muml_core::IntegrationStats`] rollups, and a
//!   [`fingerprint`](FleetReport::fingerprint) that is bit-identical
//!   across worker counts and submission orders.
//! * Fleet-level telemetry ([`muml_obs::FleetEvent`]) — job lifecycle,
//!   queue depth, worker utilization — forwarded to a
//!   [`muml_obs::FleetSink`] from the coordinator thread only.
//!
//! DESIGN.md §11 documents the queue discipline, the cancellation points,
//! and the determinism argument.

#![warn(missing_docs)]

mod error;
mod job;
mod pool;
mod report;
pub mod request;

pub use error::FleetError;
pub use job::{classify, Job, JobContext, JobOutcome, JobResult, JobWork, WorkerKill};
pub use pool::{run_fleet, FleetConfig};
pub use report::FleetReport;
pub use request::{JobRegistry, JobRequest, JobResolver, ResolveError};

#[cfg(test)]
mod tests {
    use super::*;
    use muml_core::{CoreError, IntegrationReport, IntegrationStats, IntegrationVerdict};
    use muml_obs::{FleetCollector, FleetEvent, NullFleetSink};
    use std::time::Duration;

    /// A fabricated proven report (the fleet never inspects `learned` or
    /// `iterations`, so empty vectors are fine for pool tests).
    fn proven_report(iterations: usize) -> IntegrationReport {
        IntegrationReport {
            verdict: IntegrationVerdict::Proven,
            iterations: Vec::new(),
            learned: Vec::new(),
            stats: IntegrationStats {
                iterations,
                ..IntegrationStats::default()
            },
        }
    }

    fn proven_job(id: usize) -> Job {
        Job::new(JobRequest::new(id, format!("job-{id}")), move |_ctx| {
            Ok(proven_report(id + 1))
        })
    }

    #[test]
    fn drains_all_jobs_and_sorts_results() {
        let jobs: Vec<Job> = (0..20).rev().map(proven_job).collect(); // reversed submission
        let mut sink = NullFleetSink;
        let report = run_fleet(jobs, &FleetConfig::default().with_workers(3), &mut sink);
        assert_eq!(report.results.len(), 20);
        assert_eq!(
            report
                .results
                .iter()
                .map(|r| r.request.id)
                .collect::<Vec<_>>(),
            (0..20).collect::<Vec<_>>()
        );
        assert_eq!(report.histogram()[0], ("proven", 20));
        assert_eq!(report.total_iterations(), (1..=20).sum::<usize>());
    }

    #[test]
    fn fingerprint_is_stable_across_worker_counts() {
        let run = |workers: usize| {
            run_fleet(
                (0..12).map(proven_job).collect(),
                &FleetConfig::default()
                    .with_workers(workers)
                    .with_queue_bound(2),
                &mut NullFleetSink,
            )
        };
        let serial = run(1);
        let pooled = run(4);
        assert_eq!(serial.fingerprint(), pooled.fingerprint());
        assert_eq!(serial.workers, 1);
        assert_eq!(pooled.workers, 4);
    }

    #[test]
    fn zero_deadline_times_out_deterministically() {
        let request = JobRequest::new(0, "doomed").with_deadline(Duration::ZERO);
        let job = Job::new(request, |ctx| {
            // Mirrors the driver's cancellation points: poll before work.
            if ctx.cancel.is_cancelled() {
                return Err(CoreError::Cancelled { iterations: 0 });
            }
            Ok(proven_report(1))
        });
        let mut sink = FleetCollector::new();
        let report = run_fleet(vec![job], &FleetConfig::default(), &mut sink);
        assert_eq!(report.results[0].outcome, JobOutcome::TimedOut);
        assert_eq!(report.histogram()[3], ("timed_out", 1));
        let kinds = sink.kinds();
        assert!(kinds.contains(&"job_timed_out"), "{kinds:?}");
    }

    #[test]
    fn panicking_job_is_contained() {
        let jobs = vec![
            Job::new(JobRequest::new(0, "bomb"), |_ctx| -> Result<_, CoreError> {
                panic!("boom: {}", 42)
            }),
            proven_job(1),
        ];
        let report = run_fleet(jobs, &FleetConfig::default(), &mut NullFleetSink);
        match &report.results[0].outcome {
            JobOutcome::Error { message } => assert!(message.contains("boom"), "{message}"),
            other => panic!("expected an error outcome, got {other:?}"),
        }
        // The worker survived the panic and served the next job.
        assert_eq!(report.results[1].outcome, JobOutcome::Proven);
    }

    #[test]
    fn event_stream_brackets_every_job() {
        let mut sink = FleetCollector::new();
        let report = run_fleet(
            (0..5).map(proven_job).collect(),
            &FleetConfig::default().with_workers(2).with_queue_bound(1),
            &mut sink,
        );
        assert_eq!(report.results.len(), 5);
        let kinds = sink.kinds();
        assert_eq!(kinds.first(), Some(&"fleet_started"));
        assert_eq!(kinds.last(), Some(&"fleet_finished"));
        assert_eq!(kinds.iter().filter(|k| **k == "job_started").count(), 5);
        assert_eq!(kinds.iter().filter(|k| **k == "job_finished").count(), 5);
        assert_eq!(
            kinds.iter().filter(|k| **k == "worker_utilization").count(),
            2
        );
        // Every job's started precedes its finished.
        for id in 0..5 {
            let job_events = sink.job(id);
            assert_eq!(job_events.len(), 2, "job {id}: {job_events:?}");
            assert!(matches!(job_events[0], FleetEvent::JobStarted { .. }));
            assert!(matches!(job_events[1], FleetEvent::JobFinished { .. }));
        }
        match sink.events.last() {
            Some(FleetEvent::FleetFinished { jobs, .. }) => assert_eq!(*jobs, 5),
            other => panic!("unexpected terminal event {other:?}"),
        }
    }

    #[test]
    fn retries_rerun_rig_failures_until_success() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let request = JobRequest::new(0, "flaky").with_retries(3);
        let job = Job::new(request, move |_ctx| {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(CoreError::InterfaceMismatch {
                    detail: "transient rig glitch".into(),
                })
            } else {
                Ok(proven_report(1))
            }
        });
        let mut sink = FleetCollector::new();
        let report = run_fleet(vec![job], &FleetConfig::default(), &mut sink);
        assert_eq!(report.results[0].outcome, JobOutcome::Proven);
        assert_eq!(report.results[0].attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(report.total_retries(), 2);
        let kinds = sink.kinds();
        assert_eq!(kinds.iter().filter(|k| **k == "job_retried").count(), 2);
    }

    #[test]
    fn verdict_outcomes_are_not_retried() {
        let request = JobRequest::new(0, "solid").with_retries(5);
        let job = Job::new(request, move |_ctx| Ok(proven_report(1)));
        let report = run_fleet(vec![job], &FleetConfig::default(), &mut NullFleetSink);
        assert_eq!(report.results[0].attempts, 1);
    }

    fn failing_job(id: usize, variant: &str) -> Job {
        let request = JobRequest::new(id, format!("{variant}/{id}")).with_variant(variant);
        Job::new(request, |_ctx| {
            Err(CoreError::InterfaceMismatch {
                detail: "rig down".into(),
            })
        })
    }

    #[test]
    fn breaker_quarantines_the_rest_of_a_failing_component() {
        let jobs = vec![
            failing_job(0, "wobbly"),
            failing_job(1, "wobbly"),
            failing_job(2, "wobbly"),
            failing_job(3, "wobbly"),
            proven_job(4),
        ];
        let mut sink = FleetCollector::new();
        let report = run_fleet(
            jobs,
            &FleetConfig::default()
                .with_workers(2)
                .with_breaker_threshold(2),
            &mut sink,
        );
        // First two failures trip the breaker; jobs 2 and 3 never run.
        assert!(matches!(
            report.results[0].outcome,
            JobOutcome::Error { .. }
        ));
        assert!(matches!(
            report.results[1].outcome,
            JobOutcome::Error { .. }
        ));
        assert_eq!(report.results[2].outcome, JobOutcome::Quarantined);
        assert_eq!(report.results[3].outcome, JobOutcome::Quarantined);
        assert_eq!(report.results[4].outcome, JobOutcome::Proven);
        assert_eq!(report.results[2].attempts, 0);
        assert_eq!(report.breaker_trips, vec![("wobbly".to_owned(), 2)]);
        let kinds = sink.kinds();
        assert_eq!(kinds.iter().filter(|k| **k == "breaker_tripped").count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == "job_quarantined").count(), 2);
        assert!(report.render().contains("breaker: `wobbly`"));
    }

    #[test]
    fn breaker_fingerprint_is_stable_across_worker_counts() {
        let campaign = || {
            vec![
                failing_job(0, "wobbly"),
                failing_job(1, "wobbly"),
                failing_job(2, "wobbly"),
                proven_job(3),
                proven_job(4),
            ]
        };
        let config = |workers| {
            FleetConfig::default()
                .with_workers(workers)
                .with_breaker_threshold(2)
        };
        let serial = run_fleet(campaign(), &config(1), &mut NullFleetSink);
        let pooled = run_fleet(campaign(), &config(4), &mut NullFleetSink);
        assert_eq!(serial.fingerprint(), pooled.fingerprint());
        assert_eq!(serial.quarantined_jobs(), 1);
    }

    #[test]
    fn latency_bound_jobs_overlap_across_workers() {
        // Jobs that sleep (as harness-bound sessions do) should overlap:
        // 8 × 10ms on 4 workers must finish well under the 80ms serial time.
        let sleepy = |id: usize| {
            Job::new(JobRequest::new(id, format!("sleepy-{id}")), |_ctx| {
                std::thread::sleep(Duration::from_millis(10));
                Ok(proven_report(1))
            })
        };
        let report = run_fleet(
            (0..8).map(sleepy).collect(),
            &FleetConfig::default().with_workers(4),
            &mut NullFleetSink,
        );
        assert!(
            report.wall_nanos < report.busy_nanos(),
            "wall {} >= busy {}",
            report.wall_nanos,
            report.busy_nanos()
        );
    }
}
