//! The wire-stable job schema and its server-side resolver registry.
//!
//! A [`JobRequest`] is *pure data*: the coordinates of one campaign cell
//! (scenario × pattern × variant × fault) plus its resource budget. Unlike
//! the closure-carrying [`Job`](crate::Job), a request crosses process
//! boundaries — [`JobRequest::to_json`] / [`JobRequest::from_json`] give it
//! a stable JSON encoding (versioned under the `"v"` key), so the same
//! type is simultaneously
//!
//! * the **wire schema** a `muml-serve` client submits,
//! * the **fleet input** (a [`Job`] is a resolved request plus its work),
//! * the **bench-campaign cell** (`muml_bench::campaign` enumerates
//!   requests, not closures).
//!
//! The executable half is re-attached by a [`JobRegistry`]: scenarios
//! register a *resolver* that turns the declarative coordinates back into
//! a work closure inside the process that will run it. Resolution is
//! fallible and typed ([`ResolveError`]) so a daemon can answer a bad
//! request with a structured rejection instead of panicking in a worker.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use muml_obs::json::Json;

use crate::job::{Job, JobWork};

/// Version tag of the `JobRequest` JSON encoding.
pub const JOB_REQUEST_VERSION: i64 = 1;

/// The declarative, serializable description of one verification job.
///
/// `id` is assigned by the campaign *generator* (or submitting client),
/// not the executor: report ordering is by `id`, so shuffling the
/// submission order (or changing the worker count) cannot change an
/// aggregated report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Stable job id (position in the generated campaign).
    pub id: usize,
    /// Display name (`variant/fault` by convention).
    pub name: String,
    /// The scenario the job exercises (e.g. `railcab-convoy`) — the
    /// [`JobRegistry`] dispatch key.
    pub scenario: String,
    /// The coordination pattern whose constraint is checked.
    pub pattern: String,
    /// The legacy-component variant under integration.
    pub variant: String,
    /// The seeded fault, if any (`None` = baseline run).
    pub fault: Option<String>,
    /// Iteration cap handed to the session.
    pub max_iterations: usize,
    /// Per-job wall-clock deadline (`None` = no deadline). Encoded on the
    /// wire in milliseconds (`deadline_ms`).
    pub deadline: Option<Duration>,
    /// Extra executions granted after a rig-attributed failure
    /// (`Error`/`Inconclusive` outcomes); `0` = single attempt.
    pub retries: usize,
    /// Simulated harness round-trip latency per component step/reset.
    /// Encoded on the wire in microseconds (`latency_us`).
    pub latency: Duration,
    /// Whether the session memoizes executed traces in the prefix-sharing
    /// trace cache (DESIGN.md §17). Defaults to `true`; absent on the wire
    /// means enabled.
    pub trace_cache: bool,
    /// Worker threads for frontier-probe batches and speculative quorum
    /// attempts (`1` = serial). Absent on the wire means serial.
    pub test_parallelism: usize,
}

impl JobRequest {
    /// A request with the given coordinates, no fault, a 10 000-iteration
    /// cap, no deadline, no retries, and zero harness latency.
    pub fn new(id: usize, name: impl Into<String>) -> Self {
        JobRequest {
            id,
            name: name.into(),
            scenario: String::new(),
            pattern: String::new(),
            variant: String::new(),
            fault: None,
            max_iterations: 10_000,
            deadline: None,
            retries: 0,
            latency: Duration::ZERO,
            trace_cache: true,
            test_parallelism: 1,
        }
    }

    /// Sets the scenario label.
    #[must_use]
    pub fn with_scenario(mut self, scenario: impl Into<String>) -> Self {
        self.scenario = scenario.into();
        self
    }

    /// Sets the pattern label.
    #[must_use]
    pub fn with_pattern(mut self, pattern: impl Into<String>) -> Self {
        self.pattern = pattern.into();
        self
    }

    /// Sets the component-variant label.
    #[must_use]
    pub fn with_variant(mut self, variant: impl Into<String>) -> Self {
        self.variant = variant.into();
        self
    }

    /// Sets the fault label.
    #[must_use]
    pub fn with_fault(mut self, fault: impl Into<String>) -> Self {
        self.fault = Some(fault.into());
        self
    }

    /// Sets the iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Grants extra executions after rig-attributed failures.
    #[must_use]
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the simulated harness round-trip latency.
    #[must_use]
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Enables or disables the prefix-sharing trace cache.
    #[must_use]
    pub fn with_trace_cache(mut self, enabled: bool) -> Self {
        self.trace_cache = enabled;
        self
    }

    /// Sets the test-execution worker count (`1` = serial).
    #[must_use]
    pub fn with_test_parallelism(mut self, workers: usize) -> Self {
        self.test_parallelism = workers;
        self
    }

    /// The wire encoding: a versioned JSON object with every field
    /// explicit. Durations are integers (`deadline_ms`, `latency_us`) so
    /// the schema stays language-neutral.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("v".into(), Json::Int(JOB_REQUEST_VERSION)),
            ("id".into(), Json::from_usize(self.id)),
            ("name".into(), Json::Str(self.name.clone())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("pattern".into(), Json::Str(self.pattern.clone())),
            ("variant".into(), Json::Str(self.variant.clone())),
            (
                "fault".into(),
                match &self.fault {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
            (
                "max_iterations".into(),
                Json::from_usize(self.max_iterations),
            ),
            (
                "deadline_ms".into(),
                match self.deadline {
                    Some(d) => Json::from_u64(d.as_millis() as u64),
                    None => Json::Null,
                },
            ),
            ("retries".into(), Json::from_usize(self.retries)),
            (
                "latency_us".into(),
                Json::from_u64(self.latency.as_micros() as u64),
            ),
            ("trace_cache".into(), Json::Bool(self.trace_cache)),
            (
                "test_parallelism".into(),
                Json::from_usize(self.test_parallelism),
            ),
        ])
    }

    /// Decodes the wire encoding produced by [`JobRequest::to_json`].
    ///
    /// # Errors
    ///
    /// [`ResolveError::Malformed`] when a required field is missing or has
    /// the wrong shape, or when the `"v"` tag is a different schema
    /// version.
    pub fn from_json(json: &Json) -> Result<JobRequest, ResolveError> {
        let malformed = |detail: &str| ResolveError::Malformed {
            detail: detail.to_owned(),
        };
        let version = json
            .get("v")
            .and_then(Json::as_int)
            .ok_or_else(|| malformed("missing `v`"))?;
        if version != JOB_REQUEST_VERSION {
            return Err(ResolveError::Malformed {
                detail: format!("unsupported job-request version {version}"),
            });
        }
        let int_field = |key: &str| -> Result<i64, ResolveError> {
            json.get(key)
                .and_then(Json::as_int)
                .ok_or_else(|| malformed(&format!("missing integer `{key}`")))
        };
        let str_field = |key: &str| -> Result<String, ResolveError> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| malformed(&format!("missing string `{key}`")))
        };
        let fault = match json.get("fault") {
            None | Some(Json::Null) => None,
            Some(Json::Str(f)) => Some(f.clone()),
            Some(_) => return Err(malformed("`fault` must be a string or null")),
        };
        let deadline = match json.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(Json::Int(ms)) if *ms >= 0 => Some(Duration::from_millis(*ms as u64)),
            Some(_) => return Err(malformed("`deadline_ms` must be a non-negative integer")),
        };
        let latency_us = match json.get("latency_us") {
            None | Some(Json::Null) => 0,
            Some(Json::Int(us)) if *us >= 0 => *us as u64,
            Some(_) => return Err(malformed("`latency_us` must be a non-negative integer")),
        };
        // Tolerant decode, like `latency_us`: requests from clients that
        // predate the trace cache simply get the defaults.
        let trace_cache = match json.get("trace_cache") {
            None | Some(Json::Null) => true,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(malformed("`trace_cache` must be a boolean")),
        };
        let test_parallelism = match json.get("test_parallelism") {
            None | Some(Json::Null) => 1,
            Some(Json::Int(n)) if *n >= 1 => *n as usize,
            Some(_) => return Err(malformed("`test_parallelism` must be a positive integer")),
        };
        Ok(JobRequest {
            id: usize::try_from(int_field("id")?)
                .map_err(|_| malformed("`id` must be non-negative"))?,
            name: str_field("name")?,
            scenario: str_field("scenario")?,
            pattern: str_field("pattern")?,
            variant: str_field("variant")?,
            fault,
            max_iterations: usize::try_from(int_field("max_iterations")?)
                .map_err(|_| malformed("`max_iterations` must be non-negative"))?,
            deadline,
            retries: usize::try_from(int_field("retries")?)
                .map_err(|_| malformed("`retries` must be non-negative"))?,
            latency: Duration::from_micros(latency_us),
            trace_cache,
            test_parallelism,
        })
    }
}

/// Why a [`JobRequest`] could not be turned into a runnable [`Job`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResolveError {
    /// No resolver is registered for the request's scenario.
    UnknownScenario {
        /// The unresolvable scenario label.
        scenario: String,
    },
    /// The scenario's resolver rejected the coordinates (unknown variant,
    /// unknown fault, wrong pattern, …).
    Invalid {
        /// What the resolver objected to.
        detail: String,
    },
    /// The request's JSON encoding was structurally broken.
    Malformed {
        /// What failed to decode.
        detail: String,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::UnknownScenario { scenario } => {
                write!(f, "no resolver registered for scenario `{scenario}`")
            }
            ResolveError::Invalid { detail } => write!(f, "invalid job request: {detail}"),
            ResolveError::Malformed { detail } => {
                write!(f, "malformed job request: {detail}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// A scenario resolver: turns declarative coordinates back into the work
/// closure that builds and runs the session. `Sync` because a daemon
/// resolves from many connection threads against one shared registry.
pub type JobResolver = Box<dyn Fn(&JobRequest) -> Result<JobWork, ResolveError> + Send + Sync>;

/// Maps scenario labels to [`JobResolver`]s.
///
/// The registry is the trust boundary of the job API: everything before it
/// is data that can be logged, persisted, or shipped over a socket;
/// everything after it is process-local executable state. Registering a
/// scenario twice replaces the earlier resolver.
#[derive(Default)]
pub struct JobRegistry {
    resolvers: BTreeMap<String, JobResolver>,
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        JobRegistry::default()
    }

    /// Registers (or replaces) the resolver for a scenario.
    pub fn register(
        &mut self,
        scenario: impl Into<String>,
        resolver: impl Fn(&JobRequest) -> Result<JobWork, ResolveError> + Send + Sync + 'static,
    ) {
        self.resolvers.insert(scenario.into(), Box::new(resolver));
    }

    /// The registered scenario labels, sorted.
    pub fn scenarios(&self) -> Vec<&str> {
        self.resolvers.keys().map(String::as_str).collect()
    }

    /// Resolves a request into a runnable [`Job`].
    ///
    /// # Errors
    ///
    /// [`ResolveError::UnknownScenario`] when no resolver matches;
    /// whatever the resolver itself rejects otherwise.
    pub fn resolve(&self, request: &JobRequest) -> Result<Job, ResolveError> {
        let resolver =
            self.resolvers
                .get(&request.scenario)
                .ok_or_else(|| ResolveError::UnknownScenario {
                    scenario: request.scenario.clone(),
                })?;
        let work = resolver(request)?;
        Ok(Job {
            request: request.clone(),
            work,
        })
    }
}

impl fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobRegistry")
            .field("scenarios", &self.scenarios())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_core::{IntegrationReport, IntegrationStats, IntegrationVerdict};

    fn sample() -> JobRequest {
        JobRequest::new(3, "faulty/drop[x]")
            .with_scenario("railcab-convoy")
            .with_pattern("DistanceCoordination")
            .with_variant("faulty")
            .with_fault("drop[x]")
            .with_max_iterations(64)
            .with_deadline(Duration::from_secs(5))
            .with_retries(2)
            .with_latency(Duration::from_micros(500))
            .with_trace_cache(false)
            .with_test_parallelism(4)
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let request = sample();
        let decoded = JobRequest::from_json(&request.to_json()).unwrap();
        assert_eq!(decoded, request);
        // Baseline requests (no fault, no deadline) round-trip too.
        let baseline = JobRequest::new(0, "correct/baseline").with_scenario("s");
        assert_eq!(
            JobRequest::from_json(&baseline.to_json()).unwrap(),
            baseline
        );
        // Requests from clients that predate the trace cache decode to the
        // defaults: cache on, serial execution.
        let legacy_fields = match baseline.to_json() {
            Json::Object(fields) => fields
                .into_iter()
                .filter(|(k, _)| k != "trace_cache" && k != "test_parallelism")
                .collect(),
            _ => unreachable!(),
        };
        let decoded = JobRequest::from_json(&Json::Object(legacy_fields)).unwrap();
        assert!(decoded.trace_cache);
        assert_eq!(decoded.test_parallelism, 1);
    }

    #[test]
    fn from_json_rejects_bad_shapes() {
        let missing_version = Json::Object(vec![("id".into(), Json::Int(0))]);
        assert!(matches!(
            JobRequest::from_json(&missing_version),
            Err(ResolveError::Malformed { .. })
        ));
        let mut fields = match sample().to_json() {
            Json::Object(fields) => fields,
            _ => unreachable!(),
        };
        for (key, value) in fields.iter_mut() {
            if key == "v" {
                *value = Json::Int(99);
            }
        }
        let err = JobRequest::from_json(&Json::Object(fields)).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        let negative_deadline = {
            let mut fields = match sample().to_json() {
                Json::Object(fields) => fields,
                _ => unreachable!(),
            };
            for (key, value) in fields.iter_mut() {
                if key == "deadline_ms" {
                    *value = Json::Int(-1);
                }
            }
            Json::Object(fields)
        };
        assert!(JobRequest::from_json(&negative_deadline).is_err());
    }

    #[test]
    fn registry_resolves_known_scenarios_and_rejects_unknown_ones() {
        let mut registry = JobRegistry::new();
        registry.register("noop", |request| {
            if request.variant == "broken" {
                return Err(ResolveError::Invalid {
                    detail: "variant `broken` does not exist".into(),
                });
            }
            Ok(Box::new(|_ctx| {
                Ok(IntegrationReport {
                    verdict: IntegrationVerdict::Proven,
                    iterations: Vec::new(),
                    learned: Vec::new(),
                    stats: IntegrationStats::default(),
                })
            }))
        });
        assert_eq!(registry.scenarios(), ["noop"]);

        let job = registry
            .resolve(&JobRequest::new(0, "ok").with_scenario("noop"))
            .unwrap();
        assert_eq!(job.request.name, "ok");

        let unknown = registry
            .resolve(&JobRequest::new(1, "x").with_scenario("nope"))
            .unwrap_err();
        assert!(matches!(unknown, ResolveError::UnknownScenario { .. }));
        assert!(unknown.to_string().contains("nope"));

        let invalid = registry
            .resolve(
                &JobRequest::new(2, "bad")
                    .with_scenario("noop")
                    .with_variant("broken"),
            )
            .unwrap_err();
        assert!(matches!(invalid, ResolveError::Invalid { .. }));
    }
}
