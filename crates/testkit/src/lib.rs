//! Deterministic, dependency-free randomness for property-style tests.
//!
//! The workspace runs in hermetic environments without access to a crate
//! registry, so `proptest`/`rand` are not available. This crate provides the
//! two pieces the test suites actually need:
//!
//! * [`Rng`] — a splitmix64 generator with convenience samplers, fully
//!   deterministic from its seed;
//! * [`cases`] — runs a closure over `n` derived seeds and reports the
//!   failing seed on panic, so a failure is reproducible with
//!   [`Rng::with_seed`].
//!
//! There is no shrinking; generators should therefore keep their value
//! spaces small (as the original proptest strategies already did).

#![warn(missing_docs)]

/// A splitmix64 pseudo-random generator (deterministic, `Copy`-cheap).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform value in the given range, e.g. `rng.range(1..=5)`.
    pub fn range(&mut self, r: std::ops::RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*r.start(), *r.end());
        lo + self.below(hi - lo + 1)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % den as u64) < num as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A vector of `len` values drawn by `gen`.
    pub fn vec<T>(&mut self, len: usize, mut gen: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Runs `body` for `n` deterministic cases. Each case gets an [`Rng`]
/// seeded from the case index; on panic the failing seed is printed so the
/// case can be replayed in isolation with [`Rng::with_seed`].
pub fn cases(n: u64, body: impl Fn(&mut Rng)) {
    for seed in 0..n {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::with_seed(seed);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("testkit: case failed with seed {seed} (replay via Rng::with_seed({seed}))");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::with_seed(42);
        let mut b = Rng::with_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_and_range_are_in_bounds() {
        let mut rng = Rng::with_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(5) < 5);
            let v = rng.range(2..=4);
            assert!((2..=4).contains(&v));
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn cases_runs_all_seeds() {
        let mut count = std::sync::atomic::AtomicUsize::new(0);
        cases(10, |_rng| {
            count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(*count.get_mut(), 10);
    }
}
