//! Real-Time Statechart (RTSC) model and builder.
//!
//! Mechatronic UML specifies role and component behaviour as Real-Time
//! Statecharts: statecharts with clocks, time guards, state invariants and
//! deadlines. The paper maps RTSC to discrete-time I/O automata where every
//! transition takes exactly one time unit (Section 2); this module provides
//! the RTSC surface syntax and [`crate::flatten`] performs that mapping.
//!
//! Supported features:
//!
//! * flat and one-level composite states (`noConvoy` with substates
//!   `default`, `wait` → flattened names `noConvoy::default`), with an
//!   initial substate per composite;
//! * discrete clocks with guards (`c ⋈ n`), resets, and per-state
//!   invariants (`c ≤ n`) that *force* progress (urgency): a state may not
//!   be occupied at a clock valuation violating its invariant;
//! * transitions that receive a set of input signals and send a set of
//!   output signals in the same time unit;
//! * implicit *stay* steps: unless `deny_stay` is set, a state may idle one
//!   time unit with the empty interaction (clocks still advance).

use muml_automata::{SignalSet, Universe};

/// Comparison operator of a clock constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `clock < bound`
    Lt,
    /// `clock ≤ bound`
    Le,
    /// `clock = bound`
    Eq,
    /// `clock ≥ bound`
    Ge,
    /// `clock > bound`
    Gt,
}

impl CmpOp {
    /// Evaluates `value ⋈ bound`.
    pub fn eval(self, value: u32, bound: u32) -> bool {
        match self {
            CmpOp::Lt => value < bound,
            CmpOp::Le => value <= bound,
            CmpOp::Eq => value == bound,
            CmpOp::Ge => value >= bound,
            CmpOp::Gt => value > bound,
        }
    }
}

/// A constraint `clock ⋈ bound` used as a transition guard or state
/// invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockConstraint {
    /// Index of the clock in the statechart's clock list.
    pub clock: usize,
    /// The comparison.
    pub op: CmpOp,
    /// The constant bound (time units).
    pub bound: u32,
}

/// A state of the statechart (a leaf, or a composite containing substates).
#[derive(Debug, Clone)]
pub struct RtscState {
    /// Simple name (composites produce `parent::child` leaf names).
    pub name: String,
    /// Index of the parent composite, if any.
    pub parent: Option<usize>,
    /// For composites: the initial substate index.
    pub initial_child: Option<usize>,
    /// Invariants that must hold whenever the state is occupied.
    pub invariants: Vec<ClockConstraint>,
    /// Atomic propositions attached to the state (propagated to flattened
    /// leaf states; a composite's props apply to all its leaves).
    pub props: Vec<String>,
    /// If `true`, the implicit idle step is not available in this state.
    pub deny_stay: bool,
}

/// A transition of the statechart.
#[derive(Debug, Clone)]
pub struct RtscTransition {
    /// Source state index (leaf or composite — composite means "from every
    /// leaf below").
    pub from: usize,
    /// Target state index (a composite target enters its initial substate).
    pub to: usize,
    /// Input signals consumed.
    pub receives: SignalSet,
    /// Output signals produced.
    pub sends: SignalSet,
    /// Clock guards, all of which must hold at the pre-state valuation.
    pub guards: Vec<ClockConstraint>,
    /// Clocks reset (to 0) by the transition.
    pub resets: Vec<usize>,
}

/// A Real-Time Statechart.
///
/// Build with [`RtscBuilder`]; flatten to an
/// [`Automaton`](muml_automata::Automaton) with
/// [`flatten`](crate::flatten).
#[derive(Debug, Clone)]
pub struct Rtsc {
    pub(crate) universe: Universe,
    pub(crate) name: String,
    pub(crate) inputs: SignalSet,
    pub(crate) outputs: SignalSet,
    pub(crate) clocks: Vec<String>,
    pub(crate) states: Vec<RtscState>,
    pub(crate) transitions: Vec<RtscTransition>,
    pub(crate) initial: usize,
}

impl Rtsc {
    /// The statechart name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input signals.
    pub fn inputs(&self) -> SignalSet {
        self.inputs
    }

    /// Declared output signals.
    pub fn outputs(&self) -> SignalSet {
        self.outputs
    }

    /// Number of (leaf and composite) states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of clocks.
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }

    /// The universe the statechart was built against.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The fully qualified (leaf) name of state `i`: `parent::child` for
    /// substates.
    pub fn qualified_name(&self, i: usize) -> String {
        match self.states[i].parent {
            Some(p) => format!("{}::{}", self.states[p].name, self.states[i].name),
            None => self.states[i].name.clone(),
        }
    }

    /// Whether state `i` is a leaf (has no substates).
    pub fn is_leaf(&self, i: usize) -> bool {
        self.states[i].initial_child.is_none()
    }

    /// Finds a state index by (qualified) name, e.g. `noConvoy::wait`.
    pub fn find_leaf(&self, path: &str) -> Option<usize> {
        (0..self.states.len()).find(|&i| self.qualified_name(i) == path)
    }

    /// The parent composite of state `i`, if any.
    pub fn state_parent(&self, i: usize) -> Option<usize> {
        self.states[i].parent
    }

    /// All transitions of the statechart.
    pub fn transitions(&self) -> &[RtscTransition] {
        &self.transitions
    }

    /// Index of the declared initial state.
    pub fn initial_index(&self) -> usize {
        self.initial
    }

    /// The leaf a transition entering state `i` actually lands in (the
    /// initial substate chain of composites).
    pub fn entry_leaf(&self, mut i: usize) -> usize {
        while let Some(c) = self.states[i].initial_child {
            i = c;
        }
        i
    }

    /// All leaf indices below state `i` (or `i` itself if a leaf).
    pub fn leaves_below(&self, i: usize) -> Vec<usize> {
        if self.is_leaf(i) {
            return vec![i];
        }
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == Some(i))
            .flat_map(|(j, _)| self.leaves_below(j))
            .collect()
    }

    /// The invariants effective at leaf `i` (its own plus its ancestors').
    pub fn effective_invariants(&self, i: usize) -> Vec<&ClockConstraint> {
        let mut out: Vec<&ClockConstraint> = self.states[i].invariants.iter().collect();
        let mut cur = self.states[i].parent;
        while let Some(p) = cur {
            out.extend(self.states[p].invariants.iter());
            cur = self.states[p].parent;
        }
        out
    }

    /// The props effective at leaf `i` (its own plus its ancestors').
    pub fn effective_props(&self, i: usize) -> Vec<&str> {
        let mut out: Vec<&str> = self.states[i].props.iter().map(|s| s.as_str()).collect();
        let mut cur = self.states[i].parent;
        while let Some(p) = cur {
            out.extend(self.states[p].props.iter().map(|s| s.as_str()));
            cur = self.states[p].parent;
        }
        out
    }

    /// Whether staying is denied at leaf `i` (directly or by an ancestor).
    pub fn stay_denied(&self, i: usize) -> bool {
        if self.states[i].deny_stay {
            return true;
        }
        let mut cur = self.states[i].parent;
        while let Some(p) = cur {
            if self.states[p].deny_stay {
                return true;
            }
            cur = self.states[p].parent;
        }
        false
    }

    /// Largest constant any constraint compares clock `c` against (used by
    /// the flattener to clamp clock values).
    pub fn max_constant(&self, c: usize) -> u32 {
        let mut m = 0;
        for s in &self.states {
            for inv in &s.invariants {
                if inv.clock == c {
                    m = m.max(inv.bound);
                }
            }
        }
        for t in &self.transitions {
            for g in &t.guards {
                if g.clock == c {
                    m = m.max(g.bound);
                }
            }
        }
        m
    }
}

/// Error produced by [`RtscBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtscBuildError(pub String);

impl std::fmt::Display for RtscBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "statechart build error: {}", self.0)
    }
}

impl std::error::Error for RtscBuildError {}

/// Fluent builder for [`Rtsc`].
///
/// # Examples
///
/// ```
/// use muml_rtsc::RtscBuilder;
/// use muml_automata::Universe;
/// let u = Universe::new();
/// let sc = RtscBuilder::new(&u, "front")
///     .input("convoyProposal")
///     .output("startConvoy")
///     .state("noConvoy")
///     .initial("noConvoy")
///     .state("answer")
///     .transition("noConvoy", "answer", ["convoyProposal"], [])
///     .transition("answer", "noConvoy", [], ["startConvoy"])
///     .build()
///     .unwrap();
/// assert_eq!(sc.state_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RtscBuilder {
    universe: Universe,
    name: String,
    inputs: SignalSet,
    outputs: SignalSet,
    clocks: Vec<String>,
    states: Vec<RtscState>,
    transitions: Vec<RtscTransition>,
    initial: Option<String>,
    errors: Vec<String>,
}

impl RtscBuilder {
    /// Starts a statechart named `name` in universe `u`.
    pub fn new(u: &Universe, name: &str) -> Self {
        RtscBuilder {
            universe: u.clone(),
            name: name.to_owned(),
            inputs: SignalSet::EMPTY,
            outputs: SignalSet::EMPTY,
            clocks: Vec::new(),
            states: Vec::new(),
            transitions: Vec::new(),
            initial: None,
            errors: Vec::new(),
        }
    }

    /// Declares an input signal.
    #[must_use]
    pub fn input(mut self, name: &str) -> Self {
        self.inputs.insert(self.universe.signal(name));
        self
    }

    /// Declares an output signal.
    #[must_use]
    pub fn output(mut self, name: &str) -> Self {
        self.outputs.insert(self.universe.signal(name));
        self
    }

    /// Declares a clock. Clocks start at 0 and advance by one per time unit.
    #[must_use]
    pub fn clock(mut self, name: &str) -> Self {
        if !self.clocks.iter().any(|c| c == name) {
            self.clocks.push(name.to_owned());
        }
        self
    }

    fn find_state(&self, path: &str) -> Option<usize> {
        if let Some((parent, child)) = path.split_once("::") {
            let p = self
                .states
                .iter()
                .position(|s| s.name == parent && s.parent.is_none())?;
            self.states
                .iter()
                .position(|s| s.name == child && s.parent == Some(p))
        } else {
            self.states
                .iter()
                .position(|s| s.name == path && s.parent.is_none())
        }
    }

    /// Adds a top-level state.
    #[must_use]
    pub fn state(mut self, name: &str) -> Self {
        if self.find_state(name).is_none() {
            self.states.push(RtscState {
                name: name.to_owned(),
                parent: None,
                initial_child: None,
                invariants: Vec::new(),
                props: Vec::new(),
                deny_stay: false,
            });
        }
        self
    }

    /// Adds a substate `parent::name`; the first substate added becomes the
    /// composite's initial substate.
    #[must_use]
    pub fn substate(mut self, parent: &str, name: &str) -> Self {
        let p = match self.find_state(parent) {
            Some(p) => p,
            None => {
                self = self.state(parent);
                self.find_state(parent).expect("just added")
            }
        };
        let qualified = format!("{parent}::{name}");
        if self.find_state(&qualified).is_none() {
            self.states.push(RtscState {
                name: name.to_owned(),
                parent: Some(p),
                initial_child: None,
                invariants: Vec::new(),
                props: Vec::new(),
                deny_stay: false,
            });
            let idx = self.states.len() - 1;
            if self.states[p].initial_child.is_none() {
                self.states[p].initial_child = Some(idx);
            }
        }
        self
    }

    /// Marks the initial state (leaf or composite).
    #[must_use]
    pub fn initial(mut self, name: &str) -> Self {
        self.initial = Some(name.to_owned());
        self
    }

    /// Attaches a proposition to a state (applies to all leaves below it).
    #[must_use]
    pub fn prop(mut self, state: &str, prop: &str) -> Self {
        match self.find_state(state) {
            Some(i) => self.states[i].props.push(prop.to_owned()),
            None => self.errors.push(format!("prop on unknown state `{state}`")),
        }
        self
    }

    /// Adds an invariant `clock op bound` to a state.
    #[must_use]
    pub fn invariant(mut self, state: &str, clock: &str, op: CmpOp, bound: u32) -> Self {
        let c = self.clocks.iter().position(|x| x == clock);
        match (self.find_state(state), c) {
            (Some(i), Some(c)) => self.states[i].invariants.push(ClockConstraint {
                clock: c,
                op,
                bound,
            }),
            (None, _) => self
                .errors
                .push(format!("invariant on unknown state `{state}`")),
            (_, None) => self
                .errors
                .push(format!("invariant uses unknown clock `{clock}`")),
        }
        self
    }

    /// Forbids the implicit idle step in a state (urgent state).
    #[must_use]
    pub fn deny_stay(mut self, state: &str) -> Self {
        match self.find_state(state) {
            Some(i) => self.states[i].deny_stay = true,
            None => self
                .errors
                .push(format!("deny_stay on unknown state `{state}`")),
        }
        self
    }

    /// Adds a transition receiving `receives` and sending `sends`.
    #[must_use]
    pub fn transition<'a, A, B>(self, from: &str, to: &str, receives: A, sends: B) -> Self
    where
        A: IntoIterator<Item = &'a str>,
        B: IntoIterator<Item = &'a str>,
    {
        self.transition_timed(from, to, receives, sends, [], [])
    }

    /// Adds a transition with clock guards and resets. Guards are
    /// `(clock, op, bound)` triples; resets are clock names.
    #[must_use]
    pub fn transition_timed<'a, A, B, G, R>(
        mut self,
        from: &str,
        to: &str,
        receives: A,
        sends: B,
        guards: G,
        resets: R,
    ) -> Self
    where
        A: IntoIterator<Item = &'a str>,
        B: IntoIterator<Item = &'a str>,
        G: IntoIterator<Item = (&'a str, CmpOp, u32)>,
        R: IntoIterator<Item = &'a str>,
    {
        let rec: SignalSet = receives
            .into_iter()
            .map(|n| self.universe.signal(n))
            .collect();
        let snd: SignalSet = sends.into_iter().map(|n| self.universe.signal(n)).collect();
        if !rec.is_subset(self.inputs) {
            self.errors.push(format!(
                "transition {from}→{to} receives undeclared signals"
            ));
        }
        if !snd.is_subset(self.outputs) {
            self.errors
                .push(format!("transition {from}→{to} sends undeclared signals"));
        }
        let f = self.find_state(from);
        let t = self.find_state(to);
        let mut gs = Vec::new();
        for (cn, op, bound) in guards {
            match self.clocks.iter().position(|x| x == cn) {
                Some(c) => gs.push(ClockConstraint {
                    clock: c,
                    op,
                    bound,
                }),
                None => self.errors.push(format!("guard uses unknown clock `{cn}`")),
            }
        }
        let mut rs = Vec::new();
        for cn in resets {
            match self.clocks.iter().position(|x| x == cn) {
                Some(c) => rs.push(c),
                None => self.errors.push(format!("reset uses unknown clock `{cn}`")),
            }
        }
        match (f, t) {
            (Some(f), Some(t)) => self.transitions.push(RtscTransition {
                from: f,
                to: t,
                receives: rec,
                sends: snd,
                guards: gs,
                resets: rs,
            }),
            (None, _) => self
                .errors
                .push(format!("transition from unknown state `{from}`")),
            (_, None) => self
                .errors
                .push(format!("transition to unknown state `{to}`")),
        }
        self
    }

    /// Finalizes the statechart.
    ///
    /// # Errors
    ///
    /// Reports the first recorded construction error (unknown states or
    /// clocks, undeclared signals, missing initial state).
    pub fn build(self) -> Result<Rtsc, RtscBuildError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(RtscBuildError(e));
        }
        let initial_name = self
            .initial
            .ok_or_else(|| RtscBuildError("no initial state".into()))?;
        let initial = self
            .states
            .iter()
            .position(|s| s.name == initial_name && s.parent.is_none())
            .ok_or_else(|| RtscBuildError(format!("unknown initial state `{initial_name}`")))?;
        if self.states.is_empty() {
            return Err(RtscBuildError("statechart has no states".into()));
        }
        Ok(Rtsc {
            universe: self.universe,
            name: self.name,
            inputs: self.inputs,
            outputs: self.outputs,
            clocks: self.clocks,
            states: self.states,
            transitions: self.transitions,
            initial,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_flat_statechart() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .input("a")
            .output("b")
            .state("s0")
            .initial("s0")
            .state("s1")
            .transition("s0", "s1", ["a"], ["b"])
            .build()
            .unwrap();
        assert_eq!(sc.state_count(), 2);
        assert_eq!(sc.qualified_name(0), "s0");
        assert!(sc.is_leaf(0));
    }

    #[test]
    fn composite_states_and_entry() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .state("noConvoy")
            .substate("noConvoy", "default")
            .substate("noConvoy", "wait")
            .initial("noConvoy")
            .state("convoy")
            .transition("noConvoy::wait", "convoy", [], [])
            .build()
            .unwrap();
        let nc = 0;
        assert!(!sc.is_leaf(nc));
        let entry = sc.entry_leaf(nc);
        assert_eq!(sc.qualified_name(entry), "noConvoy::default");
        let leaves = sc.leaves_below(nc);
        assert_eq!(leaves.len(), 2);
    }

    #[test]
    fn effective_invariants_and_props_inherit() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .clock("c")
            .state("outer")
            .prop("outer", "inOuter")
            .invariant("outer", "c", CmpOp::Le, 5)
            .substate("outer", "inner")
            .prop("outer::inner", "inInner")
            .initial("outer")
            .build()
            .unwrap();
        let inner = sc.find_leaf("outer::inner").unwrap();
        assert_eq!(sc.effective_invariants(inner).len(), 1);
        let props = sc.effective_props(inner);
        assert!(props.contains(&"inInner") && props.contains(&"inOuter"));
    }

    #[test]
    fn errors_are_reported() {
        let u = Universe::new();
        assert!(RtscBuilder::new(&u, "m").build().is_err());
        assert!(RtscBuilder::new(&u, "m")
            .state("s")
            .initial("ghost")
            .build()
            .is_err());
        assert!(RtscBuilder::new(&u, "m")
            .state("s")
            .initial("s")
            .transition("s", "t", [], [])
            .build()
            .is_err());
        assert!(RtscBuilder::new(&u, "m")
            .state("s")
            .initial("s")
            .transition("s", "s", ["undeclared"], [])
            .build()
            .is_err());
        assert!(RtscBuilder::new(&u, "m")
            .state("s")
            .initial("s")
            .invariant("s", "noclock", CmpOp::Le, 1)
            .build()
            .is_err());
    }

    #[test]
    fn max_constant_scans_guards_and_invariants() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .clock("c")
            .state("s")
            .initial("s")
            .invariant("s", "c", CmpOp::Le, 3)
            .transition_timed("s", "s", [], [], [("c", CmpOp::Ge, 7)], ["c"])
            .build()
            .unwrap();
        assert_eq!(sc.max_constant(0), 7);
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(!CmpOp::Gt.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
    }
}
