//! Flattening RTSC to discrete-time I/O automata.
//!
//! This performs the mapping the paper assumes in Section 2: every RTSC
//! transition (and every implicit idle step) becomes one automaton
//! transition taking exactly one time unit. Clocks are unrolled: a flattened
//! state is a pair `(leaf state, clock valuation)`, with each clock clamped
//! at one above its largest compared constant (valuations beyond are
//! indistinguishable).
//!
//! *Urgency.* A state invariant restricts which valuations may occupy the
//! state. If at some reachable valuation neither a transition is enabled
//! (with its target invariant satisfied) nor staying is allowed, the
//! flattened state has no outgoing transitions — a time-stopping deadlock
//! that the model checker will surface via the `deadlock` predicate.

use muml_automata::{Automaton, AutomatonBuilder, Guard, Label};

use crate::model::{ClockConstraint, Rtsc};

/// Options for [`flatten`].
#[derive(Debug, Clone)]
pub struct FlattenOptions {
    /// Maximum number of flattened states.
    pub max_states: usize,
}

impl Default for FlattenOptions {
    fn default() -> Self {
        FlattenOptions {
            max_states: 500_000,
        }
    }
}

/// Error from [`flatten`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlattenError {
    /// The unrolled state space exceeded [`FlattenOptions::max_states`].
    TooManyStates(usize),
    /// Building the result automaton failed (propagated kernel error).
    Build(String),
}

impl std::fmt::Display for FlattenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlattenError::TooManyStates(n) => {
                write!(f, "clock unrolling exceeded {n} states")
            }
            FlattenError::Build(e) => write!(f, "flattening failed: {e}"),
        }
    }
}

impl std::error::Error for FlattenError {}

fn sat(constraints: &[&ClockConstraint], v: &[u32]) -> bool {
    constraints.iter().all(|c| c.op.eval(v[c.clock], c.bound))
}

/// Flattens `sc` with default options.
///
/// # Errors
///
/// See [`flatten_with`].
pub fn flatten(sc: &Rtsc) -> Result<Automaton, FlattenError> {
    flatten_with(sc, &FlattenOptions::default())
}

/// Flattens `sc` into a discrete-time automaton.
///
/// State naming: the qualified leaf name, suffixed with `@c₀=…,c₁=…` only
/// when the statechart has clocks and the valuation is not all-zero (so
/// clock-free models keep the paper's plain state names).
///
/// # Errors
///
/// [`FlattenError::TooManyStates`] when clock unrolling explodes beyond the
/// option cap.
pub fn flatten_with(sc: &Rtsc, opts: &FlattenOptions) -> Result<Automaton, FlattenError> {
    use std::collections::HashMap;

    let nclocks = sc.clock_count();
    let clamp: Vec<u32> = (0..nclocks).map(|c| sc.max_constant(c) + 1).collect();

    let name_of = |leaf: usize, v: &[u32]| -> String {
        let base = sc.qualified_name(leaf);
        if nclocks == 0 || v.iter().all(|&x| x == 0) {
            base
        } else {
            let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("{}@{}", base, parts.join(","))
        }
    };

    let advance = |v: &[u32], resets: &[usize]| -> Vec<u32> {
        (0..nclocks)
            .map(|c| {
                if resets.contains(&c) {
                    0
                } else {
                    (v[c] + 1).min(clamp[c])
                }
            })
            .collect()
    };

    let init_leaf = sc.entry_leaf(sc.initial_index());
    let init_v = vec![0u32; nclocks];

    // First pass: explore reachable (leaf, valuation) pairs into plain data.
    let mut index: HashMap<(usize, Vec<u32>), String> = HashMap::new();
    let mut state_order: Vec<(String, usize)> = Vec::new(); // (name, leaf)
    let mut worklist = vec![(init_leaf, init_v.clone())];
    let init_name = name_of(init_leaf, &init_v);
    index.insert((init_leaf, init_v), init_name.clone());
    state_order.push((init_name.clone(), init_leaf));
    let mut edges: Vec<(String, Label, String)> = Vec::new();

    while let Some((leaf, v)) = worklist.pop() {
        if index.len() > opts.max_states {
            return Err(FlattenError::TooManyStates(opts.max_states));
        }
        let from_name = index[&(leaf, v.clone())].clone();

        let push_target = |worklist: &mut Vec<(usize, Vec<u32>)>,
                           index: &mut HashMap<(usize, Vec<u32>), String>,
                           state_order: &mut Vec<(String, usize)>,
                           leaf: usize,
                           v: Vec<u32>|
         -> String {
            if let Some(n) = index.get(&(leaf, v.clone())) {
                return n.clone();
            }
            let n = name_of(leaf, &v);
            index.insert((leaf, v.clone()), n.clone());
            state_order.push((n.clone(), leaf));
            worklist.push((leaf, v));
            n
        };

        // Explicit transitions: from this leaf or any ancestor composite.
        let mut sources = vec![leaf];
        {
            let mut cur = sc.state_parent(leaf);
            while let Some(p) = cur {
                sources.push(p);
                cur = sc.state_parent(p);
            }
        }
        for t in sc.transitions() {
            if !sources.contains(&t.from) {
                continue;
            }
            let guards: Vec<&ClockConstraint> = t.guards.iter().collect();
            if !sat(&guards, &v) {
                continue;
            }
            let target_leaf = sc.entry_leaf(t.to);
            let nv = advance(&v, &t.resets);
            let tgt_inv = sc.effective_invariants(target_leaf);
            if !sat(&tgt_inv, &nv) {
                continue; // entering would violate the target invariant
            }
            let tname = push_target(&mut worklist, &mut index, &mut state_order, target_leaf, nv);
            edges.push((from_name.clone(), Label::new(t.receives, t.sends), tname));
        }

        // Implicit stay step.
        if !sc.stay_denied(leaf) {
            let nv = advance(&v, &[]);
            let inv = sc.effective_invariants(leaf);
            if sat(&inv, &nv) {
                let tname = push_target(&mut worklist, &mut index, &mut state_order, leaf, nv);
                edges.push((from_name.clone(), Label::EMPTY, tname));
            }
        }
    }

    // Second pass: build the automaton.
    let mut b = AutomatonBuilder::new(sc.universe(), sc.name());
    for s in sc.inputs().iter() {
        b = b.input(&sc.universe().signal_name(s));
    }
    for s in sc.outputs().iter() {
        b = b.output(&sc.universe().signal_name(s));
    }
    for (name, leaf) in &state_order {
        b = b.state(name);
        for p in sc.effective_props(*leaf) {
            b = b.prop(name, p);
        }
    }
    b = b.initial(&init_name);
    for (from, l, to) in edges {
        b = b.transition_guard(&from, Guard::Exact(l), &to);
    }
    b.build().map_err(|e| FlattenError::Build(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CmpOp, RtscBuilder};
    use muml_automata::Universe;

    #[test]
    fn clock_free_statechart_keeps_names() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "front")
            .input("proposal")
            .output("reject")
            .state("noConvoy")
            .initial("noConvoy")
            .state("answer")
            .deny_stay("answer")
            .transition("noConvoy", "answer", ["proposal"], [])
            .transition("answer", "noConvoy", [], ["reject"])
            .build()
            .unwrap();
        let m = flatten(&sc).unwrap();
        assert!(m.find_state("noConvoy").is_some());
        assert!(m.find_state("answer").is_some());
        assert_eq!(m.state_count(), 2);
        // noConvoy: stay + receive = 2 transitions; answer: only the send.
        let nc = m.find_state("noConvoy").unwrap();
        assert_eq!(m.transitions_from(nc).len(), 2);
        let an = m.find_state("answer").unwrap();
        assert_eq!(m.transitions_from(an).len(), 1);
    }

    #[test]
    fn composite_entry_goes_to_default() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .input("go")
            .state("noConvoy")
            .substate("noConvoy", "default")
            .substate("noConvoy", "wait")
            .initial("noConvoy")
            .state("convoy")
            .transition("noConvoy::default", "noConvoy::wait", ["go"], [])
            .transition("noConvoy", "convoy", [], []) // from the composite
            .build()
            .unwrap();
        let m = flatten(&sc).unwrap();
        assert!(m.find_state("noConvoy::default").is_some());
        let d = m.find_state("noConvoy::default").unwrap();
        assert!(m.initial_states().contains(&d));
        // The composite-level transition is available from both substates.
        let w = m.find_state("noConvoy::wait").unwrap();
        let conv = m.find_state("convoy").unwrap();
        assert!(m.successors(w, Label::EMPTY).contains(&conv));
        assert!(m.successors(d, Label::EMPTY).contains(&conv));
    }

    #[test]
    fn clock_guard_delays_transition() {
        let u = Universe::new();
        // s --(c≥2)--> t: reachable only after idling 2 ticks.
        let sc = RtscBuilder::new(&u, "m")
            .output("fire")
            .clock("c")
            .state("s")
            .initial("s")
            .state("t")
            .transition_timed("s", "t", [], ["fire"], [("c", CmpOp::Ge, 2)], [])
            .build()
            .unwrap();
        let m = flatten(&sc).unwrap();
        // s@0 --stay--> s@1 --stay--> s@2 --fire--> t
        let s0 = m.find_state("s").unwrap();
        assert_eq!(m.transitions_from(s0).len(), 1); // only stay
        let fire = Label::new(muml_automata::SignalSet::EMPTY, u.signals(["fire"]));
        let s2 = m.find_state("s@2").unwrap();
        assert!(m.enables(s2, fire));
        // t is entered with the clock at its clamp value (3 = max const + 1)
        assert!(m.find_state("t@3").is_some());
    }

    #[test]
    fn invariant_forces_urgency() {
        let u = Universe::new();
        // invariant c ≤ 1: staying beyond violates it → after one stay, only
        // the transition remains.
        let sc = RtscBuilder::new(&u, "m")
            .output("out")
            .clock("c")
            .state("s")
            .initial("s")
            .invariant("s", "c", CmpOp::Le, 1)
            .state("done")
            .transition_timed("s", "done", [], ["out"], [], [])
            .build()
            .unwrap();
        let m = flatten(&sc).unwrap();
        let s1 = m.find_state("s@1").unwrap();
        // at s@1, staying would make c=2 > 1: only the explicit transition.
        assert_eq!(m.transitions_from(s1).len(), 1);
        let out = Label::new(muml_automata::SignalSet::EMPTY, u.signals(["out"]));
        assert!(m.enables(s1, out));
    }

    #[test]
    fn time_stopping_deadlock_is_exposed() {
        let u = Universe::new();
        // invariant c ≤ 0 and no transitions: immediate time stop.
        let sc = RtscBuilder::new(&u, "m")
            .clock("c")
            .state("s")
            .initial("s")
            .invariant("s", "c", CmpOp::Le, 0)
            .build()
            .unwrap();
        let m = flatten(&sc).unwrap();
        let s = m.find_state("s").unwrap();
        assert!(m.is_deadlock(s));
    }

    #[test]
    fn clock_reset_on_transition() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .clock("c")
            .output("tick")
            .state("s")
            .initial("s")
            .transition_timed("s", "s", [], ["tick"], [("c", CmpOp::Ge, 1)], ["c"])
            .build()
            .unwrap();
        let m = flatten(&sc).unwrap();
        // cycle: s@0 → s@1 → (tick, reset) → s@0
        let s0 = m.find_state("s").unwrap();
        let s1 = m.find_state("s@1").unwrap();
        let tick = Label::new(muml_automata::SignalSet::EMPTY, u.signals(["tick"]));
        assert!(m.enables(s1, tick));
        assert_eq!(m.successors(s1, tick), vec![s0]);
        // clamping keeps the space finite
        assert!(m.state_count() <= 3);
    }

    #[test]
    fn entering_state_with_violated_invariant_is_blocked() {
        let u = Universe::new();
        // t requires c ≤ 0, but the transition advances c to 1 without reset
        // → transition can never be taken; with a reset it can.
        let blocked = RtscBuilder::new(&u, "m")
            .clock("c")
            .state("s")
            .initial("s")
            .state("t")
            .invariant("t", "c", CmpOp::Le, 0)
            .transition_timed("s", "t", [], [], [], [])
            .build()
            .unwrap();
        let m = flatten(&blocked).unwrap();
        assert!(m.find_state("t").is_none());

        let allowed = RtscBuilder::new(&u, "m2")
            .clock("c")
            .state("s")
            .initial("s")
            .state("t")
            .invariant("t", "c", CmpOp::Le, 0)
            .transition_timed("s", "t", [], [], [], ["c"])
            .build()
            .unwrap();
        let m2 = flatten(&allowed).unwrap();
        assert!(m2.find_state("t").is_some());
    }
}
