//! Static analysis of Real-Time Statecharts.
//!
//! Catches modelling mistakes before flattening: unreachable states,
//! guards that can never fire, urgent states without outgoing transitions
//! (guaranteed time-stopping deadlocks), and invariants that forbid even
//! entering a state. The checks are heuristic-free — every diagnostic is a
//! definite problem or definite dead code.

use crate::model::{CmpOp, Rtsc};

/// A diagnostic produced by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// The state can never be reached from the initial state (ignoring
    /// clock constraints — unreachable even in the untimed abstraction).
    UnreachableState {
        /// Qualified state name.
        state: String,
    },
    /// The transition's guards are contradictory (e.g. `c < 2 ∧ c ≥ 5`) —
    /// it can never fire.
    UnsatisfiableGuard {
        /// Qualified source state name.
        from: String,
        /// Qualified target state name.
        to: String,
    },
    /// The state denies staying but has no outgoing transitions: entering
    /// it stops time (a guaranteed deadlock).
    UrgentSink {
        /// Qualified state name.
        state: String,
    },
    /// The state's invariant excludes every clock valuation that any
    /// incoming transition could enter with clock value 0 or later — with
    /// a bound below zero this is vacuous; practically: `c < 0`-style
    /// invariants that nothing can satisfy.
    UnsatisfiableInvariant {
        /// Qualified state name.
        state: String,
    },
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Diagnostic::UnreachableState { state } => {
                write!(f, "state `{state}` is unreachable")
            }
            Diagnostic::UnsatisfiableGuard { from, to } => {
                write!(f, "transition `{from}` → `{to}` has an unsatisfiable guard")
            }
            Diagnostic::UrgentSink { state } => write!(
                f,
                "state `{state}` denies staying but has no outgoing transitions (time stop)"
            ),
            Diagnostic::UnsatisfiableInvariant { state } => {
                write!(f, "state `{state}` has an unsatisfiable invariant")
            }
        }
    }
}

/// Whether a set of constraints on a single clock admits some value in
/// `0..=horizon`.
fn satisfiable(constraints: &[(CmpOp, u32)], horizon: u32) -> bool {
    (0..=horizon).any(|v| constraints.iter().all(|(op, b)| op.eval(v, *b)))
}

/// Runs all static checks on `sc`.
pub fn validate(sc: &Rtsc) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let horizon = (0..sc.clock_count())
        .map(|c| sc.max_constant(c) + 1)
        .max()
        .unwrap_or(0);

    // Reachability in the untimed abstraction: leaves reachable via
    // transitions (transitions from composites apply to all their leaves;
    // targets enter their default leaf).
    let init = sc.entry_leaf(sc.initial_index());
    let mut reachable = vec![false; sc.state_count()];
    let mut stack = vec![init];
    reachable[init] = true;
    while let Some(leaf) = stack.pop() {
        let mut sources = vec![leaf];
        let mut cur = sc.state_parent(leaf);
        while let Some(p) = cur {
            sources.push(p);
            cur = sc.state_parent(p);
        }
        for t in sc.transitions() {
            if !sources.contains(&t.from) {
                continue;
            }
            let target = sc.entry_leaf(t.to);
            if !reachable[target] {
                reachable[target] = true;
                stack.push(target);
            }
        }
    }
    for (i, &r) in reachable.iter().enumerate() {
        if sc.is_leaf(i) && !r {
            out.push(Diagnostic::UnreachableState {
                state: sc.qualified_name(i),
            });
        }
    }

    // Guard satisfiability (per clock; guards on distinct clocks are
    // independent).
    for t in sc.transitions() {
        let mut per_clock: std::collections::HashMap<usize, Vec<(CmpOp, u32)>> =
            std::collections::HashMap::new();
        for g in &t.guards {
            per_clock.entry(g.clock).or_default().push((g.op, g.bound));
        }
        if per_clock.values().any(|cs| !satisfiable(cs, horizon)) {
            out.push(Diagnostic::UnsatisfiableGuard {
                from: sc.qualified_name(t.from),
                to: sc.qualified_name(t.to),
            });
        }
    }

    // Urgent sinks and unsatisfiable invariants (reachable leaves only —
    // unreachable ones are already reported).
    for (i, &r) in reachable.iter().enumerate() {
        if !sc.is_leaf(i) || !r {
            continue;
        }
        let has_outgoing = {
            let mut sources = vec![i];
            let mut cur = sc.state_parent(i);
            while let Some(p) = cur {
                sources.push(p);
                cur = sc.state_parent(p);
            }
            sc.transitions().iter().any(|t| sources.contains(&t.from))
        };
        if sc.stay_denied(i) && !has_outgoing {
            out.push(Diagnostic::UrgentSink {
                state: sc.qualified_name(i),
            });
        }
        let mut per_clock: std::collections::HashMap<usize, Vec<(CmpOp, u32)>> =
            std::collections::HashMap::new();
        for inv in sc.effective_invariants(i) {
            per_clock
                .entry(inv.clock)
                .or_default()
                .push((inv.op, inv.bound));
        }
        if per_clock.values().any(|cs| !satisfiable(cs, horizon)) {
            out.push(Diagnostic::UnsatisfiableInvariant {
                state: sc.qualified_name(i),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RtscBuilder;
    use muml_automata::Universe;

    #[test]
    fn clean_statechart_has_no_diagnostics() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .input("a")
            .state("s0")
            .initial("s0")
            .state("s1")
            .transition("s0", "s1", ["a"], [])
            .transition("s1", "s0", [], [])
            .build()
            .unwrap();
        assert!(validate(&sc).is_empty());
    }

    #[test]
    fn unreachable_state_reported() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .state("s0")
            .initial("s0")
            .state("island")
            .build()
            .unwrap();
        let diags = validate(&sc);
        assert!(diags
            .iter()
            .any(|d| matches!(d, Diagnostic::UnreachableState { state } if state == "island")));
    }

    #[test]
    fn contradictory_guard_reported() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .clock("c")
            .state("s0")
            .initial("s0")
            .state("s1")
            .transition_timed(
                "s0",
                "s1",
                [],
                [],
                [("c", CmpOp::Lt, 2), ("c", CmpOp::Ge, 5)],
                [],
            )
            .build()
            .unwrap();
        let diags = validate(&sc);
        assert!(diags
            .iter()
            .any(|d| matches!(d, Diagnostic::UnsatisfiableGuard { .. })));
        // NB: reachability is checked on the *untimed* abstraction, so s1
        // is not additionally flagged as unreachable.
        assert!(!diags
            .iter()
            .any(|d| matches!(d, Diagnostic::UnreachableState { .. })));
    }

    #[test]
    fn urgent_sink_reported() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .state("s0")
            .initial("s0")
            .state("trap")
            .deny_stay("trap")
            .transition("s0", "trap", [], [])
            .build()
            .unwrap();
        let diags = validate(&sc);
        assert!(diags
            .iter()
            .any(|d| matches!(d, Diagnostic::UrgentSink { state } if state == "trap")));
    }

    #[test]
    fn unsatisfiable_invariant_reported() {
        let u = Universe::new();
        let sc = RtscBuilder::new(&u, "m")
            .clock("c")
            .state("s0")
            .initial("s0")
            .invariant("s0", "c", CmpOp::Lt, 0)
            .build()
            .unwrap();
        let diags = validate(&sc);
        assert!(diags
            .iter()
            .any(|d| matches!(d, Diagnostic::UnsatisfiableInvariant { state } if state == "s0")));
    }

    #[test]
    fn diagnostics_display() {
        let d = Diagnostic::UnreachableState {
            state: "x::y".into(),
        };
        assert!(d.to_string().contains("x::y"));
        let d = Diagnostic::UrgentSink { state: "s".into() };
        assert!(d.to_string().contains("time stop"));
    }
}
