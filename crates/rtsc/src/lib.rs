//! Real-Time Statecharts (RTSC) for Mechatronic UML, with flattening to the
//! discrete-time I/O automata of [`muml_automata`].
//!
//! Mechatronic UML models role, connector, and component behaviour as
//! Real-Time Statecharts. The paper's formal treatment (Section 2) maps
//! RTSC to a finite state transition system where discrete time is mapped
//! to single states and transitions; this crate provides:
//!
//! * [`RtscBuilder`] / [`Rtsc`] — statecharts with one-level composite
//!   states, discrete clocks, time guards, resets, urgent states, and state
//!   invariants;
//! * [`flatten`] — the mapping to [`muml_automata::Automaton`] by clock
//!   unrolling (one transition = one time unit, matching Definition 1's
//!   time semantics);
//! * [`channel_automaton`] — explicit event-queue automata for pattern
//!   connectors, with configurable delay and reliability (Section 2.2
//!   models the asynchronous event semantics of statecharts by such queue
//!   automata).

#![warn(missing_docs)]

mod channel;
mod flatten;
mod model;
mod validate;

pub use channel::{channel_automaton, ChannelError, ChannelSpec};
pub use flatten::{flatten, flatten_with, FlattenError, FlattenOptions};
pub use model::{
    ClockConstraint, CmpOp, Rtsc, RtscBuildError, RtscBuilder, RtscState, RtscTransition,
};
pub use validate::{validate, Diagnostic};
