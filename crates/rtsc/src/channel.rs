//! Connector (channel) automata.
//!
//! In Mechatronic UML the behaviour of a pattern's connector is described by
//! its own real-time statechart modelling channel delay and reliability
//! ("which are of crucial importance for real-time systems", Section 1).
//! Because the composition of Definition 3 is synchronous, the asynchronous
//! event semantics of statecharts is modelled "by explicitly defined event
//! queues (channels) given in the form of additional automata" (Section
//! 2.2). This module generates those queue automata directly.
//!
//! A channel transports a set of message *kinds*; each kind renames a
//! sender-side signal to a receiver-side signal (signals must be globally
//! unique, so `rear.convoyProposal` sent by the rear role arrives as
//! `front.convoyProposal` at the front role). A message sent at tick `t` is
//! delivered at tick `t + delay`. A *lossy* channel may nondeterministically
//! drop messages on reception.

use muml_automata::{Automaton, AutomatonBuilder, Label, SignalSet, Universe};

/// Specification of a channel.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// Automaton name.
    pub name: String,
    /// Message kinds as `(input signal, output signal)` name pairs: the
    /// channel consumes the input signal and later produces the output
    /// signal.
    pub kinds: Vec<(String, String)>,
    /// Delivery delay in time units. `0` forwards within the same tick.
    pub delay: usize,
    /// Input-signal names of the message kinds that may be dropped on
    /// reception (empty = fully reliable; all kinds = fully lossy).
    pub lossy_kinds: Vec<String>,
}

impl ChannelSpec {
    /// A reliable channel with the given delay.
    pub fn reliable(name: &str, kinds: &[(&str, &str)], delay: usize) -> Self {
        ChannelSpec {
            name: name.to_owned(),
            kinds: kinds
                .iter()
                .map(|(a, b)| ((*a).to_owned(), (*b).to_owned()))
                .collect(),
            delay,
            lossy_kinds: Vec::new(),
        }
    }

    /// A fully lossy channel: every kind may be dropped.
    pub fn lossy(name: &str, kinds: &[(&str, &str)], delay: usize) -> Self {
        ChannelSpec {
            lossy_kinds: kinds.iter().map(|(a, _)| (*a).to_owned()).collect(),
            ..ChannelSpec::reliable(name, kinds, delay)
        }
    }

    /// A channel that may drop only the named kinds (by input-signal name) —
    /// e.g. an asymmetric radio link whose uplink is unreliable.
    pub fn lossy_for(
        name: &str,
        kinds: &[(&str, &str)],
        delay: usize,
        lossy_kinds: &[&str],
    ) -> Self {
        ChannelSpec {
            lossy_kinds: lossy_kinds.iter().map(|s| (*s).to_owned()).collect(),
            ..ChannelSpec::reliable(name, kinds, delay)
        }
    }
}

/// Error from [`channel_automaton`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// Too many message kinds (the state space is `(2^k)^delay`).
    TooManyKinds(usize),
    /// Kernel error while assembling the automaton.
    Build(String),
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::TooManyKinds(k) => {
                write!(f, "channel supports at most 8 message kinds, got {k}")
            }
            ChannelError::Build(e) => write!(f, "channel construction failed: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Builds the queue automaton for `spec`.
///
/// State encoding: one slot per delay unit, each holding the set of kinds in
/// transit at that age; every tick the channel simultaneously receives any
/// subset of kinds, delivers the oldest slot, and shifts. Deterministic for
/// reliable channels; lossy channels add a drop choice per reception.
///
/// # Errors
///
/// [`ChannelError::TooManyKinds`] for more than 8 kinds.
pub fn channel_automaton(u: &Universe, spec: &ChannelSpec) -> Result<Automaton, ChannelError> {
    let k = spec.kinds.len();
    if k > 8 {
        return Err(ChannelError::TooManyKinds(k));
    }
    let in_sigs: Vec<_> = spec.kinds.iter().map(|(a, _)| u.signal(a)).collect();
    let out_sigs: Vec<_> = spec.kinds.iter().map(|(_, b)| u.signal(b)).collect();

    // A slot content is a bitmask over kinds.
    let masks: u32 = 1 << k;
    let slot_name = |slots: &[u32]| -> String {
        if slots.iter().all(|&m| m == 0) {
            "empty".to_owned()
        } else {
            slots
                .iter()
                .map(|m| format!("{m:0width$b}", width = k))
                .collect::<Vec<_>>()
                .join("|")
        }
    };
    let to_in_set = |mask: u32| -> SignalSet {
        (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| in_sigs[i])
            .collect()
    };
    let to_out_set = |mask: u32| -> SignalSet {
        (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| out_sigs[i])
            .collect()
    };

    let mut b = AutomatonBuilder::new(u, &spec.name);
    for &s in &in_sigs {
        b = b.input(&u.signal_name(s));
    }
    for &s in &out_sigs {
        b = b.output(&u.signal_name(s));
    }

    // Enumerate reachable slot vectors via BFS.
    use std::collections::HashMap;
    let init = vec![0u32; spec.delay];
    let mut seen: HashMap<Vec<u32>, String> = HashMap::new();
    let mut work = vec![init.clone()];
    seen.insert(init.clone(), slot_name(&init));
    b = b.state(&slot_name(&init)).initial(&slot_name(&init));
    let mut edges: Vec<(String, Label, String)> = Vec::new();

    // Bitmask of kinds that may be dropped.
    let lossy_mask: u32 = spec
        .kinds
        .iter()
        .enumerate()
        .filter(|(_, (a, _))| spec.lossy_kinds.iter().any(|l| l == a))
        .fold(0, |acc, (i, _)| acc | (1 << i));

    while let Some(slots) = work.pop() {
        let from = seen[&slots].clone();
        for recv in 0..masks {
            // stored set: the full reception minus any subset of the lossy
            // kinds among it
            let stored_options: Vec<u32> = if lossy_mask != 0 {
                (0..masks)
                    .filter(|s| s & !recv == 0 && (recv & !s) & !lossy_mask == 0)
                    .collect()
            } else {
                vec![recv]
            };
            for stored in stored_options {
                let (deliver, next) = if spec.delay == 0 {
                    (stored, Vec::new())
                } else {
                    let mut next = slots.clone();
                    let deliver = next.remove(spec.delay - 1); // oldest slot
                    next.insert(0, stored);
                    (deliver, next)
                };
                let label = Label::new(to_in_set(recv), to_out_set(deliver));
                let tname = match seen.get(&next) {
                    Some(n) => n.clone(),
                    None => {
                        let n = slot_name(&next);
                        seen.insert(next.clone(), n.clone());
                        b = b.state(&n);
                        work.push(next.clone());
                        n
                    }
                };
                edges.push((from.clone(), label, tname));
            }
        }
    }
    for (f, l, t) in edges {
        b = b.transition_guard(&f, muml_automata::Guard::Exact(l), &t);
    }
    b.build().map_err(|e| ChannelError::Build(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_one_buffers_one_tick() {
        let u = Universe::new();
        let spec = ChannelSpec::reliable("ch", &[("a_in", "a_out")], 1);
        let m = channel_automaton(&u, &spec).unwrap();
        assert_eq!(m.state_count(), 2); // empty, loaded
        assert!(m.is_deterministic());
        let a_in = u.signal("a_in");
        let a_out = u.signal("a_out");
        let empty = m.find_state("empty").unwrap();
        // receive without delivery
        let l = Label::new(SignalSet::singleton(a_in), SignalSet::EMPTY);
        assert!(m.enables(empty, l));
        let loaded = m.successors(empty, l)[0];
        // deliver while not receiving
        let d = Label::new(SignalSet::EMPTY, SignalSet::singleton(a_out));
        assert!(m.enables(loaded, d));
        assert_eq!(m.successors(loaded, d), vec![empty]);
        // simultaneous receive + deliver loops on loaded
        let rd = Label::new(SignalSet::singleton(a_in), SignalSet::singleton(a_out));
        assert_eq!(m.successors(loaded, rd), vec![loaded]);
    }

    #[test]
    fn delay_zero_forwards_immediately() {
        let u = Universe::new();
        let spec = ChannelSpec::reliable("ch0", &[("x_in", "x_out")], 0);
        let m = channel_automaton(&u, &spec).unwrap();
        assert_eq!(m.state_count(), 1);
        let s = m.find_state("empty").unwrap();
        let fwd = Label::new(u.signals(["x_in"]), u.signals(["x_out"]));
        assert!(m.enables(s, fwd));
        assert!(m.enables(s, Label::EMPTY));
        // it cannot deliver without reception
        let bad = Label::new(SignalSet::EMPTY, u.signals(["x_out"]));
        assert!(!m.enables(s, bad));
    }

    #[test]
    fn delay_two_pipeline() {
        let u = Universe::new();
        let spec = ChannelSpec::reliable("ch2", &[("m_in", "m_out")], 2);
        let m = channel_automaton(&u, &spec).unwrap();
        assert_eq!(m.state_count(), 4);
        assert!(m.is_deterministic());
        // send at t0: deliver exactly at t2
        let s0 = m.find_state("empty").unwrap();
        let send = Label::new(u.signals(["m_in"]), SignalSet::EMPTY);
        let s1 = m.successors(s0, send)[0];
        // t1: nothing delivered yet
        let idle = Label::EMPTY;
        let deliver = Label::new(SignalSet::EMPTY, u.signals(["m_out"]));
        assert!(!m.enables(s1, deliver));
        let s2 = m.successors(s1, idle)[0];
        // t2: delivery
        assert!(m.enables(s2, deliver));
        assert_eq!(m.successors(s2, deliver), vec![s0]);
    }

    #[test]
    fn two_kinds_in_parallel() {
        let u = Universe::new();
        let spec = ChannelSpec::reliable("ch", &[("p_in", "p_out"), ("q_in", "q_out")], 1);
        let m = channel_automaton(&u, &spec).unwrap();
        assert_eq!(m.state_count(), 4);
        let empty = m.find_state("empty").unwrap();
        let both = Label::new(u.signals(["p_in", "q_in"]), SignalSet::EMPTY);
        let loaded = m.successors(empty, both)[0];
        let deliver_both = Label::new(SignalSet::EMPTY, u.signals(["p_out", "q_out"]));
        assert!(m.enables(loaded, deliver_both));
    }

    #[test]
    fn lossy_channel_may_drop() {
        let u = Universe::new();
        let spec = ChannelSpec::lossy("lch", &[("a_in", "a_out")], 1);
        let m = channel_automaton(&u, &spec).unwrap();
        assert!(!m.is_deterministic());
        let empty = m.find_state("empty").unwrap();
        let recv = Label::new(u.signals(["a_in"]), SignalSet::EMPTY);
        // the reception may be stored or dropped
        let succ = m.successors(empty, recv);
        assert_eq!(succ.len(), 2);
        assert!(succ.contains(&empty));
    }

    #[test]
    fn partially_lossy_channel() {
        let u = Universe::new();
        let spec = ChannelSpec::lossy_for(
            "asym",
            &[("up_in", "up_out"), ("down_in", "down_out")],
            1,
            &["up_in"],
        );
        let m = channel_automaton(&u, &spec).unwrap();
        let empty = m.find_state("empty").unwrap();
        // the lossy kind may be dropped…
        let up = Label::new(u.signals(["up_in"]), SignalSet::EMPTY);
        assert_eq!(m.successors(empty, up).len(), 2);
        // …the reliable kind may not.
        let down = Label::new(u.signals(["down_in"]), SignalSet::EMPTY);
        assert_eq!(m.successors(empty, down).len(), 1);
        // receiving both: only the lossy one can vanish → 2 options.
        let both = Label::new(u.signals(["up_in", "down_in"]), SignalSet::EMPTY);
        assert_eq!(m.successors(empty, both).len(), 2);
    }

    #[test]
    fn too_many_kinds_rejected() {
        let u = Universe::new();
        let kinds: Vec<(String, String)> =
            (0..9).map(|i| (format!("i{i}"), format!("o{i}"))).collect();
        let spec = ChannelSpec {
            name: "big".into(),
            kinds,
            delay: 1,
            lossy_kinds: Vec::new(),
        };
        assert_eq!(
            channel_automaton(&u, &spec).unwrap_err(),
            ChannelError::TooManyKinds(9)
        );
    }
}
