//! Graceful degradation of the driver under unreliable test execution:
//! a nondeterministic component (or a rig too flaky to produce a quorum)
//! must surface as a typed error or an honest `Inconclusive` verdict —
//! never as a panic and never as a flipped verdict.

use muml_automata::{Automaton, AutomatonBuilder, SignalSet, Universe};
use muml_core::{
    verify_integration, CoreError, IntegrationConfig, IntegrationSession, IntegrationVerdict,
    IterationOutcome, LegacyUnit,
};
use muml_legacy::{
    HiddenMealy, LegacyComponent, MealyBuilder, PortMap, RetryPolicy, RigFaultProfile,
    StateObservable, UnreliableRig,
};
use muml_obs::Collector;

/// Context: a controller that forever sends `cmd` and expects `ack` one
/// period later.
fn controller(u: &Universe) -> Automaton {
    AutomatonBuilder::new(u, "ctx")
        .output("cmd")
        .input("ack")
        .state("send")
        .initial("send")
        .state("wait")
        .transition("send", [], ["cmd"], "wait")
        .transition("wait", ["ack"], [], "send")
        .build()
        .unwrap()
}

/// A conforming component: cmd → (one period) → ack.
fn good_component(u: &Universe) -> HiddenMealy {
    MealyBuilder::new(u, "legacy")
        .input("cmd")
        .output("ack")
        .state("idle")
        .initial("idle")
        .state("got")
        .rule("idle", ["cmd"], [], "got")
        .rule("got", [], ["ack"], "idle")
        .build()
        .unwrap()
}

/// A deliberately nondeterministic test double: it acknowledges `cmd` only
/// on every second reset, so the executor's record and replay phases (one
/// reset apart) always disagree — every attempt fails the replay
/// cross-check and no quorum can ever form.
struct Wobbly {
    cmd: SignalSet,
    ack: SignalSet,
    resets: u64,
    steps: u64,
    pending: bool,
}

impl Wobbly {
    fn new(u: &Universe) -> Self {
        Wobbly {
            cmd: u.signals(["cmd"]),
            ack: u.signals(["ack"]),
            resets: 0,
            steps: 0,
            pending: false,
        }
    }
}

impl LegacyComponent for Wobbly {
    fn name(&self) -> &str {
        "wobbly"
    }
    fn interface(&self) -> (SignalSet, SignalSet) {
        (self.cmd, self.ack)
    }
    fn reset(&mut self) {
        self.resets += 1;
        self.steps = 0;
        self.pending = false;
    }
    fn step(&mut self, inputs: SignalSet) -> SignalSet {
        self.steps += 1;
        let answer = self.pending && self.resets.is_multiple_of(2);
        self.pending = !inputs.intersection(self.cmd).is_empty();
        if answer {
            self.ack
        } else {
            SignalSet::EMPTY
        }
    }
    fn period(&self) -> u64 {
        self.steps
    }
}

impl StateObservable for Wobbly {
    fn observable_state(&self) -> String {
        if self.pending { "got" } else { "idle" }.to_owned()
    }
    fn initial_state_name(&self) -> String {
        "idle".to_owned()
    }
}

#[test]
fn nondeterministic_component_degrades_to_inconclusive() {
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = Wobbly::new(&u);
    let mut sink = Collector::new();
    let report = IntegrationSession::new(&u, &ctx)
        .unit(LegacyUnit::new(&mut c, PortMap::with_default("port")))
        .sink(&mut sink)
        .run()
        .unwrap();
    match &report.verdict {
        IntegrationVerdict::Inconclusive {
            quarantined,
            attempts,
        } => {
            assert!(*quarantined >= 1, "quarantined {quarantined}");
            assert!(*attempts > 1, "attempts {attempts}");
        }
        v => panic!("expected Inconclusive, got {v:?}"),
    }
    assert!(!report.verdict.conclusive());
    // The degradation is visible in the stats and the event stream.
    assert!(report.stats.inconclusive_tests >= 1);
    assert!(report.stats.quarantined_tests >= 1);
    assert!(report.stats.suspected_rig_faults >= 1);
    assert!(report.stats.test_retries >= 1);
    let kinds = sink.kinds();
    assert!(kinds.contains(&"test_retried"), "{kinds:?}");
    assert!(kinds.contains(&"rig_fault"), "{kinds:?}");
    assert!(kinds.contains(&"quarantined"), "{kinds:?}");
    assert!(matches!(
        report.iterations.last().unwrap().outcome,
        IterationOutcome::Quarantined { .. }
    ));
}

#[test]
fn zero_flake_budget_surfaces_the_typed_error() {
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = Wobbly::new(&u);
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let err = verify_integration(
        &u,
        &ctx,
        &[],
        &mut units,
        &IntegrationConfig::default().with_flake_budget(0),
    )
    .unwrap_err();
    match err {
        CoreError::Nondeterministic { component, .. } => assert_eq!(component, "wobbly"),
        e => panic!("expected Nondeterministic, got {e:?}"),
    }
}

#[test]
fn modest_rig_flakiness_still_proves_the_good_component() {
    let u = Universe::new();
    let ctx = controller(&u);
    let config = IntegrationConfig::default().with_retry_policy(
        RetryPolicy::default()
            .with_max_attempts(10)
            .with_quorum(2)
            .with_backoff(1, 2, 16),
    );
    let mut rig = UnreliableRig::new(good_component(&u), RigFaultProfile::uniform(0xC0FFEE, 0.1));
    let report = {
        let mut units = [LegacyUnit::new(&mut rig, PortMap::with_default("port"))];
        verify_integration(&u, &ctx, &[], &mut units, &config).unwrap()
    };
    assert!(report.verdict.proven(), "{:?}", report.verdict);
    // The rig really misbehaved and the retry machinery really worked.
    assert!(rig.total_injected() >= 1);
    assert!(report.stats.test_attempts > report.stats.tests_executed);
}

#[test]
fn modest_rig_flakiness_still_confirms_the_real_deadlock() {
    // Counter protocol (as in the storm campaign): a 4-state counter whose
    // seeded early `top` announcement deadlocks a 2-push driver. The
    // confirmed deadlock path exercises frontier probing — every probe and
    // frontier read-back runs through the retrying executor.
    let u = Universe::new();
    let mut ctx = AutomatonBuilder::new(&u, "driver")
        .output("up")
        .input("top");
    for i in 0..=2 {
        ctx = ctx.state(&format!("d{i}"));
    }
    let ctx = ctx
        .initial("d0")
        .transition("d0", [], ["up"], "d1")
        .transition("d1", [], ["up"], "d2")
        .transition("d2", [], [], "d2")
        .build()
        .unwrap();
    // c0 --up--> c1 --up/top--> c1: announces `top` on the second push,
    // which the driver cannot accept.
    let counter = MealyBuilder::new(&u, "counter")
        .input("up")
        .output("top")
        .state("c0")
        .initial("c0")
        .state("c1")
        .rule("c0", ["up"], [], "c1")
        .rule("c0", [], [], "c0")
        .rule("c1", ["up"], ["top"], "c1")
        .rule("c1", [], [], "c1")
        .build()
        .unwrap();
    let config = IntegrationConfig::default().with_retry_policy(
        RetryPolicy::default()
            .with_max_attempts(10)
            .with_quorum(2)
            .with_backoff(1, 2, 16),
    );
    let mut rig = UnreliableRig::new(counter, RigFaultProfile::uniform(0xBEEF, 0.1));
    let report = {
        let mut units = [LegacyUnit::new(&mut rig, PortMap::with_default("p"))];
        verify_integration(&u, &ctx, &[], &mut units, &config).unwrap()
    };
    match &report.verdict {
        IntegrationVerdict::RealFault { property, .. } => {
            assert!(property.contains("deadlock"), "{property}");
        }
        v => panic!("expected RealFault, got {v:?}"),
    }
    assert!(rig.total_injected() >= 1);
}
