//! End-to-end warm-start scenarios: a second run against the same
//! component seeds its abstraction from the content-addressed store and
//! reaches the identical verdict with (far) less rig work, while any store
//! damage or component drift degrades to a cold start — never to a wrong
//! verdict or an error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use muml_automata::{Automaton, AutomatonBuilder, Universe};
use muml_core::store::ComponentSignature;
use muml_core::{IntegrationReport, IntegrationSession, LegacyUnit};
use muml_legacy::{HiddenMealy, MealyBuilder, PortMap};
use muml_obs::Collector;

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "muml-warm-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn controller(u: &Universe) -> Automaton {
    AutomatonBuilder::new(u, "ctx")
        .output("cmd")
        .input("ack")
        .state("send")
        .initial("send")
        .state("wait")
        .transition("send", [], ["cmd"], "wait")
        .transition("wait", ["ack"], [], "send")
        .build()
        .unwrap()
}

fn good_component(u: &Universe) -> HiddenMealy {
    MealyBuilder::new(u, "legacy")
        .input("cmd")
        .output("ack")
        .state("idle")
        .initial("idle")
        .state("got")
        .rule("idle", ["cmd"], [], "got")
        .rule("got", [], ["ack"], "idle")
        .build()
        .unwrap()
}

/// Runs the controller/good-component scenario against `store_dir`,
/// returning the report and the collected event kinds.
fn run_once(store_dir: &std::path::Path) -> (IntegrationReport, Vec<String>) {
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = good_component(&u);
    let sig = ComponentSignature::of_component(&c, &u);
    let mut sink = Collector::new();
    let report = IntegrationSession::new(&u, &ctx)
        .unit(LegacyUnit::new(&mut c, PortMap::with_default("port")).with_signature(sig))
        .with_store(store_dir)
        .sink(&mut sink)
        .run()
        .unwrap();
    let kinds = sink.events.iter().map(|e| e.kind().to_owned()).collect();
    (report, kinds)
}

#[test]
fn second_run_seeds_from_store_and_proves_without_testing() {
    let dir = tmpdir("seed");
    let (first, first_kinds) = run_once(&dir);
    assert!(first.verdict.proven(), "{:?}", first.verdict);
    assert!(first_kinds.iter().any(|k| k == "store_miss"));
    assert!(first.stats.driven_steps > 0);

    let (second, second_kinds) = run_once(&dir);
    assert!(second.verdict.proven(), "{:?}", second.verdict);
    assert!(second_kinds.iter().any(|k| k == "store_hit"));
    // The seeded model is the first run's final learned model, so the very
    // first check proves the integration: no counterexamples, no rig work.
    assert_eq!(second.stats.tests_executed, 0);
    assert_eq!(second.stats.driven_steps, 0);
    assert_eq!(second.stats.iterations, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_degrades_to_cold_start_with_identical_verdict() {
    let dir = tmpdir("corrupt");
    let (first, _) = run_once(&dir);
    assert!(first.verdict.proven());
    // Truncate every snapshot in the store (the index survives).
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json")
            && path.file_name().is_some_and(|n| n != "index.json")
        {
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        }
    }
    let (second, kinds) = run_once(&dir);
    assert!(second.verdict.proven(), "{:?}", second.verdict);
    assert!(kinds.iter().any(|k| k == "store_miss"));
    assert!(!kinds.iter().any(|k| k == "store_hit"));
    // Cold start: the rig was driven again, and the repaired snapshot is
    // back in place for the next run.
    assert!(second.stats.driven_steps > 0);
    let (third, third_kinds) = run_once(&dir);
    assert!(third.verdict.proven());
    assert!(third_kinds.iter().any(|k| k == "store_hit"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rule_change_invalidates_instead_of_blindly_hitting() {
    let dir = tmpdir("drift");
    let (first, _) = run_once(&dir);
    assert!(first.verdict.proven());

    // Same boundary (name, interface, initial state), different rule set:
    // the ack is never sent, so the integration deadlocks for real.
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = MealyBuilder::new(&u, "legacy")
        .input("cmd")
        .output("ack")
        .state("idle")
        .initial("idle")
        .state("got")
        .rule("idle", ["cmd"], [], "got")
        .rule("got", [], [], "idle")
        .build()
        .unwrap();
    let sig = ComponentSignature::of_component(&c, &u);
    let mut sink = Collector::new();
    let report = IntegrationSession::new(&u, &ctx)
        .unit(LegacyUnit::new(&mut c, PortMap::with_default("port")).with_signature(sig))
        .with_store(&dir)
        .sink(&mut sink)
        .run()
        .unwrap();
    let kinds: Vec<&str> = sink.events.iter().map(|e| e.kind()).collect();
    assert!(
        kinds.contains(&"store_invalidated"),
        "expected dirty-cone invalidation, got {kinds:?}"
    );
    // The stale transitions were dropped, so the changed behaviour is
    // re-tested and the real deadlock found — not masked by the cache.
    assert!(
        matches!(
            report.verdict,
            muml_core::IntegrationVerdict::RealFault { .. }
        ),
        "{:?}",
        report.verdict
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unsigned_units_ignore_the_store() {
    let dir = tmpdir("unsigned");
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = good_component(&u);
    let mut sink = Collector::new();
    let report = IntegrationSession::new(&u, &ctx)
        .unit(LegacyUnit::new(&mut c, PortMap::with_default("port")))
        .with_store(&dir)
        .sink(&mut sink)
        .run()
        .unwrap();
    assert!(report.verdict.proven());
    assert!(!sink.events.iter().any(|e| e.kind().starts_with("store_")));
    // Nothing persisted either.
    let snapshots = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(snapshots, 0, "unsigned unit must not write snapshots");
    std::fs::remove_dir_all(&dir).ok();
}
