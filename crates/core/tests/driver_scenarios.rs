//! End-to-end scenarios for the iterative behaviour synthesis driver:
//! proofs, real faults (property and deadlock), partial learning, multiple
//! legacy components, and error paths.

use muml_automata::{Automaton, AutomatonBuilder, Universe};
use muml_core::{
    verify_integration, CoreError, IntegrationConfig, IntegrationVerdict, IterationOutcome,
    LegacyUnit,
};
use muml_legacy::{HiddenMealy, MealyBuilder, PortMap};
use muml_logic::parse;

/// Context: a controller that forever sends `cmd` and expects `ack` one
/// period later. `ctx.wait` is labelled for properties.
fn controller(u: &Universe) -> Automaton {
    AutomatonBuilder::new(u, "ctx")
        .output("cmd")
        .input("ack")
        .state("send")
        .initial("send")
        .state("wait")
        .prop("wait", "ctx.wait")
        .transition("send", [], ["cmd"], "wait")
        .transition("wait", ["ack"], [], "send")
        .build()
        .unwrap()
}

/// A conforming component: cmd → (one period) → ack.
fn good_component(u: &Universe) -> HiddenMealy {
    MealyBuilder::new(u, "legacy")
        .input("cmd")
        .output("ack")
        .state("idle")
        .initial("idle")
        .state("got")
        .rule("idle", ["cmd"], [], "got")
        .rule("got", [], ["ack"], "idle")
        .build()
        .unwrap()
}

#[test]
fn conforming_component_is_proven() {
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = good_component(&u);
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report = verify_integration(
        &u,
        &ctx,
        &[parse(&u, "AG !legacy.error").unwrap()],
        &mut units,
        &IntegrationConfig::default(),
    )
    .unwrap();
    assert!(report.verdict.proven(), "{:?}", report.verdict);
    // The last iteration is the proof.
    assert_eq!(
        report.iterations.last().unwrap().outcome,
        IterationOutcome::Proven
    );
    // Both protocol steps were learned.
    let (states, trans) = report.learned_sizes()[0];
    assert_eq!(states, 2);
    assert_eq!(trans, 2);
    assert!(report.stats.tests_executed > 0);
    assert!(report.stats.iterations >= 2);
}

#[test]
fn property_fault_is_detected_and_confirmed() {
    let u = Universe::new();
    let ctx = controller(&u);
    // The component works protocol-wise but passes through an `error` state.
    let mut c = MealyBuilder::new(&u, "legacy")
        .input("cmd")
        .output("ack")
        .state("idle")
        .initial("idle")
        .state("error")
        .rule("idle", ["cmd"], [], "error")
        .rule("error", [], ["ack"], "idle")
        .build()
        .unwrap();
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report = verify_integration(
        &u,
        &ctx,
        &[parse(&u, "AG !legacy.error").unwrap()],
        &mut units,
        &IntegrationConfig::default(),
    )
    .unwrap();
    match &report.verdict {
        IntegrationVerdict::RealFault {
            property, rendered, ..
        } => {
            assert!(property.contains("legacy.error"));
            assert!(rendered.contains("ctx."));
        }
        v => panic!("expected RealFault, got {v:?}"),
    }
    assert_eq!(
        report.iterations.last().unwrap().outcome,
        IterationOutcome::Fault
    );
}

#[test]
fn deadlocking_component_yields_real_deadlock() {
    let u = Universe::new();
    let ctx = controller(&u);
    // Swallows cmd and never acks.
    let mut c = MealyBuilder::new(&u, "legacy")
        .input("cmd")
        .output("ack")
        .state("idle")
        .initial("idle")
        .state("stuck")
        .rule("idle", ["cmd"], [], "stuck")
        .build()
        .unwrap();
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report =
        verify_integration(&u, &ctx, &[], &mut units, &IntegrationConfig::default()).unwrap();
    match &report.verdict {
        IntegrationVerdict::RealFault { property, .. } => {
            assert!(property.contains("deadlock"));
        }
        v => panic!("expected deadlock fault, got {v:?}"),
    }
}

#[test]
fn proof_without_learning_the_whole_component() {
    let u = Universe::new();
    // The component has a large sub-machine reachable only by a *double*
    // cmd — which this context never sends. Claim C4: the proof succeeds
    // while those states stay unlearned.
    let ctx = controller(&u);
    let mut b = MealyBuilder::new(&u, "legacy")
        .input("cmd")
        .output("ack")
        .state("idle")
        .initial("idle")
        .state("got")
        .rule("idle", ["cmd"], [], "got")
        .rule("got", [], ["ack"], "idle")
        // double-cmd enters a 10-state tail the context cannot trigger
        .rule("got", ["cmd"], [], "tail0");
    for i in 0..10 {
        b = b.state(&format!("tail{i}")).rule(
            &format!("tail{i}"),
            [],
            [],
            &format!("tail{}", (i + 1) % 10),
        );
    }
    let mut c = b.build().unwrap();
    let total_states = c.state_count();
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report =
        verify_integration(&u, &ctx, &[], &mut units, &IntegrationConfig::default()).unwrap();
    assert!(report.verdict.proven(), "{:?}", report.verdict);
    let (learned_states, _) = report.learned_sizes()[0];
    assert!(
        learned_states < total_states,
        "learned {learned_states} of {total_states} states — expected partial learning"
    );
    assert_eq!(learned_states, 2); // only idle and got
}

#[test]
fn two_legacy_components_in_parallel() {
    let u = Universe::new();
    // Context talks to two components in turn: cmd1/ack1 then cmd2/ack2.
    let ctx = AutomatonBuilder::new(&u, "ctx")
        .outputs(["cmd1", "cmd2"])
        .inputs(["ack1", "ack2"])
        .state("s0")
        .initial("s0")
        .state("s1")
        .state("s2")
        .state("s3")
        .transition("s0", [], ["cmd1"], "s1")
        .transition("s1", ["ack1"], ["cmd2"], "s2")
        .transition("s2", ["ack2"], [], "s3")
        .transition("s3", [], ["cmd1"], "s1")
        .build()
        .unwrap();
    let mk = |name: &str, cmd: &str, ack: &str| -> HiddenMealy {
        MealyBuilder::new(&u, name)
            .input(cmd)
            .output(ack)
            .state("idle")
            .initial("idle")
            .state("got")
            .rule("idle", [cmd], [], "got")
            .rule("got", [], [ack], "idle")
            .build()
            .unwrap()
    };
    let mut c1 = mk("l1", "cmd1", "ack1");
    let mut c2 = mk("l2", "cmd2", "ack2");
    let mut units = [
        LegacyUnit::new(&mut c1, PortMap::with_default("p1")),
        LegacyUnit::new(&mut c2, PortMap::with_default("p2")),
    ];
    let report =
        verify_integration(&u, &ctx, &[], &mut units, &IntegrationConfig::default()).unwrap();
    assert!(report.verdict.proven(), "{:?}", report.verdict);
    assert_eq!(report.learned.len(), 2);
    // Both components contributed learned behaviour.
    assert!(report.learned_sizes().iter().all(|&(s, _)| s >= 2));
}

#[test]
fn multi_legacy_fault_in_second_component() {
    let u = Universe::new();
    let ctx = AutomatonBuilder::new(&u, "ctx")
        .outputs(["cmd1", "cmd2"])
        .inputs(["ack1", "ack2"])
        .state("s0")
        .initial("s0")
        .state("s1")
        .state("s2")
        .state("s3")
        .transition("s0", [], ["cmd1"], "s1")
        .transition("s1", ["ack1"], ["cmd2"], "s2")
        .transition("s2", ["ack2"], [], "s3")
        .transition("s3", [], ["cmd1"], "s1")
        .build()
        .unwrap();
    let mut c1 = MealyBuilder::new(&u, "l1")
        .input("cmd1")
        .output("ack1")
        .state("idle")
        .initial("idle")
        .state("got")
        .rule("idle", ["cmd1"], [], "got")
        .rule("got", [], ["ack1"], "idle")
        .build()
        .unwrap();
    // l2 never answers.
    let mut c2 = MealyBuilder::new(&u, "l2")
        .input("cmd2")
        .output("ack2")
        .state("idle")
        .initial("idle")
        .build()
        .unwrap();
    let mut units = [
        LegacyUnit::new(&mut c1, PortMap::with_default("p1")),
        LegacyUnit::new(&mut c2, PortMap::with_default("p2")),
    ];
    let report =
        verify_integration(&u, &ctx, &[], &mut units, &IntegrationConfig::default()).unwrap();
    match &report.verdict {
        IntegrationVerdict::RealFault { property, .. } => {
            assert!(property.contains("deadlock"));
        }
        v => panic!("expected deadlock fault, got {v:?}"),
    }
}

/// A controller that fires a trigger and then waits for a response; used
/// for deadline (bounded `AF`) properties.
fn deadline_context(u: &Universe) -> Automaton {
    AutomatonBuilder::new(u, "ctx")
        .output("fire")
        .input("rsp")
        .state("idle")
        .initial("idle")
        .state("armed")
        .prop("armed", "ctx.armed")
        .transition("idle", [], ["fire"], "armed")
        .transition("armed", [], [], "armed") // wait for the response
        .transition("armed", ["rsp"], [], "idle")
        .build()
        .unwrap()
}

/// A component answering `fire` after `lag` quiet periods.
fn laggy_component(u: &Universe, lag: usize) -> HiddenMealy {
    let mut b = MealyBuilder::new(u, "legacy")
        .input("fire")
        .output("rsp")
        .state("idle")
        .initial("idle");
    let mut prev = "idle".to_owned();
    for i in 0..lag {
        let s = format!("w{i}");
        b = b.state(&s);
        b = if i == 0 {
            b.rule(&prev, ["fire"], [], &s)
        } else {
            b.rule(&prev, [], [], &s)
        };
        prev = s;
    }
    b = b.rule(&prev, [], ["rsp"], "idle");
    b.build().unwrap()
}

#[test]
fn deadline_holds_for_fast_component() {
    let u = Universe::new();
    let ctx = deadline_context(&u);
    let mut c = laggy_component(&u, 1);
    let deadline = parse(&u, "AG (!ctx.armed | AF[1,3] legacy.idle)").unwrap();
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report = verify_integration(
        &u,
        &ctx,
        &[deadline],
        &mut units,
        &IntegrationConfig::default(),
    )
    .unwrap();
    assert!(report.verdict.proven(), "{:?}", report.verdict);
}

#[test]
fn deadline_violation_is_confirmed_with_window_witness() {
    let u = Universe::new();
    let ctx = deadline_context(&u);
    let mut c = laggy_component(&u, 5);
    let deadline = parse(&u, "AG (!ctx.armed | AF[1,3] legacy.idle)").unwrap();
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report = verify_integration(
        &u,
        &ctx,
        &[deadline],
        &mut units,
        &IntegrationConfig::default(),
    )
    .unwrap();
    match &report.verdict {
        IntegrationVerdict::RealFault {
            property, trace, ..
        } => {
            assert!(property.contains("AF[1,3]"));
            // prefix into `armed` plus the 3-step window without response
            assert!(trace.len() >= 4, "witness too short: {trace:?}");
        }
        v => panic!("expected deadline fault, got {v:?}"),
    }
}

#[test]
fn non_compositional_property_is_rejected() {
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = good_component(&u);
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let err = verify_integration(
        &u,
        &ctx,
        &[parse(&u, "EF legacy.idle").unwrap()],
        &mut units,
        &IntegrationConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::NotCompositional { .. }));
}

#[test]
fn iteration_cap_is_reported() {
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = good_component(&u);
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let err = verify_integration(
        &u,
        &ctx,
        &[],
        &mut units,
        &IntegrationConfig::default().with_max_iterations(1),
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::IterationLimit(1)));
}

#[test]
fn iteration_records_tell_the_figure2_story() {
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = good_component(&u);
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report =
        verify_integration(&u, &ctx, &[], &mut units, &IntegrationConfig::default()).unwrap();
    // Knowledge grows monotonically across iterations.
    let sizes: Vec<usize> = report
        .iterations
        .iter()
        .map(|r| {
            r.knowledge
                .iter()
                .map(|(s, t, rf)| s + t + rf)
                .sum::<usize>()
        })
        .collect();
    for w in sizes.windows(2) {
        assert!(w[0] <= w[1], "knowledge must grow: {sizes:?}");
    }
    // The narrative renderer mentions the proof.
    let text = muml_core::render_report(&report);
    assert!(text.contains("PROVEN"));
}

#[test]
fn batched_counterexamples_agree_and_save_iterations() {
    // Section-7 improvement: deriving several deadlock counterexamples per
    // verification run must not change any verdict, and may only reduce the
    // number of iterations.
    let u = Universe::new();
    let run = |batch: usize, faulty: bool| {
        let ctx = controller(&u);
        let mut c = if faulty {
            MealyBuilder::new(&u, "legacy")
                .input("cmd")
                .output("ack")
                .state("idle")
                .initial("idle")
                .state("stuck")
                .rule("idle", ["cmd"], [], "stuck")
                .build()
                .unwrap()
        } else {
            good_component(&u)
        };
        let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
        verify_integration(
            &u,
            &ctx,
            &[],
            &mut units,
            &IntegrationConfig::default().with_batch_counterexamples(batch),
        )
        .unwrap()
    };
    for faulty in [false, true] {
        let single = run(1, faulty);
        let batched = run(8, faulty);
        assert_eq!(single.verdict.proven(), batched.verdict.proven());
        assert!(
            batched.stats.iterations <= single.stats.iterations,
            "batched {} vs single {}",
            batched.stats.iterations,
            single.stats.iterations
        );
    }
}

#[test]
fn extra_component_outputs_nobody_listens_to_are_harmless() {
    // The component emits `telemetry` alongside its protocol messages; the
    // context neither declares nor consumes it. The signal stays open
    // (symbolic) in every composition, and the integration is still proven.
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = MealyBuilder::new(&u, "legacy")
        .input("cmd")
        .output("ack")
        .output("telemetry")
        .state("idle")
        .initial("idle")
        .state("got")
        .rule("idle", ["cmd"], ["telemetry"], "got")
        .rule("got", [], ["ack", "telemetry"], "idle")
        .build()
        .unwrap();
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report =
        verify_integration(&u, &ctx, &[], &mut units, &IntegrationConfig::default()).unwrap();
    assert!(report.verdict.proven(), "{:?}", report.verdict);
    // The learned transitions record the real outputs, telemetry included.
    let learned = report.learned[0].known_automaton();
    let telemetry = u.signal("telemetry");
    assert!(learned
        .transitions()
        .any(|(_, t)| t.guard.output_support().contains(telemetry)));
}

#[test]
fn custom_prop_mapper_drives_property_faults() {
    // A user-supplied mapper tags internal states with domain propositions;
    // the pattern constraint speaks that vocabulary.
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = MealyBuilder::new(&u, "legacy")
        .input("cmd")
        .output("ack")
        .state("idle")
        .initial("idle")
        .state("overload")
        .rule("idle", ["cmd"], [], "overload")
        .rule("overload", [], ["ack"], "idle")
        .build()
        .unwrap();
    let unit = LegacyUnit::new(&mut c, PortMap::with_default("port")).with_mapper(|state| {
        if state == "overload" {
            vec!["danger".to_owned()]
        } else {
            vec![]
        }
    });
    let mut units = [unit];
    let report = verify_integration(
        &u,
        &ctx,
        &[parse(&u, "AG !danger").unwrap()],
        &mut units,
        &IntegrationConfig::default(),
    )
    .unwrap();
    match &report.verdict {
        IntegrationVerdict::RealFault { property, .. } => {
            assert!(property.contains("danger"));
        }
        v => panic!("expected fault via custom mapper, got {v:?}"),
    }
}

#[test]
fn iteration_records_carry_listing_counterexamples() {
    let u = Universe::new();
    let ctx = controller(&u);
    let mut c = good_component(&u);
    let mut units = [LegacyUnit::new(&mut c, PortMap::with_default("port"))];
    let report =
        verify_integration(&u, &ctx, &[], &mut units, &IntegrationConfig::default()).unwrap();
    // Every non-final iteration has a rendered counterexample mentioning
    // both component names; the proof iteration has none.
    for rec in &report.iterations[..report.iterations.len() - 1] {
        let cex = rec
            .counterexample
            .as_deref()
            .expect("violated iterations have a cex");
        assert!(cex.contains("ctx."), "{cex}");
        assert!(cex.contains("legacy."), "{cex}");
    }
    assert!(report.iterations.last().unwrap().counterexample.is_none());
}

/// The fused composition+checking pre-pass must be a pure acceleration:
/// same verdict, same iteration trajectory (outcomes, violated properties,
/// product sizes), same learned models — whether the run ends proven or in
/// a real fault. Shards > 1 ride along to cover the checker dispatch.
#[test]
fn fused_mode_matches_materialized_loop() {
    let u = Universe::new();
    let ctx = controller(&u);
    let props = [parse(&u, "AG !legacy.error").unwrap()];

    let mut c1 = good_component(&u);
    let mut units1 = [LegacyUnit::new(&mut c1, PortMap::with_default("port"))];
    let base =
        verify_integration(&u, &ctx, &props, &mut units1, &IntegrationConfig::default()).unwrap();

    let mut c2 = good_component(&u);
    let mut units2 = [LegacyUnit::new(&mut c2, PortMap::with_default("port"))];
    let fused_config = IntegrationConfig::default()
        .with_fused(true)
        .with_check_shards(4);
    let fused = verify_integration(&u, &ctx, &props, &mut units2, &fused_config).unwrap();

    assert!(fused.verdict.proven(), "{:?}", fused.verdict);
    assert_eq!(base.stats.iterations, fused.stats.iterations);
    assert_eq!(base.iterations.len(), fused.iterations.len());
    for (a, b) in base.iterations.iter().zip(&fused.iterations) {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.violated, b.violated);
        assert_eq!(a.composed_states, b.composed_states);
        assert_eq!(a.knowledge, b.knowledge);
    }
    assert_eq!(base.learned_sizes(), fused.learned_sizes());
}

/// Fused mode on a faulty component: every violated iteration falls back
/// to the materialized path, so the confirmed fault is identical.
#[test]
fn fused_mode_detects_the_same_fault() {
    let u = Universe::new();
    let ctx = controller(&u);
    let build_bad = || {
        MealyBuilder::new(&u, "legacy")
            .input("cmd")
            .output("ack")
            .state("idle")
            .initial("idle")
            .state("error")
            .rule("idle", ["cmd"], [], "error")
            .rule("error", [], ["ack"], "idle")
            .build()
            .unwrap()
    };
    let props = [parse(&u, "AG !legacy.error").unwrap()];

    let mut c1 = build_bad();
    let mut units1 = [LegacyUnit::new(&mut c1, PortMap::with_default("port"))];
    let base =
        verify_integration(&u, &ctx, &props, &mut units1, &IntegrationConfig::default()).unwrap();

    let mut c2 = build_bad();
    let mut units2 = [LegacyUnit::new(&mut c2, PortMap::with_default("port"))];
    let fused = verify_integration(
        &u,
        &ctx,
        &props,
        &mut units2,
        &IntegrationConfig::default().with_fused(true),
    )
    .unwrap();

    match (&base.verdict, &fused.verdict) {
        (
            IntegrationVerdict::RealFault {
                property: p1,
                rendered: r1,
                ..
            },
            IntegrationVerdict::RealFault {
                property: p2,
                rendered: r2,
                ..
            },
        ) => {
            assert_eq!(p1, p2);
            assert_eq!(r1, r2);
        }
        (a, b) => panic!("expected matching RealFault verdicts, got {a:?} vs {b:?}"),
    }
    assert_eq!(base.stats.iterations, fused.stats.iterations);
}
