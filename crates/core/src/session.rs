//! Builder-style entry point for the synthesis loop.
//!
//! [`IntegrationSession`] assembles the ingredients of an integration run
//! — context, properties, legacy units, configuration, and an optional
//! [`EventSink`] — and executes the instrumented loop. It is the
//! structured-telemetry counterpart of [`crate::verify_integration`]:
//!
//! ```
//! use muml_automata::{AutomatonBuilder, Universe};
//! use muml_core::{IntegrationSession, LegacyUnit};
//! use muml_legacy::{MealyBuilder, PortMap};
//! use muml_obs::Collector;
//!
//! let u = Universe::new();
//! let context = AutomatonBuilder::new(&u, "ctx")
//!     .output("go").input("done")
//!     .state("send").initial("send")
//!     .state("wait")
//!     .transition("send", [], ["go"], "wait")
//!     .transition("wait", ["done"], [], "send")
//!     .build().unwrap();
//! let mut legacy = MealyBuilder::new(&u, "legacy")
//!     .input("go").output("done")
//!     .state("idle").initial("idle")
//!     .state("got")
//!     .rule("idle", ["go"], [], "got")
//!     .rule("got", [], ["done"], "idle")
//!     .build().unwrap();
//!
//! let mut sink = Collector::new();
//! let report = IntegrationSession::new(&u, &context)
//!     .unit(LegacyUnit::new(&mut legacy, PortMap::with_default("port")))
//!     .sink(&mut sink)
//!     .run()
//!     .unwrap();
//! assert!(report.verdict.proven());
//! assert_eq!(sink.events.first().unwrap().kind(), "run_started");
//! assert_eq!(sink.events.last().unwrap().kind(), "run_finished");
//! ```

use muml_automata::{Automaton, Universe};
use muml_logic::Formula;
use muml_obs::{EventSink, NullSink};

use crate::driver::{run_loop, IntegrationConfig, IntegrationReport, LegacyUnit};
use crate::error::CoreError;

/// A configured-but-not-yet-run integration check.
///
/// Built with [`IntegrationSession::new`], refined with the chainable
/// methods, and executed with [`IntegrationSession::run`]. All parts share
/// one lifetime `'a`: the universe, context, component borrows, and sink
/// must outlive the session (in practice: declare them before the builder
/// chain).
#[must_use = "a session does nothing until `.run()` is called"]
pub struct IntegrationSession<'a> {
    u: &'a Universe,
    context: &'a Automaton,
    properties: Vec<Formula>,
    units: Vec<LegacyUnit<'a>>,
    config: IntegrationConfig,
    sink: Option<&'a mut dyn EventSink>,
}

impl<'a> IntegrationSession<'a> {
    /// Starts a session for the given universe and abstract context
    /// `M_a^c`, with no properties beyond the always-checked deadlock
    /// freedom, no legacy units yet, the default configuration, and no
    /// sink.
    pub fn new(u: &'a Universe, context: &'a Automaton) -> Self {
        IntegrationSession {
            u,
            context,
            properties: Vec::new(),
            units: Vec::new(),
            config: IntegrationConfig::default(),
            sink: None,
        }
    }

    /// Adds one required timed-ACTL property.
    pub fn formula(mut self, f: Formula) -> Self {
        self.properties.push(f);
        self
    }

    /// Adds several required properties at once.
    pub fn formulas(mut self, fs: impl IntoIterator<Item = Formula>) -> Self {
        self.properties.extend(fs);
        self
    }

    /// Adds one legacy component under integration.
    pub fn unit(mut self, unit: LegacyUnit<'a>) -> Self {
        self.units.push(unit);
        self
    }

    /// Replaces the loop configuration.
    pub fn config(mut self, config: IntegrationConfig) -> Self {
        self.config = config;
        self
    }

    /// Opens (or creates) the content-addressed warm-start store rooted at
    /// `path` and attaches it to the run: units carrying a
    /// [`muml_store::ComponentSignature`] (see
    /// [`LegacyUnit::with_signature`](crate::LegacyUnit::with_signature))
    /// seed their learned abstraction from a persisted snapshot on a hit
    /// and persist the final one back on every terminal verdict.
    pub fn with_store(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config = self.config.with_store(path);
        self
    }

    /// Attaches a cooperative cancellation token (see
    /// [`CancelToken`](crate::CancelToken)); the loop polls it at iteration
    /// boundaries and before each counterexample test.
    pub fn cancel_token(mut self, cancel: crate::CancelToken) -> Self {
        self.config.cancel = Some(cancel);
        self
    }

    /// Attaches an event sink; every [`muml_obs::LoopEvent`] of the run is
    /// reported to it. Without a sink, events are discarded.
    pub fn sink(mut self, sink: &'a mut dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Runs the combined verification/testing loop of Section 4.
    ///
    /// # Panics
    ///
    /// If no [`unit`](IntegrationSession::unit) was added.
    ///
    /// # Errors
    ///
    /// Same as [`crate::verify_integration`].
    pub fn run(self) -> Result<IntegrationReport, CoreError> {
        let IntegrationSession {
            u,
            context,
            properties,
            mut units,
            config,
            sink,
        } = self;
        let mut null = NullSink;
        let sink: &mut dyn EventSink = match sink {
            Some(s) => s,
            None => &mut null,
        };
        run_loop(u, context, &properties, &mut units, &config, sink)
    }
}
