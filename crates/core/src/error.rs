//! Error type for the synthesis driver.

use std::fmt;

/// Errors reported by the iterative behaviour synthesis.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CoreError {
    /// A property handed to the verifier is outside the compositional
    /// timed-ACTL fragment; Lemma 5 would not transfer a successful check
    /// to the real system, so this is rejected upfront.
    NotCompositional {
        /// Rendering of the offending formula.
        formula: String,
    },
    /// The iteration cap was reached before a verdict. Theorem 2 guarantees
    /// termination for finite, deterministic components; hitting the cap
    /// indicates a misconfigured cap or a non-conforming component.
    IterationLimit(usize),
    /// A component's test execution could not reach a conclusive verdict in
    /// strict mode (`IntegrationConfig::flake_budget == 0`): the replay
    /// cross-check kept failing, which on a reliable rig means the
    /// component violates the determinism assumption. With a non-zero flake
    /// budget the driver degrades gracefully instead of raising this.
    Nondeterministic {
        /// The offending component.
        component: String,
        /// The period of the last replay cross-check failure (0 if the
        /// attempts failed consistency checks without a replay error).
        period: u64,
    },
    /// Learning produced an inconsistency (observation contradicts recorded
    /// knowledge) — possible with a nondeterministic component or broken
    /// monitoring.
    Learning(muml_automata::AutomataError),
    /// Kernel failure (composition, closure, …).
    Automata(muml_automata::AutomataError),
    /// Model-checking failure (counterexample outside the safety fragment).
    Logic(muml_logic::LogicError),
    /// The legacy component's interface does not match what the context
    /// expects.
    InterfaceMismatch {
        /// Explanation of the mismatch.
        detail: String,
    },
    /// The run was cooperatively cancelled — the configured
    /// [`CancelToken`](crate::CancelToken) was signalled or its deadline
    /// passed before a verdict was reached.
    Cancelled {
        /// Verification iterations completed before cancellation.
        iterations: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotCompositional { formula } => write!(
                f,
                "property `{formula}` is outside the compositional timed-ACTL fragment"
            ),
            CoreError::IterationLimit(n) => {
                write!(f, "no verdict after {n} iterations (cap reached)")
            }
            CoreError::Nondeterministic { component, period } => write!(
                f,
                "component `{component}` violates the determinism assumption: \
                 replay diverged around period {period} and retries were exhausted"
            ),
            CoreError::Learning(e) => write!(f, "learning failed: {e}"),
            CoreError::Automata(e) => write!(f, "automata error: {e}"),
            CoreError::Logic(e) => write!(f, "model checking error: {e}"),
            CoreError::InterfaceMismatch { detail } => {
                write!(f, "interface mismatch: {detail}")
            }
            CoreError::Cancelled { iterations } => {
                write!(f, "run cancelled after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<muml_automata::AutomataError> for CoreError {
    fn from(e: muml_automata::AutomataError) -> Self {
        CoreError::Automata(e)
    }
}

impl From<muml_logic::LogicError> for CoreError {
    fn from(e: muml_logic::LogicError) -> Self {
        CoreError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::IterationLimit(7).to_string().contains("7"));
        assert!(CoreError::NotCompositional {
            formula: "EF x".into()
        }
        .to_string()
        .contains("EF x"));
        let e: CoreError = muml_automata::AutomataError::UniverseMismatch.into();
        assert!(e.to_string().contains("universes"));
        let e = CoreError::Nondeterministic {
            component: "shuttle".into(),
            period: 3,
        };
        let text = e.to_string();
        assert!(text.contains("shuttle"), "{text}");
        assert!(text.contains("period 3"), "{text}");
        assert!(text.contains("determinism"), "{text}");
    }
}
