//! The iterative behaviour synthesis loop (Section 4, Figure 2).
//!
//! ```text
//!          ┌─────────────────────────────────────────────┐
//!          │ 1. synthesize initial behaviour M_a^0       │
//!          └─────────────────────────────────────────────┘
//!                             │
//!          ┌──────────────────▼──────────────────────────┐
//!   ┌──────│ 2. model check  M_a^c ∥ M_a^i ⊨ φ ∧ ¬δ      │──── holds ──▶ PROVEN
//!   │      └─────────────────────────────────────────────┘               (Lemma 5)
//!   │  counterexample π
//!   │      ┌─────────────────────────────────────────────┐
//!   │      │ 3. test legacy component along π|legacy     │── confirmed ─▶ REAL FAULT
//!   │      │    (record + deterministic replay)          │               (Lemma 6)
//!   │      └─────────────────────────────────────────────┘
//!   │  diverged (observation π′, refusal)
//!   │      ┌─────────────────────────────────────────────┐
//!   └──────│ 4. learn π′ into M_l, M_a^{i+1}=chaos(M_l)  │  (Lemma 7)
//!          └─────────────────────────────────────────────┘
//! ```
//!
//! One refinement over the paper's prose is needed for *deadlock*
//! counterexamples: a trace ending in the chaotic `s_δ` can be fully
//! realizable by the component without any real deadlock existing (the
//! deadlock is an artefact of the closure). After a confirmed deadlock
//! trace the driver therefore **probes the frontier**: for every input the
//! context can offer in its final state, it drives the component one step
//! further and checks whether the context accepts the observed response.
//! Either some probe succeeds (fresh knowledge, the loop continues) or
//! every context offer is genuinely refused (a real deadlock, reported as a
//! fault). This preserves Theorem 2's termination argument: every
//! non-terminal iteration strictly grows `|T| + |T̄|`.
//!
//! Multiple legacy components (the extension sketched in Section 7) are
//! supported: each component gets its own incomplete automaton, all
//! closures are composed with the context, counterexamples are projected
//! onto and tested against each component, and frontier probing checks each
//! component against the sub-composition of everything else.

use muml_automata::{
    chaotic_closure, compose, Automaton, ComposeOptions, IncompleteAutomaton, Label, Universe,
};
use muml_legacy::{execute_expected_trace, PortMap, StateObservable};
use muml_logic::{check_all, Formula, Verdict};

use crate::error::CoreError;
use crate::initial::{apply_props, initial_knowledge};
use crate::probe::{probe_frontier, FrontierResult};
use crate::report::render_listing;

/// One legacy component under integration, with its monitoring
/// configuration.
pub struct LegacyUnit<'a> {
    /// The black-box component (with replay-only state probes).
    pub component: &'a mut dyn StateObservable,
    /// Signal → port mapping for the `[Message]` monitor records.
    pub ports: PortMap,
    /// Maps monitored state names to the atomic propositions they fulfil.
    pub prop_mapper: Box<dyn Fn(&str) -> Vec<String> + 'a>,
}

impl<'a> LegacyUnit<'a> {
    /// Creates a unit with the default proposition mapper (state `s` of
    /// component `c` fulfils `c.s`).
    pub fn new(component: &'a mut dyn StateObservable, ports: PortMap) -> Self {
        let name = component.name().to_owned();
        LegacyUnit {
            component,
            ports,
            prop_mapper: Box::new(move |state: &str| {
                let mut props = vec![format!("{name}.{state}")];
                if let Some((outer, _)) = state.split_once("::") {
                    props.push(format!("{name}.{outer}"));
                }
                props
            }),
        }
    }

    /// Replaces the proposition mapper.
    #[must_use]
    pub fn with_mapper(mut self, mapper: impl Fn(&str) -> Vec<String> + 'a) -> Self {
        self.prop_mapper = Box::new(mapper);
        self
    }
}

/// Configuration of the synthesis loop.
#[derive(Debug, Clone)]
pub struct IntegrationConfig {
    /// Safety cap on iterations (Theorem 2 guarantees termination for
    /// finite deterministic components; the cap guards misuse).
    pub max_iterations: usize,
    /// Composition options.
    pub compose: ComposeOptions,
    /// Name of the fresh chaos proposition `p′` (Section 2.7).
    pub chaos_prop: String,
    /// How many distinct deadlock counterexamples to derive (and test) per
    /// verification run. `1` reproduces the paper's base scheme; larger
    /// values implement the Section-7 improvement of learning from several
    /// counterexamples per check.
    pub batch_counterexamples: usize,
}

impl Default for IntegrationConfig {
    fn default() -> Self {
        IntegrationConfig {
            max_iterations: 10_000,
            compose: ComposeOptions::default(),
            chaos_prop: "__chaos__".to_owned(),
            batch_counterexamples: 1,
        }
    }
}

/// How one iteration ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IterationOutcome {
    /// The check succeeded — integration proven correct.
    Proven,
    /// The counterexample was refuted by testing; the named component
    /// diverged and its model was refined.
    Refuted {
        /// The component that diverged.
        component: String,
        /// The step index of the divergence.
        divergence: usize,
    },
    /// A confirmed deadlock trace was probed at the frontier and new
    /// behaviour was learned (the deadlock was an artefact).
    FrontierLearned {
        /// The component that was probed.
        component: String,
        /// Number of probe executions.
        probes: usize,
    },
    /// The counterexample (or probed deadlock) is real — a genuine
    /// integration fault.
    Fault,
}

/// Statistics of one iteration.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub index: usize,
    /// Per-component `(states, transitions, refusals)` of the learned
    /// models at the *start* of the iteration.
    pub knowledge: Vec<(usize, usize, usize)>,
    /// Reachable states of `M_a^c ∥ M_a^i`.
    pub composed_states: usize,
    /// The property the model checker reported violated, if any.
    pub violated: Option<String>,
    /// The counterexample of this iteration, rendered in the paper's
    /// listing style (None when the check held).
    pub counterexample: Option<String>,
    /// How the iteration ended.
    pub outcome: IterationOutcome,
}

/// Final verdict of the integration check.
#[derive(Debug, Clone)]
pub enum IntegrationVerdict {
    /// `M_r^c ∥ M_r ⊨ φ ∧ ¬δ` — proven via Lemma 5 without executing the
    /// component along every behaviour.
    Proven,
    /// A real integration fault, witnessed by an executed trace (Lemma 6).
    RealFault {
        /// The violated property (rendered).
        property: String,
        /// The confirmed counterexample trace (composed labels).
        trace: Vec<Label>,
        /// Listing-1.1-style rendering of the counterexample.
        rendered: String,
    },
}

impl IntegrationVerdict {
    /// `true` for [`IntegrationVerdict::Proven`].
    pub fn proven(&self) -> bool {
        matches!(self, IntegrationVerdict::Proven)
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct IntegrationStats {
    /// Number of verification iterations performed.
    pub iterations: usize,
    /// Largest composed state space encountered.
    pub peak_composed_states: usize,
    /// Number of test executions (component resets driven by the harness).
    pub tests_executed: usize,
    /// Total component steps driven.
    pub test_steps: usize,
}

/// The full result of [`verify_integration`].
#[derive(Debug)]
pub struct IntegrationReport {
    /// The verdict.
    pub verdict: IntegrationVerdict,
    /// Per-iteration records (the Figure-2 narrative).
    pub iterations: Vec<IterationRecord>,
    /// The final learned models, one per component.
    pub learned: Vec<IncompleteAutomaton>,
    /// Aggregate statistics.
    pub stats: IntegrationStats,
}

impl IntegrationReport {
    /// Fraction of each component's knowledge that was required:
    /// `(learned states, learned transitions)` per component. The headline
    /// claim C4 — correctness provable *without* learning the whole
    /// component — is measured against the component's true size by the
    /// benchmarks.
    pub fn learned_sizes(&self) -> Vec<(usize, usize)> {
        self.learned
            .iter()
            .map(|m| (m.state_count(), m.transition_count()))
            .collect()
    }
}

/// Runs the combined verification/testing loop of Section 4.
///
/// `context` is the abstract context `M_a^c` (e.g. from
/// `muml_arch::CoordinationPattern::context_for`), `properties` the
/// required timed-ACTL constraints (deadlock freedom `¬δ` is always checked
/// in addition).
///
/// # Errors
///
/// * [`CoreError::NotCompositional`] for properties outside the fragment.
/// * [`CoreError::Replay`] if a component violates determinism.
/// * [`CoreError::IterationLimit`] if the cap is hit (should not happen for
///   finite deterministic components).
/// * Kernel/model-checking failures.
pub fn verify_integration(
    u: &Universe,
    context: &Automaton,
    properties: &[Formula],
    units: &mut [LegacyUnit<'_>],
    config: &IntegrationConfig,
) -> Result<IntegrationReport, CoreError> {
    assert!(!units.is_empty(), "at least one legacy component required");
    for f in properties {
        if !f.is_compositional() {
            return Err(CoreError::NotCompositional {
                formula: f.show(u),
            });
        }
    }
    let chaos = u.prop(&config.chaos_prop);
    let deadlock_free = Formula::deadlock_free();
    // Property ordering matters for soundness of the "confirmed ⇒ real
    // fault" step (Lemma 6):
    //  1. state-local invariants — a realized trace to a violating state is
    //     conclusive on its own, so checking them first gives the paper's
    //     fast conflict detection;
    //  2. deadlock freedom — its counterexamples drive the learning;
    //  3. path-dependent properties (deadlines, nested temporal operators) —
    //     their violations also depend on behaviour *after* the witness
    //     trace, which is only faithful once no deadlock (and hence no
    //     chaos state and no unlearned stutter) is reachable; checking them
    //     after ¬δ guarantees every abstract path is a real path.
    let mut checked: Vec<Formula> = Vec::with_capacity(properties.len() + 1);
    for f in properties.iter().filter(|f| f.is_state_local_invariant()) {
        checked.push(f.weaken_for_chaos(chaos));
    }
    checked.push(deadlock_free.clone());
    for f in properties.iter().filter(|f| !f.is_state_local_invariant()) {
        checked.push(f.weaken_for_chaos(chaos));
    }

    let mut learned: Vec<IncompleteAutomaton> = units
        .iter()
        .map(|unit| {
            let mut m = initial_knowledge(u, unit.component, &unit.prop_mapper);
            apply_props(u, &mut m, &unit.prop_mapper);
            m
        })
        .collect();

    let mut iterations = Vec::new();
    let mut stats = IntegrationStats::default();

    for index in 0..config.max_iterations {
        stats.iterations = index + 1;
        let knowledge: Vec<(usize, usize, usize)> = learned
            .iter()
            .map(|m| (m.state_count(), m.transition_count(), m.refusal_count()))
            .collect();

        // Compose M_a^c ∥ chaos(M_l^i)…
        let closures: Vec<Automaton> = learned
            .iter()
            .map(|m| chaotic_closure(m, Some(chaos)))
            .collect();
        let mut parts: Vec<&Automaton> = vec![context];
        parts.extend(closures.iter());
        let comp = compose(&parts, &config.compose)?;
        stats.peak_composed_states = stats
            .peak_composed_states
            .max(comp.automaton.state_count());

        // …and check φ ∧ ¬δ.
        let verdict = check_all(&comp.automaton, &checked)?;
        let cex = match verdict {
            Verdict::Holds => {
                iterations.push(IterationRecord {
                    index,
                    knowledge,
                    composed_states: comp.automaton.state_count(),
                    violated: None,
                    counterexample: None,
                    outcome: IterationOutcome::Proven,
                });
                return Ok(IntegrationReport {
                    verdict: IntegrationVerdict::Proven,
                    iterations,
                    learned,
                    stats,
                });
            }
            Verdict::Violated(c) => c,
        };

        // Section-7 improvement: for deadlock violations, derive a *batch*
        // of distinct counterexamples (one per reachable deadlock state) so
        // a single verification run feeds several tests.
        let batch = config.batch_counterexamples.max(1);
        let cexs: Vec<muml_logic::Counterexample> =
            if batch > 1 && cex.violated == deadlock_free {
                let v = muml_logic::deadlock_counterexamples(&comp.automaton, batch);
                if v.is_empty() {
                    vec![cex]
                } else {
                    v
                }
            } else {
                vec![cex]
            };

        let mut record_outcome: Option<IterationOutcome> = None;
        let mut record_head: Option<(String, String)> = None; // (violated, listing)

        for cx in &cexs {
            let violated_str = cx.violated.show(u);
            let cex_listing = render_listing(&comp, &cx.run, u);
            if record_head.is_none() {
                record_head = Some((violated_str.clone(), cex_listing.clone()));
            }

            // Test every component along its projection of the
            // counterexample.
            let mut diverged: Option<(String, usize)> = None;
            let mut projections: Vec<Vec<Label>> = Vec::new();
            for (i, unit) in units.iter_mut().enumerate() {
                let idx = i + 1; // component 0 is the context
                let proj = comp.project_run(&cx.run, idx);
                let expected = proj.labels.clone();
                let outcome =
                    execute_expected_trace(unit.component, &expected, u, &unit.ports)?;
                stats.tests_executed += 1;
                stats.test_steps += outcome.observation.labels.len();
                learned[i]
                    .learn(&outcome.observation)
                    .map_err(CoreError::Learning)?;
                if let Some(refusal) = &outcome.refusal {
                    learned[i].learn(refusal).map_err(CoreError::Learning)?;
                }
                apply_props(u, &mut learned[i], &unit.prop_mapper);
                if let Some(t) = outcome.divergence {
                    diverged.get_or_insert((unit.component.name().to_owned(), t));
                }
                projections.push(expected);
            }

            if let Some((component, divergence)) = diverged {
                record_outcome.get_or_insert(IterationOutcome::Refuted {
                    component,
                    divergence,
                });
                continue; // next counterexample of the batch
            }

            // The counterexample is fully realized by every component.
            if cx.violated != deadlock_free {
                // A property violation inside the synthesized/concrete part —
                // chaos states satisfy the weakened property, so the
                // violating state is concrete: a real fault (Lemma 6).
                iterations.push(IterationRecord {
                    index,
                    knowledge,
                    composed_states: comp.automaton.state_count(),
                    violated: Some(violated_str.clone()),
                    counterexample: Some(cex_listing.clone()),
                    outcome: IterationOutcome::Fault,
                });
                return Ok(IntegrationReport {
                    verdict: IntegrationVerdict::RealFault {
                        property: violated_str,
                        trace: cx.run.labels.clone(),
                        rendered: cex_listing,
                    },
                    iterations,
                    learned,
                    stats,
                });
            }

            // Confirmed *deadlock* trace: probe the frontier.
            match probe_frontier(
                u,
                context,
                &closures,
                &comp,
                &cx.run,
                &projections,
                units,
                &mut learned,
                &mut stats,
                config,
            )? {
                FrontierResult::Progress { component, probes } => {
                    record_outcome
                        .get_or_insert(IterationOutcome::FrontierLearned { component, probes });
                }
                FrontierResult::RealDeadlock => {
                    iterations.push(IterationRecord {
                        index,
                        knowledge,
                        composed_states: comp.automaton.state_count(),
                        violated: Some(violated_str.clone()),
                        counterexample: Some(cex_listing.clone()),
                        outcome: IterationOutcome::Fault,
                    });
                    return Ok(IntegrationReport {
                        verdict: IntegrationVerdict::RealFault {
                            property: violated_str,
                            trace: cx.run.labels.clone(),
                            rendered: cex_listing,
                        },
                        iterations,
                        learned,
                        stats,
                    });
                }
            }
        }

        // All counterexamples of the batch were processed without a fault;
        // record the iteration and continue with the refined models.
        let (violated, listing) = record_head.expect("at least one counterexample");
        iterations.push(IterationRecord {
            index,
            knowledge,
            composed_states: comp.automaton.state_count(),
            violated: Some(violated),
            counterexample: Some(listing),
            outcome: record_outcome.unwrap_or(IterationOutcome::FrontierLearned {
                component: "?".to_owned(),
                probes: 0,
            }),
        });
    }
    Err(CoreError::IterationLimit(config.max_iterations))
}
