//! The iterative behaviour synthesis loop (Section 4, Figure 2).
//!
//! ```text
//!          ┌─────────────────────────────────────────────┐
//!          │ 1. synthesize initial behaviour M_a^0       │
//!          └─────────────────────────────────────────────┘
//!                             │
//!          ┌──────────────────▼──────────────────────────┐
//!   ┌──────│ 2. model check  M_a^c ∥ M_a^i ⊨ φ ∧ ¬δ      │──── holds ──▶ PROVEN
//!   │      └─────────────────────────────────────────────┘               (Lemma 5)
//!   │  counterexample π
//!   │      ┌─────────────────────────────────────────────┐
//!   │      │ 3. test legacy component along π|legacy     │── confirmed ─▶ REAL FAULT
//!   │      │    (record + deterministic replay)          │               (Lemma 6)
//!   │      └─────────────────────────────────────────────┘
//!   │  diverged (observation π′, refusal)
//!   │      ┌─────────────────────────────────────────────┐
//!   └──────│ 4. learn π′ into M_l, M_a^{i+1}=chaos(M_l)  │  (Lemma 7)
//!          └─────────────────────────────────────────────┘
//! ```
//!
//! One refinement over the paper's prose is needed for *deadlock*
//! counterexamples: a trace ending in the chaotic `s_δ` can be fully
//! realizable by the component without any real deadlock existing (the
//! deadlock is an artefact of the closure). After a confirmed deadlock
//! trace the driver therefore **probes the frontier**: for every input the
//! context can offer in its final state, it drives the component one step
//! further and checks whether the context accepts the observed response.
//! Either some probe succeeds (fresh knowledge, the loop continues) or
//! every context offer is genuinely refused (a real deadlock, reported as a
//! fault). This preserves Theorem 2's termination argument: every
//! non-terminal iteration strictly grows `|T| + |T̄|`.
//!
//! Multiple legacy components (the extension sketched in Section 7) are
//! supported: each component gets its own incomplete automaton, all
//! closures are composed with the context, counterexamples are projected
//! onto and tested against each component, and frontier probing checks each
//! component against the sub-composition of everything else.
//!
//! Every phase of the loop reports a [`muml_obs::LoopEvent`] to an
//! [`muml_obs::EventSink`] — see [`crate::IntegrationSession`] for the
//! instrumented entry point; [`verify_integration`] runs with a null sink.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use muml_automata::{
    chaotic_closure, Automaton, ComposeOptions, CompositionCache, IncompleteAutomaton, Label,
    LazyProduct, LearnDelta, RecomposeMode, SignalSet, Universe,
};
use muml_legacy::{
    execute_with_retry_pooled, probe_offers_pooled, CacheStats, PortMap, RetryPolicy, RetryReport,
    SimClock, StateObservable, TraceCache,
};
use muml_logic::{check_all_with, fusable, fused_check_all, CheckSeed, Checker, Formula, Verdict};
use muml_obs::{EventSink, LoopEvent, NullSink, Phase, PhaseTimer, PhaseTimings, RunOutcome};
use muml_store::{ComponentSignature, DeltaRecord, Snapshot, Store, StoreLookup};

use crate::cancel::CancelToken;
use crate::error::CoreError;
use crate::initial::{apply_props, initial_knowledge, StatePropMapper};
use crate::probe::{probe_frontier, FrontierResult};
use crate::report::render_listing;

/// One legacy component under integration, with its monitoring
/// configuration.
pub struct LegacyUnit<'a> {
    /// The black-box component (with replay-only state probes).
    pub component: &'a mut dyn StateObservable,
    /// Signal → port mapping for the `[Message]` monitor records.
    pub ports: PortMap,
    /// Maps monitored state names to the atomic propositions they fulfil.
    pub prop_mapper: Box<StatePropMapper<'a>>,
    /// Content signature of the component's interface + rule set, used to
    /// key the warm-start store (see [`IntegrationConfig::with_store`]).
    /// `None` (the default) makes the unit invisible to the store: no
    /// lookup on entry, no snapshot persisted on exit.
    pub signature: Option<ComponentSignature>,
}

impl<'a> LegacyUnit<'a> {
    /// Creates a unit with the default proposition mapper (state `s` of
    /// component `c` fulfils `c.s`).
    pub fn new(component: &'a mut dyn StateObservable, ports: PortMap) -> Self {
        let name = component.name().to_owned();
        LegacyUnit {
            component,
            ports,
            prop_mapper: Box::new(move |state: &str| {
                let mut props = vec![format!("{name}.{state}")];
                if let Some((outer, _)) = state.split_once("::") {
                    props.push(format!("{name}.{outer}"));
                }
                props
            }),
            signature: None,
        }
    }

    /// Replaces the proposition mapper.
    #[must_use]
    pub fn with_mapper(mut self, mapper: impl Fn(&str) -> Vec<String> + 'a) -> Self {
        self.prop_mapper = Box::new(mapper);
        self
    }

    /// Attaches the component's content signature, enabling warm-start
    /// lookups and snapshot persistence when the session carries a store.
    #[must_use]
    pub fn with_signature(mut self, signature: ComponentSignature) -> Self {
        self.signature = Some(signature);
        self
    }
}

/// Configuration of the synthesis loop.
///
/// The struct is `#[non_exhaustive]`; construct it with
/// [`IntegrationConfig::default`] and refine via the chainable `with_*`
/// setters:
///
/// ```
/// use muml_core::IntegrationConfig;
/// let config = IntegrationConfig::default()
///     .with_max_iterations(500)
///     .with_batch_counterexamples(4);
/// assert_eq!(config.max_iterations, 500);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct IntegrationConfig {
    /// Safety cap on iterations (Theorem 2 guarantees termination for
    /// finite deterministic components; the cap guards misuse).
    pub max_iterations: usize,
    /// Composition options.
    pub compose: ComposeOptions,
    /// Name of the fresh chaos proposition `p′` (Section 2.7).
    pub chaos_prop: String,
    /// How many distinct deadlock counterexamples to derive (and test) per
    /// verification run. `1` reproduces the paper's base scheme; larger
    /// values implement the Section-7 improvement of learning from several
    /// counterexamples per check.
    pub batch_counterexamples: usize,
    /// Cooperative cancellation signal. Polled at iteration boundaries and
    /// before each counterexample test; once cancelled (explicitly or past
    /// its deadline) the run ends with [`CoreError::Cancelled`]. `None`
    /// (the default) runs to a verdict or the iteration cap.
    pub cancel: Option<CancelToken>,
    /// Reuse work across learn iterations: patch the cached closures and
    /// product with each iteration's learn delta instead of rebuilding
    /// them, and warm-start the model checker from the previous
    /// iteration's satisfaction sets. Verdicts, counterexamples, and
    /// iteration counts are identical either way (the incremental product
    /// is bit-identical to a cold rebuild); `false` forces the cold path
    /// everywhere, e.g. for differential testing.
    pub incremental: bool,
    /// Retry policy for counterexample tests and frontier probes. The
    /// default (`quorum` 1, a few attempts) behaves exactly like single-shot
    /// execution on a reliable rig; raise the quorum when the rig is known
    /// to be flaky.
    pub retry: RetryPolicy,
    /// How many *stalled* iterations (no knowledge growth, at least one
    /// quarantined counterexample) to tolerate before ending the run with
    /// an honest [`IntegrationVerdict::Inconclusive`]. `0` is strict mode:
    /// the first inconclusive test raises
    /// [`CoreError::Nondeterministic`] instead of degrading.
    pub flake_budget: usize,
    /// Fuse composition and checking: when every checked formula falls in
    /// the fusable fragment (conjunctions of state-local formulas,
    /// `AG local` and `EF local`), each iteration first runs the
    /// on-the-fly product checker — product rows are expanded lazily from
    /// the arena product while the check runs, so a `Holds` verdict (and
    /// an early `EF` witness) never materializes the full composition. A
    /// violated iteration falls back to the materialized path unchanged,
    /// so verdicts, counterexamples, and iteration counts are identical
    /// either way. Off by default.
    pub fused: bool,
    /// Worklist shards for the model checker's unbounded fixpoint engines
    /// (see `muml_logic::Checker::set_shards`). `1` (the default) keeps
    /// the sequential engines; larger values parallelize the two
    /// least-fixpoint worklists on products above the checker's size
    /// threshold, with bit-identical verdicts and work counters.
    pub check_shards: usize,
    /// Content-addressed warm-start store. When set, every unit carrying a
    /// [`ComponentSignature`] is looked up before iteration 0: a hit seeds
    /// the learned abstraction from the persisted snapshot instead of the
    /// chaotic initial one, and the final learned state is persisted back
    /// on every terminal verdict. Store problems (corrupt files, version
    /// skew, I/O errors) degrade to a cold start — they never fail the
    /// run. `None` (the default) keeps the loop fully stateless.
    pub store: Option<Arc<Store>>,
    /// Memoize test executions in a per-component prefix-sharing trace
    /// cache (`muml_legacy::TraceCache`): repeated counterexample tests
    /// are synthesized without re-driving the rig, and frontier probes
    /// resume from a checkpoint at the confirmed prefix instead of
    /// replaying it. Memoization applies only to deterministic rigs —
    /// flaky-rig results enter the cache only after quorum confirmation —
    /// and verdicts are bit-identical either way. On by default; `false`
    /// forces every test through the uncached serial executor, e.g. for
    /// differential testing.
    pub trace_cache: bool,
    /// Scoped-thread pool width for independent rig executions (parallel
    /// frontier probes and speculative quorum attempts, on cloned rigs,
    /// merged in deterministic order). `1` (the default) keeps everything
    /// on the calling thread; verdicts and learned models are identical
    /// for any width.
    pub test_parallelism: usize,
}

impl Default for IntegrationConfig {
    fn default() -> Self {
        IntegrationConfig {
            max_iterations: 10_000,
            compose: ComposeOptions::default(),
            chaos_prop: "__chaos__".to_owned(),
            batch_counterexamples: 1,
            cancel: None,
            incremental: true,
            retry: RetryPolicy::default(),
            flake_budget: 2,
            fused: false,
            check_shards: 1,
            store: None,
            trace_cache: true,
            test_parallelism: 1,
        }
    }
}

impl IntegrationConfig {
    /// Sets the iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the composition options.
    #[must_use]
    pub fn with_compose(mut self, compose: ComposeOptions) -> Self {
        self.compose = compose;
        self
    }

    /// Sets the name of the fresh chaos proposition `p′`.
    #[must_use]
    pub fn with_chaos_prop(mut self, chaos_prop: impl Into<String>) -> Self {
        self.chaos_prop = chaos_prop.into();
        self
    }

    /// Sets how many deadlock counterexamples to derive per check.
    #[must_use]
    pub fn with_batch_counterexamples(mut self, batch: usize) -> Self {
        self.batch_counterexamples = batch;
        self
    }

    /// Attaches a cooperative cancellation token (deadline and/or explicit
    /// shutdown).
    #[must_use]
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Enables or disables incremental recomposition + checker
    /// warm-starting (on by default).
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Sets the retry policy for counterexample tests and frontier probes.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the flake budget (stalled, quarantine-only iterations tolerated
    /// before the run ends inconclusive; `0` = strict mode).
    #[must_use]
    pub fn with_flake_budget(mut self, flake_budget: usize) -> Self {
        self.flake_budget = flake_budget;
        self
    }

    /// Enables or disables the fused composition+checking pre-pass (off by
    /// default).
    #[must_use]
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Sets the model checker's worklist shard count (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_check_shards(mut self, check_shards: usize) -> Self {
        self.check_shards = check_shards.max(1);
        self
    }

    /// Opens (or creates) the warm-start store rooted at `path` and
    /// attaches it to the loop.
    #[must_use]
    pub fn with_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(Arc::new(Store::open(path)));
        self
    }

    /// Attaches an already-open store shared with other sessions (e.g. a
    /// fleet's workers or a resident daemon).
    #[must_use]
    pub fn with_shared_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Enables or disables the prefix-sharing trace cache (on by default).
    #[must_use]
    pub fn with_trace_cache(mut self, trace_cache: bool) -> Self {
        self.trace_cache = trace_cache;
        self
    }

    /// Sets the scoped-thread pool width for independent rig executions
    /// (clamped to at least 1; `1` = fully serial).
    #[must_use]
    pub fn with_test_parallelism(mut self, test_parallelism: usize) -> Self {
        self.test_parallelism = test_parallelism.max(1);
        self
    }
}

/// How one iteration ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IterationOutcome {
    /// The check succeeded — integration proven correct.
    Proven,
    /// The counterexample was refuted by testing; the named component
    /// diverged and its model was refined.
    Refuted {
        /// The component that diverged.
        component: String,
        /// The step index of the divergence.
        divergence: usize,
    },
    /// A confirmed deadlock trace was probed at the frontier and new
    /// behaviour was learned (the deadlock was an artefact).
    FrontierLearned {
        /// The component that was probed.
        component: String,
        /// Number of probe executions.
        probes: usize,
    },
    /// The counterexample (or probed deadlock) is real — a genuine
    /// integration fault.
    Fault,
    /// Every counterexample the iteration could test ended inconclusive
    /// under the unreliable rig and was quarantined; nothing was learned.
    Quarantined {
        /// The first component whose test was inconclusive (`"-"` when the
        /// iteration had only already-quarantined counterexamples left).
        component: String,
    },
}

/// Statistics of one iteration.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub index: usize,
    /// Per-component `(states, transitions, refusals)` of the learned
    /// models at the *start* of the iteration.
    pub knowledge: Vec<(usize, usize, usize)>,
    /// Reachable states of `M_a^c ∥ M_a^i`.
    pub composed_states: usize,
    /// The property the model checker reported violated, if any.
    pub violated: Option<String>,
    /// The counterexample of this iteration, rendered in the paper's
    /// listing style (None when the check held).
    pub counterexample: Option<String>,
    /// How the iteration ended.
    pub outcome: IterationOutcome,
}

/// Final verdict of the integration check.
#[derive(Debug, Clone)]
pub enum IntegrationVerdict {
    /// `M_r^c ∥ M_r ⊨ φ ∧ ¬δ` — proven via Lemma 5 without executing the
    /// component along every behaviour.
    Proven,
    /// A real integration fault, witnessed by an executed trace (Lemma 6).
    RealFault {
        /// The violated property (rendered).
        property: String,
        /// The confirmed counterexample trace (composed labels).
        trace: Vec<Label>,
        /// Listing-1.1-style rendering of the counterexample.
        rendered: String,
    },
    /// The rig was too flaky to reach a verdict: the flake budget was
    /// exhausted with every remaining counterexample quarantined. An honest
    /// "cannot tell" — never a fabricated `Proven` or `RealFault`.
    Inconclusive {
        /// Counterexamples quarantined over the run.
        quarantined: usize,
        /// Total test attempts executed over the run.
        attempts: usize,
    },
}

impl IntegrationVerdict {
    /// `true` for [`IntegrationVerdict::Proven`].
    pub fn proven(&self) -> bool {
        matches!(self, IntegrationVerdict::Proven)
    }

    /// `true` unless the verdict is [`IntegrationVerdict::Inconclusive`].
    pub fn conclusive(&self) -> bool {
        !matches!(self, IntegrationVerdict::Inconclusive { .. })
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct IntegrationStats {
    /// Number of verification iterations performed.
    pub iterations: usize,
    /// Largest composed state space encountered.
    pub peak_composed_states: usize,
    /// Number of test executions (component resets driven by the harness).
    pub tests_executed: usize,
    /// Total component steps driven.
    pub test_steps: usize,
    /// Raw component steps across all test phases (live + re-record +
    /// instrumented replay) — the true harness cost.
    pub driven_steps: usize,
    /// Test attempts executed by the retrying executor (≥
    /// `tests_executed`; equal on a reliable rig).
    pub test_attempts: usize,
    /// Attempts beyond each test's first — the retry overhead.
    pub test_retries: usize,
    /// Attempts rejected as suspected rig faults (replay cross-check
    /// failures plus internally inconsistent outcomes).
    pub suspected_rig_faults: usize,
    /// Tests that exhausted their attempt budget without a conclusive
    /// verdict.
    pub inconclusive_tests: usize,
    /// Counterexamples quarantined because their test was inconclusive.
    pub quarantined_tests: usize,
    /// Retry backoff charged to the simulated clock, in ticks.
    pub backoff_ticks: u64,
    /// Tests served entirely from the trace cache: the verdict was
    /// synthesized from memoized responses with zero rig steps.
    pub trace_cache_hits: usize,
    /// Tests resumed from a trie checkpoint instead of replaying their
    /// prefix from a reset.
    pub trace_cache_resumes: usize,
    /// Rig steps the uncached serial executor would have driven minus the
    /// steps actually driven — the trace cache's counterfactual saving.
    pub trace_cache_saved_steps: usize,
    /// Counterexample projections skipped by the dedup guard because an
    /// identical projection already diverged earlier in this run.
    pub dedup_skipped: usize,
    /// Batches of rig executions dispatched to the scoped-thread pool.
    pub parallel_batches: usize,
    /// Fixpoint / backward-induction iterations of the model checker,
    /// summed over all verification runs.
    pub checker_fixpoint_iterations: u64,
    /// `(state, subformula)` labelings computed by the model checker,
    /// summed over all verification runs.
    pub checker_labeled_states: u64,
    /// Satisfaction-set words read or written by the model checker, summed
    /// over all verification runs.
    pub checker_words_touched: u64,
    /// States popped off the checker's unbounded-operator worklists,
    /// summed over all verification runs.
    pub checker_worklist_pops: u64,
    /// Fixpoint memberships the checker carried over from previous
    /// iterations' seeds instead of re-deriving.
    pub checker_warm_states: u64,
    /// Seed satisfaction-set words translated while warm-starting.
    pub checker_reseeded_words: u64,
    /// Compose-phase nanoseconds spent in cold (full) rebuilds.
    pub compose_cold_ns: u64,
    /// Compose-phase nanoseconds spent splicing incrementally.
    pub compose_incr_ns: u64,
    /// Iterations whose product was rebuilt cold.
    pub recompose_cold: usize,
    /// Iterations whose product was spliced incrementally.
    pub recompose_incremental: usize,
    /// Concrete labels enumerated during composition (free-signal subset
    /// expansion), summed over all compositions.
    pub expanded_labels: u64,
    /// Symbolic guard families emitted un-expanded during composition,
    /// summed over all compositions.
    pub family_guards: u64,
    /// Wall-clock time per loop phase.
    pub timings: PhaseTimings,
}

/// The full result of [`verify_integration`].
#[derive(Debug)]
pub struct IntegrationReport {
    /// The verdict.
    pub verdict: IntegrationVerdict,
    /// Per-iteration records (the Figure-2 narrative).
    pub iterations: Vec<IterationRecord>,
    /// The final learned models, one per component.
    pub learned: Vec<IncompleteAutomaton>,
    /// Aggregate statistics.
    pub stats: IntegrationStats,
}

impl IntegrationReport {
    /// Fraction of each component's knowledge that was required:
    /// `(learned states, learned transitions)` per component. The headline
    /// claim C4 — correctness provable *without* learning the whole
    /// component — is measured against the component's true size by the
    /// benchmarks.
    pub fn learned_sizes(&self) -> Vec<(usize, usize)> {
        self.learned
            .iter()
            .map(|m| (m.state_count(), m.transition_count()))
            .collect()
    }
}

/// Runs the combined verification/testing loop of Section 4.
///
/// `context` is the abstract context `M_a^c` (e.g. from
/// `muml_arch::CoordinationPattern::context_for`), `properties` the
/// required timed-ACTL constraints (deadlock freedom `¬δ` is always checked
/// in addition).
///
/// This is the un-instrumented entry point (events are discarded). To
/// observe the loop — or to use the builder-style API — go through
/// [`crate::IntegrationSession`].
///
/// # Errors
///
/// * [`CoreError::NotCompositional`] for properties outside the fragment.
/// * [`CoreError::Nondeterministic`] if a component test cannot conclude in
///   strict mode (`flake_budget == 0`); with a non-zero flake budget the
///   run degrades to [`IntegrationVerdict::Inconclusive`] instead.
/// * [`CoreError::IterationLimit`] if the cap is hit (should not happen for
///   finite deterministic components).
/// * Kernel/model-checking failures.
#[doc(alias = "IntegrationSession")]
pub fn verify_integration(
    u: &Universe,
    context: &Automaton,
    properties: &[Formula],
    units: &mut [LegacyUnit<'_>],
    config: &IntegrationConfig,
) -> Result<IntegrationReport, CoreError> {
    let mut sink = NullSink;
    run_loop(u, context, properties, units, config, &mut sink)
}

/// The instrumented loop body shared by [`verify_integration`] and
/// [`crate::IntegrationSession`].
pub(crate) fn run_loop(
    u: &Universe,
    context: &Automaton,
    properties: &[Formula],
    units: &mut [LegacyUnit<'_>],
    config: &IntegrationConfig,
    sink: &mut dyn EventSink,
) -> Result<IntegrationReport, CoreError> {
    assert!(!units.is_empty(), "at least one legacy component required");
    for f in properties {
        if !f.is_compositional() {
            return Err(CoreError::NotCompositional { formula: f.show(u) });
        }
    }
    let run_start = Instant::now();
    sink.emit(&LoopEvent::RunStarted {
        components: units
            .iter()
            .map(|unit| unit.component.name().to_owned())
            .collect(),
        properties: properties.len(),
    });
    let chaos = u.prop(&config.chaos_prop);
    let deadlock_free = Formula::deadlock_free();
    // Property ordering matters for soundness of the "confirmed ⇒ real
    // fault" step (Lemma 6):
    //  1. state-local invariants — a realized trace to a violating state is
    //     conclusive on its own, so checking them first gives the paper's
    //     fast conflict detection;
    //  2. deadlock freedom — its counterexamples drive the learning;
    //  3. path-dependent properties (deadlines, nested temporal operators) —
    //     their violations also depend on behaviour *after* the witness
    //     trace, which is only faithful once no deadlock (and hence no
    //     chaos state and no unlearned stutter) is reachable; checking them
    //     after ¬δ guarantees every abstract path is a real path.
    let mut checked: Vec<Formula> = Vec::with_capacity(properties.len() + 1);
    for f in properties.iter().filter(|f| f.is_state_local_invariant()) {
        checked.push(f.weaken_for_chaos(chaos));
    }
    checked.push(deadlock_free.clone());
    for f in properties.iter().filter(|f| !f.is_state_local_invariant()) {
        checked.push(f.weaken_for_chaos(chaos));
    }

    let mut learned: Vec<IncompleteAutomaton> = units
        .iter()
        .map(|unit| {
            let mut m = initial_knowledge(u, unit.component, &unit.prop_mapper);
            apply_props(u, &mut m, &unit.prop_mapper);
            m
        })
        .collect();
    for (unit, m) in units.iter().zip(&learned) {
        sink.emit(&LoopEvent::InitialAbstraction {
            component: unit.component.name().to_owned(),
            states: m.state_count(),
            transitions: m.transition_count(),
            refusals: m.refusal_count(),
        });
    }

    // Flake tolerance: counterexamples whose test ended inconclusive are
    // quarantined (keyed by their rendered listing) so the checker is asked
    // for alternates instead. Declared before the warm-start block because
    // a store hit re-seeds the quarantine of the previous run.
    let mut quarantined: std::collections::HashSet<String> = std::collections::HashSet::new();
    // Warm start (store-backed): replace the chaotic initial abstraction of
    // every signed unit with its persisted learned model. The seeded model
    // is observation-conforming by construction (every snapshot is a final
    // learned state of a previous run against the *same* rule set — the
    // fingerprint guarantees that), so Lemmas 5–7 apply unchanged: the loop
    // merely starts from a later point of the same monotone chain. Any
    // store problem degrades to the cold start above.
    let mut store_history: Vec<Vec<DeltaRecord>> = vec![Vec::new(); units.len()];
    if let Some(store) = config.store.as_deref() {
        for (i, unit) in units.iter().enumerate() {
            let Some(sig) = unit.signature.as_ref() else {
                continue;
            };
            let name = unit.component.name().to_owned();
            let seeded = match store.lookup(sig) {
                StoreLookup::Hit { snapshot } => Some((snapshot, None)),
                StoreLookup::Invalidated {
                    snapshot,
                    touched_states,
                    ..
                } => Some((snapshot, Some(touched_states))),
                StoreLookup::Miss { reason } => {
                    sink.emit(&LoopEvent::StoreMiss {
                        component: name.clone(),
                        reason: reason.describe(),
                    });
                    None
                }
            };
            if let Some((snapshot, touched)) = seeded {
                match IncompleteAutomaton::from_snapshot(u, &snapshot.automaton) {
                    Ok(mut m) => {
                        apply_props(u, &mut m, &unit.prop_mapper);
                        let event = match touched {
                            None => LoopEvent::StoreHit {
                                component: name,
                                fingerprint: sig.fingerprint(),
                                states: m.state_count(),
                                transitions: m.transition_count(),
                                refusals: m.refusal_count(),
                                quarantined: snapshot.quarantined.len(),
                            },
                            Some(touched_states) => LoopEvent::StoreInvalidated {
                                component: name,
                                fingerprint: sig.fingerprint(),
                                touched_states,
                                states: m.state_count(),
                                transitions: m.transition_count(),
                                refusals: m.refusal_count(),
                            },
                        };
                        sink.emit(&event);
                        quarantined.extend(snapshot.quarantined.iter().cloned());
                        store_history[i] = snapshot.history;
                        learned[i] = m;
                    }
                    Err(e) => {
                        sink.emit(&LoopEvent::StoreMiss {
                            component: name,
                            reason: format!("restore failed: {e}"),
                        });
                    }
                }
            }
        }
    }
    // Per-unit learn deltas accumulated over the whole run, merged with the
    // still-pending delta at persistence time to append one history record.
    let mut run_delta: Vec<LearnDelta> = vec![LearnDelta::default(); units.len()];

    let mut iterations = Vec::new();
    let mut stats = IntegrationStats::default();
    // The composition cache owns the chaotic closures and the product and
    // splices each iteration's learn delta into them; the seed carries the
    // previous iteration's satisfaction sets into the next check.
    let mut cache = CompositionCache::new();
    let mut prev_seed: Option<CheckSeed> = None;
    // `stalled` counts consecutive iterations that quarantined without
    // learning anything, bounded by the flake budget.
    let mut stalled = 0usize;
    // All test executions (counterexample tests, frontier probes, frontier
    // read-backs) go through the harness: one trace cache per unit (scoped
    // to the signature fingerprint + rig token) plus the shared retry
    // clock and thread-pool width.
    let mut harness = TestHarness::new(units, config);
    // Dedup guard: projection tuples whose test already *diverged* this
    // run, mapped to the recorded divergence. Confirmed traces are never
    // deduplicated — frontier probing after a confirmed deadlock is
    // control flow the loop must not skip.
    let mut tested_diverged: std::collections::HashMap<String, (String, usize)> =
        std::collections::HashMap::new();

    for index in 0..config.max_iterations {
        check_cancel(config.cancel.as_ref(), index, run_start, sink)?;
        stats.iterations = index + 1;
        sink.emit(&LoopEvent::IterationStarted { iteration: index });
        let knowledge: Vec<(usize, usize, usize)> = learned
            .iter()
            .map(|m| (m.state_count(), m.transition_count(), m.refusal_count()))
            .collect();
        let knowledge_sum_before: usize = knowledge.iter().map(|k| k.0 + k.1 + k.2).sum();

        // Fused pre-pass: when every checked formula is in the fusable
        // fragment, expand the product on the fly from the arena-backed
        // lazy product while checking it. A `Holds` verdict short-circuits
        // the iteration without ever materializing the composition (and an
        // early `EF` witness stops expansion as soon as it is found); any
        // other outcome falls through to the materialized path below,
        // which re-derives the identical verdict together with the full
        // counterexample machinery the learn step needs.
        if config.fused && checked.iter().all(fusable) {
            let fused_timer = PhaseTimer::start(Phase::Check);
            let closures: Vec<Automaton> = learned
                .iter()
                .map(|m| chaotic_closure(m, Some(chaos)))
                .collect();
            let parts: Vec<&Automaton> = std::iter::once(context).chain(closures.iter()).collect();
            let lp = LazyProduct::new(&parts, &config.compose, false)?;
            match fused_check_all(lp, &checked) {
                Ok(run) => {
                    let fused_ns = fused_timer.stop(&mut stats.timings);
                    stats.peak_composed_states =
                        stats.peak_composed_states.max(run.report.states_discovered);
                    sink.emit(&LoopEvent::FusedChecked {
                        iteration: index,
                        holds: matches!(run.verdict, Verdict::Holds),
                        states_expanded: run.report.states_expanded,
                        states_discovered: run.report.states_discovered,
                        early_exit: run.report.early_exit,
                        nanos: fused_ns,
                    });
                    if matches!(run.verdict, Verdict::Holds) {
                        iterations.push(IterationRecord {
                            index,
                            knowledge,
                            composed_states: run.report.states_discovered,
                            violated: None,
                            counterexample: None,
                            outcome: IterationOutcome::Proven,
                        });
                        persist_learned(
                            config,
                            units,
                            &learned,
                            &quarantined,
                            &store_history,
                            &run_delta,
                        );
                        sink.emit(&LoopEvent::RunFinished {
                            iterations: stats.iterations,
                            outcome: RunOutcome::Proven,
                            nanos: run_start.elapsed().as_nanos() as u64,
                        });
                        return Ok(IntegrationReport {
                            verdict: IntegrationVerdict::Proven,
                            iterations,
                            learned,
                            stats,
                        });
                    }
                }
                // Expansion limits and unsupported-counterexample shapes
                // surface identically from the materialized path below;
                // falling through keeps the error reporting in one place.
                Err(_) => {
                    fused_timer.stop(&mut stats.timings);
                }
            }
        }

        // Compose M_a^c ∥ chaos(M_l^i) — incrementally when the learn
        // delta permits, cold otherwise. The incremental product is
        // bit-identical to a cold rebuild, so everything downstream
        // (checking, counterexamples, projections) is mode-agnostic.
        let compose_timer = PhaseTimer::start(Phase::Compose);
        let deltas: Vec<LearnDelta> = learned.iter_mut().map(|m| m.take_delta()).collect();
        for (acc, d) in run_delta.iter_mut().zip(&deltas) {
            acc.merge(d);
        }
        let (info, carry) = cache.recompose(
            context,
            &learned,
            &deltas,
            Some(chaos),
            &config.compose,
            config.incremental,
        )?;
        let comp = cache.composition();
        let compose_ns = compose_timer.stop(&mut stats.timings);
        match info.mode {
            RecomposeMode::Cold => {
                stats.compose_cold_ns += compose_ns;
                stats.recompose_cold += 1;
            }
            RecomposeMode::Incremental => {
                stats.compose_incr_ns += compose_ns;
                stats.recompose_incremental += 1;
            }
        }
        stats.peak_composed_states = stats.peak_composed_states.max(comp.automaton.state_count());
        stats.expanded_labels += comp.stats.expanded_labels;
        stats.family_guards += comp.stats.family_guards;
        sink.emit(&LoopEvent::Composed {
            iteration: index,
            product_states: comp.automaton.state_count(),
            transitions: comp.automaton.transition_count(),
            expanded_labels: comp.stats.expanded_labels,
            family_guards: comp.stats.family_guards,
            nanos: compose_ns,
        });
        sink.emit(&LoopEvent::Recomposed {
            iteration: index,
            mode: info.mode.as_str().to_owned(),
            dirty_states: info.dirty_states,
            reused_states: info.reused_states,
            spliced_transitions: info.spliced_transitions,
        });

        // …and check φ ∧ ¬δ.
        let check_timer = PhaseTimer::start(Phase::Check);
        // The composition already carries the CSR relation; borrowing it
        // keeps adjacency construction out of the timed check phase. When
        // the recompose spliced, warm-start from the previous iteration's
        // satisfaction sets restricted to the carried (clean) states.
        let mut checker = match (prev_seed.take(), &carry) {
            (Some(seed), Some(carry)) => {
                Checker::with_csr_seeded(&comp.automaton, &comp.csr, seed, carry)
            }
            _ => Checker::with_csr(&comp.automaton, &comp.csr),
        };
        checker.set_shards(config.check_shards);
        let verdict = check_all_with(&mut checker, &checked)?;
        let check_ns = check_timer.stop(&mut stats.timings);
        let cstats = checker.stats;
        prev_seed = Some(checker.into_seed());
        stats.checker_fixpoint_iterations += cstats.fixpoint_iterations;
        stats.checker_labeled_states += cstats.labeled_states;
        stats.checker_words_touched += cstats.words_touched;
        stats.checker_worklist_pops += cstats.worklist_pops;
        stats.checker_warm_states += cstats.warm_states;
        stats.checker_reseeded_words += cstats.reseeded_words;
        sink.emit(&LoopEvent::ModelChecked {
            iteration: index,
            holds: matches!(verdict, Verdict::Holds),
            violated: match &verdict {
                Verdict::Holds => None,
                Verdict::Violated(c) => Some(c.violated.show(u)),
            },
            fixpoint_iterations: cstats.fixpoint_iterations,
            labeled_states: cstats.labeled_states,
            words_touched: cstats.words_touched,
            worklist_pops: cstats.worklist_pops,
            peak_resident_sets: cstats.peak_resident_sets,
            warm_states: cstats.warm_states,
            reseeded_words: cstats.reseeded_words,
            nanos: check_ns,
        });
        let cex = match verdict {
            Verdict::Holds => {
                iterations.push(IterationRecord {
                    index,
                    knowledge,
                    composed_states: comp.automaton.state_count(),
                    violated: None,
                    counterexample: None,
                    outcome: IterationOutcome::Proven,
                });
                persist_learned(
                    config,
                    units,
                    &learned,
                    &quarantined,
                    &store_history,
                    &run_delta,
                );
                sink.emit(&LoopEvent::RunFinished {
                    iterations: stats.iterations,
                    outcome: RunOutcome::Proven,
                    nanos: run_start.elapsed().as_nanos() as u64,
                });
                return Ok(IntegrationReport {
                    verdict: IntegrationVerdict::Proven,
                    iterations,
                    learned,
                    stats,
                });
            }
            Verdict::Violated(c) => c,
        };

        // Section-7 improvement: for deadlock violations, derive a *batch*
        // of distinct counterexamples (one per reachable deadlock state) so
        // a single verification run feeds several tests. With quarantined
        // traces present we over-fetch so filtering them still leaves a
        // full batch of untested alternates.
        let batch = config.batch_counterexamples.max(1);
        let primary_head = (cex.violated.show(u), render_listing(comp, &cex.run, u));
        let mut cexs: Vec<muml_logic::Counterexample> = if cex.violated == deadlock_free
            && (batch > 1 || !quarantined.is_empty())
        {
            let v =
                muml_logic::deadlock_counterexamples(&comp.automaton, batch + quarantined.len());
            if v.is_empty() {
                vec![cex]
            } else {
                v
            }
        } else {
            vec![cex]
        };
        cexs.retain(|cx| !quarantined.contains(&render_listing(comp, &cx.run, u)));
        cexs.truncate(batch);

        let mut record_outcome: Option<IterationOutcome> = None;
        let mut record_head: Option<(String, String)> = None; // (violated, listing)
        let mut iteration_quarantines = 0usize;
        if cexs.is_empty() {
            // Every counterexample the checker can currently produce is
            // quarantined — nothing left to test this iteration.
            iteration_quarantines += 1;
            record_outcome = Some(IterationOutcome::Quarantined {
                component: "-".to_owned(),
            });
        }

        for cx in &cexs {
            check_cancel(config.cancel.as_ref(), index, run_start, sink)?;
            let violated_str = cx.violated.show(u);
            let cex_listing = render_listing(comp, &cx.run, u);
            if record_head.is_none() {
                record_head = Some((violated_str.clone(), cex_listing.clone()));
            }
            sink.emit(&LoopEvent::CounterexampleExtracted {
                iteration: index,
                property: violated_str.clone(),
                length: cx.run.labels.len(),
                deadlock: cx.violated == deadlock_free,
            });

            // Test every component along its projection of the
            // counterexample, through the flake-tolerant executor. An
            // inconclusive verdict quarantines the counterexample: its
            // trace never reaches the learner (a corrupted observation
            // would poison the Defs. 11/12 soundness argument).
            let projections: Vec<Vec<Label>> = (0..units.len())
                .map(|i| comp.project_run(&cx.run, i + 1).labels) // component 0 is the context
                .collect();
            // Dedup guard: an identical projection tuple that already
            // diverged this run would re-learn the same observation and
            // re-derive the same refutation — skip the rig entirely.
            let dedup_key = format!("{projections:?}");
            if let Some((component, divergence)) = tested_diverged.get(&dedup_key) {
                stats.dedup_skipped += 1;
                sink.emit(&LoopEvent::CexDeduped {
                    iteration: index,
                    component: component.clone(),
                    divergence: *divergence,
                });
                record_outcome.get_or_insert(IterationOutcome::Refuted {
                    component: component.clone(),
                    divergence: *divergence,
                });
                continue;
            }
            let mut diverged: Option<(String, usize)> = None;
            let mut inconclusive: Option<String> = None;
            for (i, unit) in units.iter_mut().enumerate() {
                let name = unit.component.name().to_owned();
                let expected = &projections[i];
                let test_timer = PhaseTimer::start(Phase::Test);
                let rr = harness.execute(
                    i,
                    unit.component,
                    expected,
                    u,
                    &unit.ports,
                    &config.retry,
                    &mut stats,
                    sink,
                    index,
                );
                let test_ns = test_timer.stop(&mut stats.timings);
                if !rr.verdict.is_conclusive() {
                    if config.flake_budget == 0 {
                        // Strict mode: a rig this unreliable (or a
                        // nondeterministic component) is an error.
                        return Err(CoreError::Nondeterministic {
                            component: name,
                            period: rr.last_replay_period.unwrap_or(0),
                        });
                    }
                    inconclusive = Some(name);
                    break;
                }
                let outcome = rr.outcome.expect("conclusive verdict carries its outcome");
                stats.test_steps += outcome.observation.labels.len();
                sink.emit(&LoopEvent::ReplayExecuted {
                    iteration: index,
                    component: name.clone(),
                    steps: outcome.observation.labels.len(),
                    driven_steps: outcome.driven_steps,
                    divergence: outcome.divergence,
                    nanos: test_ns,
                });
                let learn_timer = PhaseTimer::start(Phase::Learn);
                let before = (
                    learned[i].state_count(),
                    learned[i].transition_count(),
                    learned[i].refusal_count(),
                );
                learned[i]
                    .learn(&outcome.observation)
                    .map_err(CoreError::Learning)?;
                if let Some(refusal) = &outcome.refusal {
                    learned[i].learn(refusal).map_err(CoreError::Learning)?;
                }
                apply_props(u, &mut learned[i], &unit.prop_mapper);
                learn_timer.stop(&mut stats.timings);
                sink.emit(&LoopEvent::LearnStep {
                    iteration: index,
                    component: name.clone(),
                    delta_states: learned[i].state_count() - before.0,
                    delta_transitions: learned[i].transition_count() - before.1,
                    delta_refusals: learned[i].refusal_count() - before.2,
                });
                if let Some(t) = outcome.divergence {
                    diverged.get_or_insert((name, t));
                }
            }

            if let Some(component) = inconclusive {
                quarantined.insert(cex_listing.clone());
                stats.quarantined_tests += 1;
                iteration_quarantines += 1;
                sink.emit(&LoopEvent::Quarantined {
                    iteration: index,
                    component: component.clone(),
                    property: violated_str.clone(),
                    quarantined_total: quarantined.len(),
                });
                record_outcome.get_or_insert(IterationOutcome::Quarantined { component });
                continue; // ask the checker for an alternate counterexample
            }

            if let Some((component, divergence)) = diverged {
                tested_diverged.insert(dedup_key, (component.clone(), divergence));
                record_outcome.get_or_insert(IterationOutcome::Refuted {
                    component,
                    divergence,
                });
                continue; // next counterexample of the batch
            }

            // The counterexample is fully realized by every component.
            if cx.violated != deadlock_free {
                // A property violation inside the synthesized/concrete part —
                // chaos states satisfy the weakened property, so the
                // violating state is concrete: a real fault (Lemma 6).
                iterations.push(IterationRecord {
                    index,
                    knowledge,
                    composed_states: comp.automaton.state_count(),
                    violated: Some(violated_str.clone()),
                    counterexample: Some(cex_listing.clone()),
                    outcome: IterationOutcome::Fault,
                });
                persist_learned(
                    config,
                    units,
                    &learned,
                    &quarantined,
                    &store_history,
                    &run_delta,
                );
                sink.emit(&LoopEvent::RunFinished {
                    iterations: stats.iterations,
                    outcome: RunOutcome::RealFault,
                    nanos: run_start.elapsed().as_nanos() as u64,
                });
                return Ok(IntegrationReport {
                    verdict: IntegrationVerdict::RealFault {
                        property: violated_str,
                        trace: cx.run.labels.clone(),
                        rendered: cex_listing,
                    },
                    iterations,
                    learned,
                    stats,
                });
            }

            // Confirmed *deadlock* trace: probe the frontier. Snapshot the
            // per-component knowledge first so probe-learned knowledge is
            // attributed to this iteration's learn telemetry (instead of
            // silently widening the next iteration's baseline).
            let probe_before: Vec<(usize, usize, usize)> = learned
                .iter()
                .map(|m| (m.state_count(), m.transition_count(), m.refusal_count()))
                .collect();
            let probe_timer = PhaseTimer::start(Phase::Probe);
            let frontier = probe_frontier(
                u,
                context,
                &cache.closures(),
                comp,
                &cx.run,
                &projections,
                units,
                &mut learned,
                &mut stats,
                config,
                sink,
                index,
                &mut harness,
            )?;
            let probe_ns = probe_timer.stop(&mut stats.timings);
            match frontier {
                FrontierResult::Progress { component, probes } => {
                    sink.emit(&LoopEvent::FrontierProbed {
                        iteration: index,
                        component: component.clone(),
                        probes,
                        learned: true,
                        nanos: probe_ns,
                    });
                    for (i, unit) in units.iter().enumerate() {
                        let after = (
                            learned[i].state_count(),
                            learned[i].transition_count(),
                            learned[i].refusal_count(),
                        );
                        if after != probe_before[i] {
                            sink.emit(&LoopEvent::LearnStep {
                                iteration: index,
                                component: unit.component.name().to_owned(),
                                delta_states: after.0 - probe_before[i].0,
                                delta_transitions: after.1 - probe_before[i].1,
                                delta_refusals: after.2 - probe_before[i].2,
                            });
                        }
                    }
                    record_outcome
                        .get_or_insert(IterationOutcome::FrontierLearned { component, probes });
                }
                FrontierResult::Inconclusive { component, probes } => {
                    sink.emit(&LoopEvent::FrontierProbed {
                        iteration: index,
                        component: component.clone(),
                        probes,
                        learned: false,
                        nanos: probe_ns,
                    });
                    if config.flake_budget == 0 {
                        return Err(CoreError::Nondeterministic {
                            component,
                            period: 0,
                        });
                    }
                    quarantined.insert(cex_listing.clone());
                    stats.quarantined_tests += 1;
                    iteration_quarantines += 1;
                    sink.emit(&LoopEvent::Quarantined {
                        iteration: index,
                        component: component.clone(),
                        property: violated_str.clone(),
                        quarantined_total: quarantined.len(),
                    });
                    record_outcome.get_or_insert(IterationOutcome::Quarantined { component });
                }
                FrontierResult::RealDeadlock { probes } => {
                    sink.emit(&LoopEvent::FrontierProbed {
                        iteration: index,
                        component: "-".to_owned(),
                        probes,
                        learned: false,
                        nanos: probe_ns,
                    });
                    iterations.push(IterationRecord {
                        index,
                        knowledge,
                        composed_states: comp.automaton.state_count(),
                        violated: Some(violated_str.clone()),
                        counterexample: Some(cex_listing.clone()),
                        outcome: IterationOutcome::Fault,
                    });
                    persist_learned(
                        config,
                        units,
                        &learned,
                        &quarantined,
                        &store_history,
                        &run_delta,
                    );
                    sink.emit(&LoopEvent::RunFinished {
                        iterations: stats.iterations,
                        outcome: RunOutcome::RealFault,
                        nanos: run_start.elapsed().as_nanos() as u64,
                    });
                    return Ok(IntegrationReport {
                        verdict: IntegrationVerdict::RealFault {
                            property: violated_str,
                            trace: cx.run.labels.clone(),
                            rendered: cex_listing,
                        },
                        iterations,
                        learned,
                        stats,
                    });
                }
            }
        }

        // All counterexamples of the batch were processed without a fault;
        // record the iteration and continue with the refined models.
        let (violated, listing) = record_head.unwrap_or(primary_head);
        iterations.push(IterationRecord {
            index,
            knowledge,
            composed_states: comp.automaton.state_count(),
            violated: Some(violated),
            counterexample: Some(listing),
            outcome: record_outcome.unwrap_or(IterationOutcome::FrontierLearned {
                component: "?".to_owned(),
                probes: 0,
            }),
        });

        // Graceful degradation: an iteration that only quarantined (no
        // knowledge growth) burns one unit of flake budget; learning
        // anything resets the counter. An exhausted budget ends the run
        // with an honest Inconclusive rather than looping forever on a rig
        // too flaky to test.
        let knowledge_sum_after: usize = learned
            .iter()
            .map(|m| m.state_count() + m.transition_count() + m.refusal_count())
            .sum();
        if knowledge_sum_after > knowledge_sum_before {
            stalled = 0;
        } else if iteration_quarantines > 0 {
            stalled += 1;
            if stalled > config.flake_budget {
                persist_learned(
                    config,
                    units,
                    &learned,
                    &quarantined,
                    &store_history,
                    &run_delta,
                );
                sink.emit(&LoopEvent::RunFinished {
                    iterations: stats.iterations,
                    outcome: RunOutcome::Inconclusive,
                    nanos: run_start.elapsed().as_nanos() as u64,
                });
                return Ok(IntegrationReport {
                    verdict: IntegrationVerdict::Inconclusive {
                        quarantined: quarantined.len(),
                        attempts: stats.test_attempts,
                    },
                    iterations,
                    learned,
                    stats,
                });
            }
        }
    }
    sink.emit(&LoopEvent::RunFinished {
        iterations: config.max_iterations,
        outcome: RunOutcome::IterationLimit,
        nanos: run_start.elapsed().as_nanos() as u64,
    });
    Err(CoreError::IterationLimit(config.max_iterations))
}

/// Persists every signed unit's final learned model back into the
/// warm-start store, appending one [`DeltaRecord`] for this run's growth
/// (the accumulated drained deltas merged with the still-pending one) to
/// the snapshot's history. Called once per terminal verdict; a run that
/// learned nothing still refreshes the snapshot (the quarantine list may
/// have changed). Save failures are deliberately ignored — the store has
/// cache semantics, and a full disk must not flip a sound verdict into an
/// error.
fn persist_learned(
    config: &IntegrationConfig,
    units: &[LegacyUnit<'_>],
    learned: &[IncompleteAutomaton],
    quarantined: &std::collections::HashSet<String>,
    store_history: &[Vec<DeltaRecord>],
    run_delta: &[LearnDelta],
) {
    let Some(store) = config.store.as_deref() else {
        return;
    };
    for (i, unit) in units.iter().enumerate() {
        let Some(sig) = unit.signature.as_ref() else {
            continue;
        };
        let m = &learned[i];
        let mut delta = run_delta[i].clone();
        delta.merge(m.pending_delta());
        let mut history = store_history[i].clone();
        let record = DeltaRecord {
            new_states: delta.new_states,
            new_transitions: delta.new_transitions,
            new_refusals: delta.new_refusals,
            initial_changed: delta.initial_changed,
            dirty: delta
                .dirty
                .iter()
                .map(|s| m.state_name(*s).to_owned())
                .collect(),
        };
        if !record.is_empty() {
            history.push(record);
        }
        let mut quarantined: Vec<String> = quarantined.iter().cloned().collect();
        quarantined.sort();
        let snapshot = Snapshot {
            signature: sig.clone(),
            automaton: m.to_snapshot(),
            history,
            quarantined,
        };
        let _ = store.save(&snapshot);
    }
}

/// Books one retried test execution into the stats and emits the
/// rig-health telemetry (`RigFault` when attempts were rejected,
/// `TestRetried` when more than one attempt ran). Shared by the
/// counterexample tests and the frontier probes.
pub(crate) fn note_retry(
    stats: &mut IntegrationStats,
    sink: &mut dyn EventSink,
    iteration: usize,
    component: &str,
    rr: &RetryReport,
) {
    stats.tests_executed += 1;
    stats.test_attempts += rr.attempts;
    stats.test_retries += rr.attempts.saturating_sub(1);
    stats.suspected_rig_faults += rr.suspected_rig_faults();
    // Saturate: a pathological backoff schedule can legitimately report
    // `u64::MAX` ticks per test; the run aggregate must not wrap.
    stats.backoff_ticks = stats.backoff_ticks.saturating_add(rr.backoff_ticks);
    stats.driven_steps += rr.driven_steps;
    if !rr.verdict.is_conclusive() {
        stats.inconclusive_tests += 1;
    }
    if rr.suspected_rig_faults() > 0 {
        sink.emit(&LoopEvent::RigFault {
            iteration,
            component: component.to_owned(),
            suspected: rr.suspected_rig_faults(),
        });
    }
    if rr.attempts > 1 {
        sink.emit(&LoopEvent::TestRetried {
            iteration,
            component: component.to_owned(),
            attempts: rr.attempts,
            replay_errors: rr.replay_errors,
            inconsistent: rr.inconsistent_attempts,
            backoff_ticks: rr.backoff_ticks,
        });
    }
}

/// The shared test-execution front end of the loop: one prefix-sharing
/// [`TraceCache`] per unit (scoped to the unit's signature fingerprint plus
/// rig token), the retry [`SimClock`], and the scoped-thread pool width.
/// Every rig interaction of the run — counterexample tests, frontier probe
/// batches, frontier read-backs — goes through it, so the cache sees every
/// executed word and the stats see every cache delta.
pub(crate) struct TestHarness {
    caches: Vec<Option<TraceCache>>,
    baselines: Vec<CacheStats>,
    clock: SimClock,
    parallelism: usize,
}

impl TestHarness {
    pub(crate) fn new(units: &[LegacyUnit<'_>], config: &IntegrationConfig) -> Self {
        let caches: Vec<Option<TraceCache>> = units
            .iter()
            .map(|unit| {
                config.trace_cache.then(|| {
                    let fp = unit
                        .signature
                        .as_ref()
                        .map(|s| s.fingerprint())
                        .unwrap_or_default();
                    TraceCache::new(format!("{fp}+{}", unit.component.rig_token()))
                })
            })
            .collect();
        let baselines = vec![CacheStats::default(); caches.len()];
        TestHarness {
            caches,
            baselines,
            clock: SimClock::new(),
            parallelism: config.test_parallelism.max(1),
        }
    }

    /// One flake-tolerant test execution for unit `i`, through the cache
    /// and pool, with retry + cache telemetry booked into `stats`/`sink`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute(
        &mut self,
        i: usize,
        component: &mut dyn StateObservable,
        expected: &[Label],
        u: &Universe,
        ports: &PortMap,
        retry: &RetryPolicy,
        stats: &mut IntegrationStats,
        sink: &mut dyn EventSink,
        iteration: usize,
    ) -> RetryReport {
        let name = component.name().to_owned();
        let rr = execute_with_retry_pooled(
            component,
            expected,
            u,
            ports,
            retry,
            &mut self.clock,
            self.caches[i].as_mut(),
            self.parallelism,
        );
        note_retry(stats, sink, iteration, &name, &rr);
        self.book(i, stats, sink, iteration, &name);
        rr
    }

    /// The frontier-probe batch for unit `i`: one verdict per offered
    /// input (in offer order), resumed from the prefix checkpoint and run
    /// on the pool where sound; semantically identical to one
    /// [`TestHarness::execute`] per offer.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe(
        &mut self,
        i: usize,
        component: &mut dyn StateObservable,
        prefix: &[Label],
        offers: &[SignalSet],
        u: &Universe,
        ports: &PortMap,
        retry: &RetryPolicy,
        stats: &mut IntegrationStats,
        sink: &mut dyn EventSink,
        iteration: usize,
    ) -> Vec<RetryReport> {
        let name = component.name().to_owned();
        let reports = probe_offers_pooled(
            component,
            prefix,
            offers,
            u,
            ports,
            retry,
            &mut self.clock,
            self.caches[i].as_mut(),
            self.parallelism,
        );
        for rr in &reports {
            note_retry(stats, sink, iteration, &name, rr);
        }
        self.book(i, stats, sink, iteration, &name);
        reports
    }

    /// Books the cache-stat delta since the last call for unit `i` into
    /// the run stats and emits `TraceCacheUsed` when anything was saved.
    fn book(
        &mut self,
        i: usize,
        stats: &mut IntegrationStats,
        sink: &mut dyn EventSink,
        iteration: usize,
        component: &str,
    ) {
        let Some(cache) = self.caches[i].as_ref() else {
            return;
        };
        let s = cache.stats();
        let b = self.baselines[i];
        self.baselines[i] = s;
        let hits = s.hits - b.hits;
        let resumes = s.resumes - b.resumes;
        let saved = s.saved_steps - b.saved_steps;
        stats.trace_cache_hits += hits;
        stats.trace_cache_resumes += resumes;
        stats.trace_cache_saved_steps += saved;
        stats.parallel_batches += s.parallel_batches - b.parallel_batches;
        if hits > 0 || resumes > 0 || saved > 0 {
            sink.emit(&LoopEvent::TraceCacheUsed {
                iteration,
                component: component.to_owned(),
                hits,
                resumes,
                saved_steps: saved,
            });
        }
    }
}

/// Polls the cancellation token at a loop boundary; a cancelled run emits
/// its terminal telemetry event here so every run — including interrupted
/// ones — ends with exactly one `RunFinished`.
fn check_cancel(
    cancel: Option<&CancelToken>,
    iterations_done: usize,
    run_start: Instant,
    sink: &mut dyn EventSink,
) -> Result<(), CoreError> {
    match cancel {
        Some(token) if token.is_cancelled() => {
            sink.emit(&LoopEvent::RunFinished {
                iterations: iterations_done,
                outcome: RunOutcome::Cancelled,
                nanos: run_start.elapsed().as_nanos() as u64,
            });
            Err(CoreError::Cancelled {
                iterations: iterations_done,
            })
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_setters_chain() {
        let c = IntegrationConfig::default()
            .with_max_iterations(7)
            .with_batch_counterexamples(3)
            .with_chaos_prop("p_prime")
            .with_incremental(false)
            .with_compose(ComposeOptions::default());
        assert_eq!(c.max_iterations, 7);
        assert_eq!(c.batch_counterexamples, 3);
        assert_eq!(c.chaos_prop, "p_prime");
        assert!(!c.incremental);
        assert!(IntegrationConfig::default().incremental);
    }
}
