//! Rendering of counterexamples and integration reports in the paper's
//! listing style.
//!
//! Listing 1.1 of the paper renders a counterexample as alternating lines
//! of composed states and messages:
//!
//! ```text
//! shuttle1.noConvoy, shuttle2.s_all,
//! shuttle2.convoyProposal!, shuttle1.convoyProposal?
//! …
//! ```
//!
//! [`render_listing`] reproduces this format from a run of a
//! [`Composition`]: component states are joined with `, `, sent signals are
//! suffixed `!`, received signals `?`.

use std::fmt::Write as _;

use muml_automata::{Composition, Run, Universe};

use crate::driver::{IntegrationReport, IterationOutcome};

/// Renders a run of a composition in the Listing-1.1 style.
pub fn render_listing(comp: &Composition, run: &Run, u: &Universe) -> String {
    let mut out = String::new();
    let state_line = |s: muml_automata::StateId| -> String {
        comp.automaton
            .state_name(s)
            .split("||")
            .zip(&comp.component_names)
            .map(|(st, comp_name)| {
                // Chaotic-closure copies `name#0` / `name#1` render as the
                // plain state name, as in the paper's listings.
                let st = st
                    .strip_suffix("#0")
                    .or(st.strip_suffix("#1"))
                    .unwrap_or(st);
                format!("{comp_name}.{st}")
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    for (i, label) in run.labels.iter().enumerate() {
        let _ = writeln!(out, "{}", state_line(run.states[i]));
        let mut msgs: Vec<String> = Vec::new();
        for sig in label.outputs.iter() {
            if let Some((k, _)) = comp
                .interfaces
                .iter()
                .enumerate()
                .find(|(_, (_, outs))| outs.contains(sig))
            {
                msgs.push(format!(
                    "{}.{}!",
                    comp.component_names[k],
                    u.signal_name(sig)
                ));
            }
        }
        for sig in label.inputs.iter() {
            if let Some((k, _)) = comp
                .interfaces
                .iter()
                .enumerate()
                .find(|(_, (ins, _))| ins.contains(sig))
            {
                msgs.push(format!(
                    "{}.{}?",
                    comp.component_names[k],
                    u.signal_name(sig)
                ));
            }
        }
        if !msgs.is_empty() {
            let _ = writeln!(out, "{}", msgs.join(", "));
        }
    }
    if let Some(&last) = run.states.last() {
        let _ = writeln!(out, "{}", state_line(last));
    }
    out
}

/// Renders an [`IntegrationReport`] as the per-iteration narrative of
/// Figure 2 (synthesize → check → test → learn).
pub fn render_report(report: &IntegrationReport) -> String {
    let mut out = String::new();
    for rec in &report.iterations {
        let know: Vec<String> = rec
            .knowledge
            .iter()
            .map(|(s, t, r)| format!("{s} states/{t} trans/{r} refusals"))
            .collect();
        let _ = write!(
            out,
            "iteration {}: knowledge [{}], composed {} states — ",
            rec.index,
            know.join("; "),
            rec.composed_states
        );
        match &rec.outcome {
            IterationOutcome::Proven => {
                let _ = writeln!(out, "all properties hold: PROVEN");
            }
            IterationOutcome::Refuted {
                component,
                divergence,
            } => {
                let _ = writeln!(
                    out,
                    "counterexample for {} refuted by testing ({} diverged at step {}), learned",
                    rec.violated.as_deref().unwrap_or("?"),
                    component,
                    divergence
                );
            }
            IterationOutcome::FrontierLearned { component, probes } => {
                let _ = writeln!(
                    out,
                    "deadlock trace confirmed but artefactual; {probes} frontier probe(s) on {component} learned new behaviour"
                );
            }
            IterationOutcome::Fault => {
                let _ = writeln!(
                    out,
                    "counterexample for {} CONFIRMED on the real component: REAL FAULT",
                    rec.violated.as_deref().unwrap_or("?")
                );
            }
            IterationOutcome::Quarantined { component } => {
                let _ = writeln!(
                    out,
                    "testing on {} stayed inconclusive despite retries; counterexample quarantined",
                    component
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "stats: {} iterations, peak {} composed states, {} tests, {} steps driven",
        report.stats.iterations,
        report.stats.peak_composed_states,
        report.stats.tests_executed,
        report.stats.test_steps
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_automata::{compose2, AutomatonBuilder, Run, Universe};

    #[test]
    fn listing_renders_states_and_messages() {
        let u = Universe::new();
        let a = AutomatonBuilder::new(&u, "shuttle1")
            .output("ping")
            .state("noConvoy")
            .initial("noConvoy")
            .state("answer")
            .transition("noConvoy", [], ["ping"], "answer")
            .build()
            .unwrap();
        let b = AutomatonBuilder::new(&u, "shuttle2")
            .input("ping")
            .state("s_all")
            .initial("s_all")
            .transition("s_all", ["ping"], [], "s_all")
            .build()
            .unwrap();
        let comp = compose2(&a, &b).unwrap();
        let m = &comp.automaton;
        let init = m.initial_states()[0];
        let l = m.transitions_from(init)[0].guard.as_exact().unwrap();
        let next = m.successors(init, l)[0];
        let run = Run::regular(vec![init, next], vec![l]);
        let text = render_listing(&comp, &run, &u);
        assert!(text.contains("shuttle1.noConvoy, shuttle2.s_all"));
        assert!(text.contains("shuttle1.ping!"));
        assert!(text.contains("shuttle2.ping?"));
        assert!(text.contains("shuttle1.answer"));
    }
}
