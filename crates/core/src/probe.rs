//! Frontier probing for confirmed deadlock counterexamples.
//!
//! A deadlock trace that the components fully realize does not by itself
//! prove a real deadlock: the trace may merely have run into the chaotic
//! `s_δ`, or into a pessimistic `(s,0)` copy that blocks *unknown*
//! interactions. The probe resolves the ambiguity by experiment:
//!
//! 1. For every legacy component `i`, compose the *rest* of the system
//!    (context + the other components' closures) and move the other
//!    closures to their **optimistic** siblings (`(s,1)` instead of
//!    `(s,0)`, `s_∀` instead of `s_δ`) — an over-approximation of what the
//!    environment of `i` could offer.
//! 2. Collect the input sets that environment can offer to `i` in the
//!    deadlocked configuration, drive `i` one step beyond the confirmed
//!    prefix with each, and learn the observed response (Definitions
//!    11/12).
//! 3. If probing produced new knowledge, the loop simply continues with the
//!    refined models. If **nothing new** was learned, every component's
//!    response to every possibly-offered input at its frontier state is
//!    already known — so the question "does a joint step exist at this
//!    configuration?" is decidable **exactly** from the known behaviour:
//!    a one-step composition of the context (at its deadlock state) with
//!    each component's *known* transitions (at its real frontier state,
//!    read back via replay) either yields a step (the deadlock was an
//!    artefact — possibly resolved by learning earlier in the same batched
//!    iteration) or provably cannot (a **real** deadlock, reported as a
//!    fault).
//!
//! The new-knowledge criterion keeps Theorem 2's termination argument
//! intact; the known-only joint-step check keeps verdicts exact even for
//! stale counterexamples (`IntegrationConfig::batch_counterexamples`) and
//! for multi-legacy configurations where a chaotic sibling could otherwise
//! fake acceptance.

use muml_automata::{
    compose, Automaton, Composition, Guard, IncompleteAutomaton, Label, Run, SignalSet, StateId,
    Universe, S_ALL, S_DELTA,
};
use muml_legacy::TestVerdict;
use muml_obs::EventSink;

use crate::driver::{IntegrationConfig, IntegrationStats, LegacyUnit, TestHarness};
use crate::error::CoreError;
use crate::initial::apply_props;

/// Result of a probe round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FrontierResult {
    /// New knowledge was learned; the deadlock may be an artefact.
    Progress {
        /// The first component that contributed new knowledge.
        component: String,
        /// Total probe executions across all components.
        probes: usize,
    },
    /// Nothing new was learned, but at least one probe (or frontier-state
    /// read-back) could not reach a conclusive verdict within the retry
    /// budget — the deadlock question cannot be decided from this round.
    Inconclusive {
        /// The first component whose probe stayed inconclusive.
        component: String,
        /// Total probe executions across all components.
        probes: usize,
    },
    /// No probe learned anything new — the deadlock is real.
    RealDeadlock {
        /// Total probe executions across all components.
        probes: usize,
    },
}

/// Maps a closure state to its optimistic sibling: `name#0 → name#1`,
/// `s_δ → s_∀`; already-optimistic states map to themselves.
fn optimistic_sibling(closure: &Automaton, s: StateId) -> StateId {
    let name = closure.state_name(s);
    if name == S_DELTA {
        return closure.find_state(S_ALL).unwrap_or(s);
    }
    if let Some(base) = name.strip_suffix("#0") {
        return closure.find_state(&format!("{base}#1")).unwrap_or(s);
    }
    s
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_frontier(
    u: &Universe,
    context: &Automaton,
    closures: &[&Automaton],
    comp: &Composition,
    dead_run: &Run,
    projections: &[Vec<Label>],
    units: &mut [LegacyUnit<'_>],
    learned: &mut [IncompleteAutomaton],
    stats: &mut IntegrationStats,
    config: &IntegrationConfig,
    sink: &mut dyn EventSink,
    iteration: usize,
    harness: &mut TestHarness,
) -> Result<FrontierResult, CoreError> {
    let dead = dead_run.last_state();
    let dead_tuple = &comp.origin[dead.index()];
    let knowledge_before: usize = learned
        .iter()
        .map(|m| m.transition_count() + m.refusal_count() + m.state_count())
        .sum();
    let mut first_learner: Option<String> = None;
    let mut first_inconclusive: Option<String> = None;
    let mut total_probes = 0usize;

    for (i, unit) in units.iter_mut().enumerate() {
        let (own_in, _own_out) = unit.component.interface();
        // Sub-composition of everything except component i, with the other
        // closures moved to their optimistic states.
        let mut parts: Vec<&Automaton> = vec![context];
        let mut proj_tuple: Vec<StateId> = vec![dead_tuple[0]];
        for (j, &c) in closures.iter().enumerate() {
            if j != i {
                parts.push(c);
                proj_tuple.push(optimistic_sibling(c, dead_tuple[j + 1]));
            }
        }
        let others = compose(&parts, &config.compose)?;
        let os = match others.origin.iter().position(|t| t == &proj_tuple) {
            Some(p) => StateId(p as u32),
            None => continue, // optimistic configuration unreachable: skip
        };

        // Offered inputs to component i, deduplicated.
        let mut offers: Vec<SignalSet> = Vec::new();
        for t in others.automaton.transitions_from(os) {
            let offered = match &t.guard {
                Guard::Exact(l) => l.outputs.intersection(own_in),
                Guard::Family(f) => f.out_must.intersection(own_in),
            };
            if !offers.contains(&offered) {
                offers.push(offered);
            }
        }

        let name = unit.component.name().to_owned();
        // Drive the confirmed prefix plus one step with each offered input
        // as one batch: the harness resumes every probe from the shared
        // prefix checkpoint (and runs independent probes on the pool), with
        // one report per offer in offer order — semantically one execution
        // per offer, exactly as the serial loop did. The expected output ∅
        // is a guess — the observation reveals the real response either way
        // (confirmed and diverged verdicts are equally informative for a
        // probe).
        let reports = harness.probe(
            i,
            unit.component,
            &projections[i],
            &offers,
            u,
            &unit.ports,
            &config.retry,
            stats,
            sink,
            iteration,
        );
        for rr in reports {
            let before = learned[i].transition_count()
                + learned[i].refusal_count()
                + learned[i].state_count();
            total_probes += 1;
            let outcome = match rr.outcome {
                Some(o) if rr.verdict.is_conclusive() => o,
                _ => {
                    // The probe never stabilised: skip learning (never feed
                    // the learner an unconfirmed observation) and remember
                    // the component for the verdict below.
                    if first_inconclusive.is_none() {
                        first_inconclusive = Some(name.clone());
                    }
                    continue;
                }
            };
            stats.test_steps += outcome.observation.labels.len();
            learned[i]
                .learn(&outcome.observation)
                .map_err(CoreError::Learning)?;
            if let Some(refusal) = &outcome.refusal {
                learned[i].learn(refusal).map_err(CoreError::Learning)?;
            }
            apply_props(u, &mut learned[i], &unit.prop_mapper);
            let after = learned[i].transition_count()
                + learned[i].refusal_count()
                + learned[i].state_count();
            if after > before && first_learner.is_none() {
                first_learner = Some(name.clone());
            }
        }
    }

    let knowledge_after: usize = learned
        .iter()
        .map(|m| m.transition_count() + m.refusal_count() + m.state_count())
        .sum();
    if knowledge_after > knowledge_before {
        return Ok(FrontierResult::Progress {
            component: first_learner.unwrap_or_else(|| "?".to_owned()),
            probes: total_probes,
        });
    }
    if let Some(component) = first_inconclusive {
        // No growth, and at least one probe never stabilised: the
        // "every relevant response is known" premise of the exact
        // joint-step check does not hold, so no real-deadlock verdict
        // may be issued from this round.
        return Ok(FrontierResult::Inconclusive {
            component,
            probes: total_probes,
        });
    }
    // Nothing new learned: every relevant response is known, so decide the
    // joint-step question exactly from the known behaviour. The frontier
    // state is read back through the retrying executor as well — a raw
    // reset-and-step walk could silently land in the wrong state on a
    // flaky rig, and the verdict below must be exact.
    let mut frontier_states: Vec<String> = Vec::with_capacity(units.len());
    for (i, unit) in units.iter_mut().enumerate() {
        let name = unit.component.name().to_owned();
        let rr = harness.execute(
            i,
            unit.component,
            &projections[i],
            u,
            &unit.ports,
            &config.retry,
            stats,
            sink,
            iteration,
        );
        if !matches!(rr.verdict, TestVerdict::Confirmed) {
            // The previously-confirmed prefix no longer replays cleanly —
            // on a reliable rig this cannot happen, so treat it as rig
            // trouble rather than guessing a frontier state.
            return Ok(FrontierResult::Inconclusive {
                component: name,
                probes: total_probes,
            });
        }
        // The frontier state comes from the confirmed observation, not
        // from the live component: a cache hit synthesizes the verdict
        // without re-driving the rig, so the component may be stale.
        let state = rr
            .outcome
            .as_ref()
            .and_then(|o| o.observation.states.last())
            .cloned();
        match state {
            Some(s) => frontier_states.push(s),
            None => {
                return Ok(FrontierResult::Inconclusive {
                    component: name,
                    probes: total_probes,
                })
            }
        }
    }
    if joint_step_exists(u, context, dead_tuple[0], learned, &frontier_states, config)? {
        Ok(FrontierResult::Progress {
            component: "resolved by earlier learning".to_owned(),
            probes: total_probes,
        })
    } else {
        Ok(FrontierResult::RealDeadlock {
            probes: total_probes,
        })
    }
}

/// Decides whether a joint step exists at the configuration
/// `(ctx_state, frontier_states…)` using only the components' *known*
/// transitions. Builds one-step automata (the configuration state with its
/// outgoing transitions, all retargeted to a sink) and composes them: the
/// composed initial state has an outgoing transition iff a joint step
/// exists.
fn joint_step_exists(
    u: &Universe,
    context: &Automaton,
    ctx_state: StateId,
    learned: &[IncompleteAutomaton],
    frontier_states: &[String],
    config: &IntegrationConfig,
) -> Result<bool, CoreError> {
    use muml_automata::{AutomatonBuilder, Transition};

    // Context slice: its deadlock-configuration state with real transitions
    // retargeted to an absorbing sink.
    let mut slice_parts: Vec<Automaton> = Vec::with_capacity(learned.len() + 1);
    {
        let mut b = AutomatonBuilder::new(u, "ctx@dead");
        for sig in context.inputs().iter() {
            b = b.input(&u.signal_name(sig));
        }
        for sig in context.outputs().iter() {
            b = b.output(&u.signal_name(sig));
        }
        b = b.state("here").initial("here").state("sink");
        let mut ctx_slice = b.build().map_err(CoreError::Automata)?;
        let sink = ctx_slice.find_state("sink").expect("just added");
        let here = ctx_slice.find_state("here").expect("just added");
        let retargeted: Vec<Transition> = context
            .transitions_from(ctx_state)
            .iter()
            .map(|t| Transition {
                guard: t.guard.clone(),
                to: sink,
            })
            .collect();
        ctx_slice.replace_transitions(here, retargeted);
        slice_parts.push(ctx_slice);
    }
    for (m, state_name) in learned.iter().zip(frontier_states) {
        let mut b = AutomatonBuilder::new(u, &format!("{}@dead", m.name()));
        for sig in m.inputs().iter() {
            b = b.input(&u.signal_name(sig));
        }
        for sig in m.outputs().iter() {
            b = b.output(&u.signal_name(sig));
        }
        b = b.state("here").initial("here").state("sink");
        let mut slice = b.build().map_err(CoreError::Automata)?;
        let sink = slice.find_state("sink").expect("just added");
        let here = slice.find_state("here").expect("just added");
        let transitions: Vec<Transition> = match m.find_state(state_name) {
            Some(s) => m
                .transitions_from(s)
                .iter()
                .map(|&(l, _)| Transition {
                    guard: muml_automata::Guard::Exact(l),
                    to: sink,
                })
                .collect(),
            None => Vec::new(), // frontier state never observed: no known step
        };
        slice.replace_transitions(here, transitions);
        slice_parts.push(slice);
    }
    let refs: Vec<&Automaton> = slice_parts.iter().collect();
    let comp = compose(&refs, &config.compose)?;
    let init = comp.automaton.initial_states()[0];
    Ok(!comp.automaton.transitions_from(init).is_empty())
}
