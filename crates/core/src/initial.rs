//! Initial behaviour synthesis (Section 3, Lemma 4).
//!
//! From the known structural interface of a legacy component and its initial
//! state (obtainable by light-weight reverse engineering), synthesize the
//! trivial incomplete automaton `M_l^0 = ({s₀}, I, O, ∅, ∅, {s₀})` and take
//! the chaotic closure `M_a^0 = chaos(M_l^0)` — the first safe abstraction
//! of the series (`M_r ⊑ M_a^0`).

use muml_automata::{chaotic_closure, Automaton, IncompleteAutomaton, PropId, SignalSet, Universe};
use muml_legacy::StateObservable;

/// Assigns atomic propositions to monitored legacy state names.
///
/// The pattern constraint may refer to propositions of the legacy
/// component's states (the DistanceCoordination constraint refers to
/// `rearRole.convoy`); the mapper tells the learner which propositions a
/// monitored state fulfils. The default maps state `s` of component `c` to
/// the single proposition `c.s`.
pub type StatePropMapper<'a> = dyn Fn(&str) -> Vec<String> + 'a;

/// Builds the trivial incomplete automaton `M_l^0` for a component: its
/// interface plus the known initial state (Lemma 4).
pub fn initial_knowledge(
    u: &Universe,
    component: &dyn StateObservable,
    mapper: &StatePropMapper<'_>,
) -> IncompleteAutomaton {
    let (inputs, outputs) = component.interface();
    let initial = component.initial_state_name();
    let mut m = IncompleteAutomaton::trivial(u, component.name(), inputs, outputs, &initial);
    apply_props(u, &mut m, mapper);
    m
}

/// Labels every state of the incomplete automaton according to `mapper`
/// (idempotent; called after each learning step for newly added states).
pub fn apply_props(u: &Universe, m: &mut IncompleteAutomaton, mapper: &StatePropMapper<'_>) {
    let names: Vec<String> = (0..m.state_count())
        .map(|i| m.state_name(muml_automata::StateId(i as u32)).to_owned())
        .collect();
    for name in names {
        for prop in mapper(&name) {
            m.set_prop(&name, u.prop(&prop));
        }
    }
}

/// The initial safe abstraction `M_a^0 = chaos(M_l^0)` of Lemma 4.
pub fn initial_abstraction(
    u: &Universe,
    component: &dyn StateObservable,
    chaos_prop: PropId,
    mapper: &StatePropMapper<'_>,
) -> (IncompleteAutomaton, Automaton) {
    let m0 = initial_knowledge(u, component, mapper);
    let a0 = chaotic_closure(&m0, Some(chaos_prop));
    (m0, a0)
}

/// The default proposition mapper: state `s` of component `c` fulfils the
/// proposition `c.s` (with composite-state qualifiers stripped to their
/// outermost name, so `noConvoy::wait` also fulfils `c.noConvoy`).
pub fn default_mapper(component: &str) -> impl Fn(&str) -> Vec<String> + '_ {
    move |state: &str| {
        let mut props = vec![format!("{component}.{state}")];
        if let Some((outer, _)) = state.split_once("::") {
            props.push(format!("{component}.{outer}"));
        }
        props
    }
}

/// Checks that the component's interface matches what the context expects.
pub fn interface_matches(
    component: &dyn StateObservable,
    expected_inputs: SignalSet,
    expected_outputs: SignalSet,
) -> bool {
    let (i, o) = component.interface();
    i == expected_inputs && o == expected_outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_automata::{S_ALL, S_DELTA};
    use muml_legacy::MealyBuilder;

    #[test]
    fn trivial_initial_abstraction_matches_figure_4() {
        let u = Universe::new();
        let c = MealyBuilder::new(&u, "shuttle2")
            .input("startConvoy")
            .output("convoyProposal")
            .state("noConvoy")
            .initial("noConvoy")
            .build()
            .unwrap();
        let chaos = u.prop("__chaos__");
        let mapper = default_mapper("shuttle2");
        let (m0, a0) = initial_abstraction(&u, &c, chaos, &mapper);
        // Figure 4(a): one state, no transitions.
        assert_eq!(m0.state_count(), 1);
        assert_eq!(m0.transition_count(), 0);
        // Figure 4(b): the doubled state plus the two chaotic states.
        assert_eq!(a0.state_count(), 4);
        assert!(a0.find_state("noConvoy#0").is_some());
        assert!(a0.find_state("noConvoy#1").is_some());
        assert!(a0.find_state(S_ALL).is_some());
        assert!(a0.find_state(S_DELTA).is_some());
        // props: the known state carries shuttle2.noConvoy; chaos carries p′.
        let nc = a0.find_state("noConvoy#0").unwrap();
        assert!(a0.props_of(nc).contains(u.prop("shuttle2.noConvoy")));
        let sd = a0.find_state(S_DELTA).unwrap();
        assert!(a0.props_of(sd).contains(chaos));
    }

    #[test]
    fn default_mapper_strips_composite_qualifier() {
        let m = default_mapper("c");
        assert_eq!(m("convoy"), vec!["c.convoy".to_owned()]);
        assert_eq!(
            m("noConvoy::wait"),
            vec!["c.noConvoy::wait".to_owned(), "c.noConvoy".into()]
        );
    }

    #[test]
    fn interface_check() {
        let u = Universe::new();
        let c = MealyBuilder::new(&u, "c")
            .input("a")
            .output("b")
            .state("s")
            .initial("s")
            .build()
            .unwrap();
        assert!(interface_matches(&c, u.signals(["a"]), u.signals(["b"])));
        assert!(!interface_matches(&c, u.signals(["b"]), u.signals(["a"])));
    }
}
