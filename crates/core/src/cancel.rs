//! Cooperative cancellation for the synthesis loop.
//!
//! The loop is a CPU- and harness-bound computation with no natural
//! preemption points, so cancellation is *cooperative*: a [`CancelToken`]
//! is polled at iteration boundaries and before each counterexample test.
//! A cancelled run ends with [`CoreError::Cancelled`](crate::CoreError)
//! carrying the number of iterations completed, and emits a
//! `RunFinished { outcome: Cancelled }` telemetry event — partial learned
//! knowledge is intentionally *not* returned, because an interrupted run
//! gives no Lemma-5 guarantee to build on.
//!
//! Tokens are cheap to clone (an `Arc` plus a copied deadline) and safe to
//! signal from any thread; the fleet orchestrator hands one to every job so
//! per-job wall-clock deadlines and explicit shutdown share one mechanism.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation signal with an optional wall-clock deadline.
///
/// The token is cancelled when either [`CancelToken::cancel`] has been
/// called (on this token or any clone) or the deadline has passed. Polling
/// is wait-free: one atomic load plus, when a deadline is set, one
/// monotonic-clock read.
///
/// ```
/// use muml_core::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally cancels once `timeout` has elapsed from
    /// now. `Duration::ZERO` yields a token that is already expired —
    /// useful for deterministic timeout tests.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// A token sharing this token's cancellation flag, with a deadline of
    /// `timeout` from now. Cancelling either token (or any clone) cancels
    /// both; the deadline only applies to the returned token. This is how a
    /// job server arms a per-attempt deadline on a job whose base token a
    /// client may cancel at any time: the attempt observes whichever fires
    /// first.
    #[must_use]
    pub fn deadline_from_now(&self, timeout: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// Signals cancellation to this token and every clone sharing its flag.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once cancelled explicitly or past the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
            || self
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// The remaining time until the deadline (`None` when no deadline is
    /// set; zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_propagates_to_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        assert!(token.remaining().is_none());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadline_from_now_shares_the_flag() {
        let base = CancelToken::new();
        let armed = base.deadline_from_now(Duration::from_secs(3600));
        assert!(!armed.is_cancelled());
        assert!(armed.remaining().is_some());
        // Cancelling the base token cancels the deadline-armed one too.
        base.cancel();
        assert!(armed.is_cancelled());
        // An expired deadline cancels the armed token without touching the
        // base flag.
        let base = CancelToken::new();
        let expired = base.deadline_from_now(Duration::ZERO);
        assert!(expired.is_cancelled());
        assert!(!base.is_cancelled());
    }

    #[test]
    fn zero_timeout_is_immediately_cancelled() {
        let token = CancelToken::with_timeout(Duration::ZERO);
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_timeout_is_not_yet_cancelled() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().unwrap() > Duration::from_secs(3000));
    }
}
