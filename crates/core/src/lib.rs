//! Iterative behaviour synthesis: combined formal verification and
//! counterexample-guided testing for correct legacy component integration
//! in Mechatronic UML.
//!
//! This crate is the primary contribution of *Giese, Henkler, Hirsch:
//! Combining Formal Verification and Testing for Correct Legacy Component
//! Integration in Mechatronic UML* (LNCS 5135, 2008), built on the
//! substrates of this workspace:
//!
//! 1. **Initial behaviour synthesis** (Section 3, [`initial_abstraction`]):
//!    from the component's structural interface and its known initial
//!    state, build the trivial incomplete automaton `M_l^0` and the first
//!    safe abstraction `M_a^0 = chaos(M_l^0)` (`M_r ⊑ M_a^0`, Lemma 4).
//! 2. **Verification step** (Section 4.1): model check
//!    `M_a^c ∥ M_a^i ⊨ φ ∧ ¬δ`. Success transfers to the real system by
//!    Lemma 5 — *without ever learning the whole component*, because only
//!    behaviour relevant under the given context is explored.
//! 3. **Testing step** (Section 4.2): execute the counterexample against
//!    the real component with record + deterministic replay. A confirmed
//!    trace is a real fault — no false negatives (Lemma 6).
//! 4. **Learning step** (Section 4.3): merge the observed divergence into
//!    `M_l^{i+1}` (Definitions 11/12); refinement is preserved (Lemma 7)
//!    and the loop terminates for finite deterministic components
//!    (Theorem 2).
//!
//! The driver [`verify_integration`] also implements the Section-7
//! extension to multiple legacy components (parallel learning of several
//! incomplete automata under one context).
//!
//! Every phase of the loop emits a structured [`obs::LoopEvent`]; attach a
//! sink through the builder-style [`IntegrationSession`] to observe the
//! run (the example below collects the events in memory — use
//! [`obs::Renderer`] for the paper-listing rendering or
//! [`obs::JsonWriter`] for JSON lines).
//!
//! # Example
//!
//! ```
//! use muml_automata::{AutomatonBuilder, Universe};
//! use muml_core::{obs::Collector, IntegrationSession, LegacyUnit};
//! use muml_legacy::{MealyBuilder, PortMap};
//!
//! let u = Universe::new();
//! // A context that sends `go` and then expects `done` (forever).
//! let context = AutomatonBuilder::new(&u, "ctx")
//!     .output("go").input("done")
//!     .state("send").initial("send")
//!     .state("wait")
//!     .transition("send", [], ["go"], "wait")
//!     .transition("wait", ["done"], [], "send")
//!     .build().unwrap();
//! // A legacy component that behaves accordingly (it answers one period
//! // after receiving `go` — composition is synchronous and lock-stepped).
//! let mut legacy = MealyBuilder::new(&u, "legacy")
//!     .input("go").output("done")
//!     .state("idle").initial("idle")
//!     .state("got")
//!     .rule("idle", ["go"], [], "got")
//!     .rule("got", [], ["done"], "idle")
//!     .build().unwrap();
//! let mut sink = Collector::new();
//! let report = IntegrationSession::new(&u, &context)
//!     .unit(LegacyUnit::new(&mut legacy, PortMap::with_default("port")))
//!     .sink(&mut sink)
//!     .run()
//!     .unwrap();
//! assert!(report.verdict.proven());
//! // One composed/model-checked iteration, reported as structured events:
//! assert!(sink.kinds().contains(&"model_checked"));
//! assert!(report.stats.timings.total_ns() > 0);
//! ```

#![warn(missing_docs)]

mod cancel;
mod driver;
mod error;
mod initial;
mod probe;
mod report;
mod session;

pub use muml_obs as obs;
pub use muml_store as store;

pub use cancel::CancelToken;
pub use driver::{
    verify_integration, IntegrationConfig, IntegrationReport, IntegrationStats, IntegrationVerdict,
    IterationOutcome, IterationRecord, LegacyUnit,
};
pub use error::CoreError;
pub use initial::{
    apply_props, default_mapper, initial_abstraction, initial_knowledge, interface_matches,
    StatePropMapper,
};
pub use report::{render_listing, render_report};
pub use session::IntegrationSession;
