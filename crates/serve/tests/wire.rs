//! End-to-end protocol tests over real sockets: typed answers to hostile
//! frames, the two-client cancel race, admission bursts, event
//! subscription, and shutdown semantics.

use std::io::Write;
use std::time::Duration;

use muml_core::{CoreError, IntegrationReport, IntegrationStats, IntegrationVerdict};
use muml_fleet::{JobContext, JobRegistry, JobRequest};
use muml_obs::json::Json;
use muml_serve::{
    CancelState, Daemon, Priority, Response, ServeClient, ServeConfig, ServeError, Server,
};

/// A registry with a `noop` scenario: variant `slow` sleeps in
/// cancellable 1ms steps; anything else proves instantly.
fn test_registry() -> JobRegistry {
    let mut registry = JobRegistry::new();
    registry.register("noop", |request| {
        let slow = request.variant == "slow";
        Ok(Box::new(move |ctx: &JobContext| {
            if slow {
                // Effectively pinned until cancelled (10-minute ceiling).
                for _ in 0..600_000 {
                    if ctx.cancel.is_cancelled() {
                        return Err(CoreError::Cancelled { iterations: 1 });
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Ok(IntegrationReport {
                verdict: IntegrationVerdict::Proven,
                iterations: Vec::new(),
                learned: Vec::new(),
                stats: IntegrationStats::default(),
            })
        }))
    });
    registry
}

fn noop(id: usize) -> JobRequest {
    JobRequest::new(id, format!("noop-{id}")).with_scenario("noop")
}

fn slow(id: usize) -> JobRequest {
    noop(id).with_variant("slow")
}

fn start_tcp(config: ServeConfig) -> (Server, String) {
    let daemon = Daemon::start(config, test_registry());
    let server = Server::bind(daemon, Some("127.0.0.1:0"), None).expect("bind");
    let addr = server.tcp_addr().expect("tcp addr").to_string();
    (server, addr)
}

#[test]
fn submit_wait_over_tcp() {
    let (server, addr) = start_tcp(ServeConfig::default());
    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    let job = client.submit(&noop(0), Priority::Normal).unwrap();
    let record = client.wait(job).unwrap();
    assert_eq!(record.outcome, "proven");
    assert_eq!(record.request.name, "noop-0");
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.scenarios, ["noop"]);
    let history = client.history().unwrap();
    assert_eq!(history.len(), 1);
    server.stop();
}

#[test]
fn submit_wait_over_unix_socket() {
    let path = std::env::temp_dir().join(format!("muml-serve-test-{}.sock", std::process::id()));
    let daemon = Daemon::start(ServeConfig::default(), test_registry());
    let server = Server::bind(daemon, None, Some(&path)).expect("bind unix");
    let mut client = ServeClient::connect_unix(&path).unwrap();
    let job = client.submit(&noop(0), Priority::Normal).unwrap();
    assert_eq!(client.wait(job).unwrap().outcome, "proven");
    server.stop();
    assert!(!path.exists(), "socket file is cleaned up on stop");
}

#[test]
fn two_client_cancel_race_yields_one_signal_and_one_already_done() {
    // Two clients race to cancel the same running job. Exactly one
    // observes the transition (`signalled` / `removed`); the later one
    // sees `already-done` once the verdict lands. Neither errors, and
    // the final verdict is `cancelled` either way.
    for _ in 0..5 {
        let (server, addr) = start_tcp(ServeConfig::default().with_workers(1));
        let mut submitter = ServeClient::connect_tcp(&addr).unwrap();
        let job = submitter.submit(&slow(0), Priority::Normal).unwrap();

        let addr_a = addr.clone();
        let addr_b = addr.clone();
        let racer = |addr: String| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect_tcp(&addr).unwrap();
                client.cancel(job)
            })
        };
        let a = racer(addr_a).join().map_err(|_| "panic").unwrap();
        let b = racer(addr_b).join().map_err(|_| "panic").unwrap();
        let states = [a.unwrap(), b.unwrap()];
        assert!(
            states
                .iter()
                .all(|s| matches!(s, CancelState::Signalled | CancelState::AlreadyDone)),
            "{states:?}"
        );
        assert!(
            states.contains(&CancelState::Signalled),
            "someone must win the race: {states:?}"
        );
        assert_eq!(submitter.wait(job).unwrap().outcome, "cancelled");
        server.stop();
    }
}

#[test]
fn admission_burst_gets_typed_rejections_and_daemon_survives() {
    // A 1000-job burst against a deliberately tiny queue: every overflow
    // is a typed queue-full rejection (never a hang, never a disconnect),
    // and afterwards the daemon still serves a fresh submission.
    let config = ServeConfig::default()
        .with_workers(1)
        .with_max_pending(8)
        .with_max_pending_per_client(1_000_000);
    let (server, addr) = start_tcp(config);
    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    let pinned = client.submit(&slow(0), Priority::Normal).unwrap();
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for i in 1..=1_000 {
        match client.submit(&noop(i), Priority::Normal) {
            Ok(id) => accepted.push(id),
            Err(ServeError::QueueFull { limit, .. }) => {
                assert_eq!(limit, 8);
                rejected += 1;
            }
            Err(other) => panic!("expected queue-full, got {other:?}"),
        }
    }
    assert!(rejected >= 900, "only {rejected} rejections");
    assert!(client.stats().unwrap().rejected >= rejected as u64);
    // Still alive: free the worker, drain, then serve one more.
    client.cancel(pinned).unwrap();
    for id in accepted {
        assert_eq!(client.wait(id).unwrap().outcome, "proven");
    }
    let extra = client.submit(&noop(2_000), Priority::Normal).unwrap();
    assert_eq!(client.wait(extra).unwrap().outcome, "proven");
    server.stop();
}

#[test]
fn per_client_limits_key_on_connections() {
    let config = ServeConfig::default()
        .with_workers(1)
        .with_max_pending(100)
        .with_max_pending_per_client(2);
    let (server, addr) = start_tcp(config);
    let mut greedy = ServeClient::connect_tcp(&addr).unwrap();
    let pinned = greedy.submit(&slow(0), Priority::Normal).unwrap();
    greedy.submit(&noop(1), Priority::Normal).unwrap();
    let err = greedy.submit(&noop(2), Priority::Normal).unwrap_err();
    assert_eq!(err.code(), "client-limit");
    // A second connection is a distinct client and gets through.
    let mut other = ServeClient::connect_tcp(&addr).unwrap();
    let job = other.submit(&noop(3), Priority::Normal).unwrap();
    greedy.cancel(pinned).unwrap();
    assert_eq!(other.wait(job).unwrap().outcome, "proven");
    server.stop();
}

#[test]
fn hostile_frames_get_typed_answers_not_disconnects() {
    let (server, addr) = start_tcp(ServeConfig::default().with_max_frame(4096));
    let mut client = ServeClient::connect_tcp(&addr).unwrap();

    // Unknown method.
    let reply = client
        .call_raw(&Json::Object(vec![
            ("v".into(), Json::Int(1)),
            ("method".into(), Json::Str("teleport".into())),
        ]))
        .unwrap();
    match reply {
        Response::Rejected { error } => assert_eq!(error.code(), "unknown-method"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Future protocol version.
    let reply = client
        .call_raw(&Json::Object(vec![
            ("v".into(), Json::Int(99)),
            ("method".into(), Json::Str("stats".into())),
        ]))
        .unwrap();
    match reply {
        Response::Rejected { error } => assert_eq!(error.code(), "unsupported-version"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Non-object payload.
    let reply = client.call_raw(&Json::Str("hello".into())).unwrap();
    match reply {
        Response::Rejected { error } => assert_eq!(error.code(), "malformed-request"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Oversized frame: the server drains it and answers typed.
    let huge = Json::Object(vec![
        ("v".into(), Json::Int(1)),
        ("method".into(), Json::Str("x".repeat(8192))),
    ]);
    let reply = client.call_raw(&huge).unwrap();
    match reply {
        Response::Rejected { error } => assert_eq!(error.code(), "oversized-frame"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // The same connection still works after all four insults.
    let job = client.submit(&noop(0), Priority::Normal).unwrap();
    assert_eq!(client.wait(job).unwrap().outcome, "proven");
    server.stop();
}

#[test]
fn truncated_frame_ends_only_that_connection() {
    let (server, addr) = start_tcp(ServeConfig::default());
    // Hand-roll a liar: header promises 100 bytes, connection sends 3.
    {
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(b"abc").unwrap();
        drop(raw);
    }
    // The daemon is unimpressed; a well-behaved client still works.
    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    let job = client.submit(&noop(0), Priority::Normal).unwrap();
    assert_eq!(client.wait(job).unwrap().outcome, "proven");
    server.stop();
}

#[test]
fn subscribers_stream_lifecycle_events_over_the_wire() {
    let (server, addr) = start_tcp(ServeConfig::default());
    let subscriber = ServeClient::connect_tcp(&addr).unwrap();
    let events = subscriber.subscribe().unwrap();
    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    let job = client.submit(&noop(0), Priority::Normal).unwrap();
    client.wait(job).unwrap();
    client.shutdown().unwrap();
    let kinds: Vec<String> = events
        .filter_map(|response| match response {
            Response::Event {
                stream, payload, ..
            } => {
                assert_eq!(stream, "fleet");
                payload
                    .get("event")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
            }
            _ => None,
        })
        .collect();
    assert!(kinds.contains(&"job_started".to_owned()), "{kinds:?}");
    assert!(kinds.contains(&"job_finished".to_owned()), "{kinds:?}");
    server.wait();
}

#[test]
fn client_shutdown_request_stops_the_server() {
    let (server, addr) = start_tcp(ServeConfig::default());
    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    let job = client.submit(&noop(0), Priority::Normal).unwrap();
    client.wait(job).unwrap();
    client.shutdown().unwrap();
    server.wait();
    // New connections are refused (or die immediately): either connect
    // fails or the first round trip does.
    match ServeClient::connect_tcp(&addr) {
        Err(_) => {}
        Ok(mut late) => {
            assert!(late.stats().is_err() || late.submit(&noop(1), Priority::Normal).is_err());
        }
    }
}

#[test]
fn wire_verdicts_match_direct_fleet_execution() {
    // Determinism across the wire: the daemon's verdict for a request
    // equals running the same resolved job in-process.
    let (server, addr) = start_tcp(ServeConfig::default());
    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    let request = noop(7).with_retries(1);
    let job = client.submit(&request, Priority::Normal).unwrap();
    let wire = client.wait(job).unwrap();

    let direct = test_registry().resolve(&request).unwrap();
    let (outcome, iterations, _) = muml_fleet::classify((direct.work)(&JobContext::default()));
    assert_eq!(wire.outcome, outcome.name());
    assert_eq!(wire.iterations, iterations);
    assert_eq!(wire.request, request);
    server.stop();
}
