//! Kill-and-restart recovery against the real `muml-serve` binary.
//!
//! The in-process replay tests in `server.rs` stop daemons politely; this
//! test is the honest version of the crash story: spawn the actual binary
//! with a journal, complete verdicts over TCP, SIGKILL the process (no
//! shutdown path runs, no buffer flushes), restart on the same journal,
//! and demand the replayed verdict history be bit-identical.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use muml_fleet::JobRequest;
use muml_serve::{Priority, ServeClient, RAILCAB_PATTERN, RAILCAB_SCENARIO};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "muml-crash-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Spawns the daemon binary on an OS-assigned port with the given journal
/// and scrapes the printed TCP address.
fn spawn_daemon(journal: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_muml-serve"))
        .arg("--tcp")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("2")
        .arg("--journal")
        .arg(journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn muml-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon stdout");
        if let Some(addr) = line.strip_prefix("muml-serve: listening on tcp ") {
            break addr.trim().to_owned();
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn request(id: usize, variant: &str, fault: Option<&str>) -> JobRequest {
    let mut request = JobRequest::new(id, format!("{variant}/{}", fault.unwrap_or("baseline")))
        .with_scenario(RAILCAB_SCENARIO)
        .with_pattern(RAILCAB_PATTERN)
        .with_variant(variant)
        .with_max_iterations(10_000)
        .with_latency(Duration::ZERO);
    if let Some(fault) = fault {
        request = request.with_fault(fault);
    }
    request
}

fn connect_with_retry(addr: &str) -> ServeClient {
    let mut last_attempt = 0;
    loop {
        match ServeClient::connect_tcp(addr) {
            Ok(client) => return client,
            Err(_) if last_attempt < 50 => {
                last_attempt += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("could not connect to {addr}: {e}"),
        }
    }
}

#[test]
fn sigkill_then_restart_replays_the_verdict_history_bit_identically() {
    let dir = tmpdir("sigkill");
    let journal = dir.join("serve.journal");

    // First life: complete a small campaign, capture the verdict history,
    // then SIGKILL the process — journal appends are the only persistence
    // that can possibly survive this.
    let (mut first, addr) = spawn_daemon(&journal);
    let history = {
        let mut client = connect_with_retry(&addr);
        let requests = [
            request(0, "correct", None),
            request(1, "faulty", None),
            request(2, "full", None),
        ];
        for r in &requests {
            let job = client.submit(r, Priority::Normal).expect("submit");
            client.wait(job).expect("verdict");
        }
        client.history().expect("history")
    };
    assert_eq!(history.len(), 3, "all three verdicts recorded");
    first.kill().expect("SIGKILL the daemon");
    first.wait().expect("reap the killed daemon");

    // Second life: same journal, fresh process. The replayed history must
    // be bit-identical — same order, same outcomes, same nanos.
    let (mut second, addr) = spawn_daemon(&journal);
    let mut client = connect_with_retry(&addr);
    let replayed = client.history().expect("replayed history");
    assert_eq!(
        replayed, history,
        "restart must replay the journal to a bit-identical verdict history"
    );
    // And the revived daemon is a live scheduler, not a read-only replica:
    // new work lands on ids above everything the journal recorded.
    let job = client
        .submit(&request(7, "correct", None), Priority::Normal)
        .expect("submit after recovery");
    let record = client.wait(job).expect("verdict after recovery");
    assert_eq!(record.outcome, "proven");
    let max_replayed = history.iter().map(|r| r.job).max().unwrap_or(0);
    assert!(
        job > max_replayed,
        "post-recovery job id {job} must exceed every replayed id ({max_replayed})"
    );
    let _ = client.shutdown();
    second.wait().expect("daemon exits after shutdown");
}

#[test]
fn sigkill_midway_resubmits_unfinished_jobs_on_restart() {
    let dir = tmpdir("midway");
    let journal = dir.join("serve.journal");

    // First life: finish one job (so the journal holds a complete
    // Accepted/Started/Finished triple), then admit more work and SIGKILL
    // before waiting on it — some of it will still be queued or running.
    let (mut first, addr) = spawn_daemon(&journal);
    let finished = {
        let mut client = connect_with_retry(&addr);
        let job = client
            .submit(&request(0, "correct", None), Priority::Normal)
            .expect("submit");
        let record = client.wait(job).expect("first verdict");
        for id in 1..4 {
            client
                .submit(&request(id, "faulty", None), Priority::Normal)
                .expect("submit unfinished work");
        }
        record
    };
    first.kill().expect("SIGKILL the daemon");
    first.wait().expect("reap the killed daemon");

    // Second life: the finished verdict replays bit-identically, and every
    // job the crash orphaned re-runs to a verdict under its original id.
    let (mut second, addr) = spawn_daemon(&journal);
    let mut client = connect_with_retry(&addr);
    let replayed = client.history().expect("replayed history");
    assert_eq!(replayed.first(), Some(&finished));
    for job in (finished.job + 1)..(finished.job + 4) {
        let record = client.wait(job).expect("resubmitted job completes");
        assert_eq!(
            record.outcome, "real_fault",
            "job {job} must re-run to the faulty variant's verdict"
        );
    }
    let _ = client.shutdown();
    second.wait().expect("daemon exits after shutdown");
}
