//! Slowloris and idle-connection defence over real TCP sockets.
//!
//! A hostile (or dying) client that sends a few header bytes and then
//! stalls must be disconnected once the per-read timeout fires — without
//! affecting well-behaved clients on the same server. An idle-but-synced
//! connection is governed separately by the idle deadline.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use muml_core::{IntegrationReport, IntegrationStats, IntegrationVerdict};
use muml_fleet::{JobContext, JobRegistry, JobRequest};
use muml_serve::{Daemon, Priority, ServeClient, ServeConfig, Server};

fn test_registry() -> JobRegistry {
    let mut registry = JobRegistry::new();
    registry.register("noop", |_request| {
        Ok(Box::new(move |_ctx: &JobContext| {
            Ok(IntegrationReport {
                verdict: IntegrationVerdict::Proven,
                iterations: Vec::new(),
                learned: Vec::new(),
                stats: IntegrationStats::default(),
            })
        }))
    });
    registry
}

fn start_tcp(config: ServeConfig) -> (Server, String) {
    let daemon = Daemon::start(config, test_registry());
    let server = Server::bind(daemon, Some("127.0.0.1:0"), None).expect("bind");
    let addr = server.tcp_addr().expect("tcp addr").to_string();
    (server, addr)
}

/// Blocks until the server closes `stream` (read returns EOF or reset),
/// panicking if that takes longer than `limit`.
fn assert_disconnected_within(stream: &mut TcpStream, limit: Duration) {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 16];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return, // clean close
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return,
            Ok(_) => panic!("server sent unexpected bytes to a stalled client"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("unexpected read error: {e}"),
        }
        assert!(
            started.elapsed() < limit,
            "server kept the dead connection open past {limit:?}"
        );
    }
}

#[test]
fn mid_frame_staller_is_disconnected_while_others_are_served() {
    let (server, addr) =
        start_tcp(ServeConfig::default().with_io_timeout(Duration::from_millis(100)));
    // The slowloris: two bytes of a frame header, then silence.
    let mut staller = TcpStream::connect(&addr).unwrap();
    staller.write_all(&[0x00, 0x00]).unwrap();
    staller.flush().unwrap();
    // A well-behaved client is completely unaffected.
    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    let job = client
        .submit(
            &JobRequest::new(0, "noop-0").with_scenario("noop"),
            Priority::Normal,
        )
        .unwrap();
    assert_eq!(client.wait(job).unwrap().outcome, "proven");
    // The staller is cut off once its read timeout classifies the stall
    // as mid-frame (fatal), well before any multi-second grace.
    assert_disconnected_within(&mut staller, Duration::from_secs(5));
    server.stop();
}

#[test]
fn idle_connection_is_reaped_at_the_deadline() {
    let (server, addr) = start_tcp(
        ServeConfig::default()
            .with_io_timeout(Duration::from_millis(50))
            .with_idle_timeout(Duration::from_millis(150)),
    );
    // Never sends a byte: in sync, but idle past the deadline.
    let mut idler = TcpStream::connect(&addr).unwrap();
    assert_disconnected_within(&mut idler, Duration::from_secs(5));
    server.stop();
}

#[test]
fn active_clients_outlive_the_idle_deadline() {
    let (server, addr) = start_tcp(
        ServeConfig::default()
            .with_io_timeout(Duration::from_millis(50))
            .with_idle_timeout(Duration::from_millis(200)),
    );
    let mut client = ServeClient::connect_tcp(&addr).unwrap();
    // Keep the connection mildly active for several deadline periods:
    // each completed frame re-anchors the idle clock.
    let started = Instant::now();
    while started.elapsed() < Duration::from_millis(700) {
        client.stats().expect("active connection must stay open");
        std::thread::sleep(Duration::from_millis(100));
    }
    server.stop();
}
