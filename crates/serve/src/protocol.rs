//! The length-prefixed JSON wire protocol.
//!
//! Every frame is a 4-byte big-endian payload length followed by exactly
//! that many bytes of UTF-8 JSON (the [`muml_obs::json::Json`] encoding —
//! the same encoding the event sinks already write). Requests and replies
//! both carry a `"v"` protocol-version tag; requests dispatch on
//! `"method"`, replies on `"reply"`. DESIGN.md §14 gives the full grammar.
//!
//! Robustness rules, enforced here and tested in `tests/protocol.rs`:
//!
//! * an **oversized** frame (length prefix beyond the cap) is *skipped* —
//!   the payload bytes are consumed so the stream stays in sync — and
//!   surfaced as [`FrameError::Oversized`] for the server to answer with a
//!   typed error, not a disconnect;
//! * a **truncated** frame (EOF mid-header or mid-payload) is
//!   [`FrameError::Truncated`] — the connection is dead;
//! * EOF *between* frames is the clean [`FrameError::Closed`];
//! * unparseable payloads are [`FrameError::Malformed`] — the framing is
//!   intact, so the connection survives.

use std::io::{self, Read, Write};
use std::time::Duration;

use muml_fleet::request::JobRequest;
use muml_obs::json::Json;

use crate::error::ServeError;

/// The protocol version this crate speaks.
pub const PROTOCOL_VERSION: i64 = 1;

/// Default cap on a frame payload (1 MiB).
pub const MAX_FRAME_DEFAULT: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF at a frame boundary — the peer closed the connection.
    Closed,
    /// EOF in the middle of a frame — the stream is unusable.
    Truncated,
    /// The length prefix exceeds the cap. The payload has been consumed;
    /// the stream is still usable.
    Oversized {
        /// The declared payload length.
        length: usize,
        /// The configured cap.
        max: usize,
    },
    /// The payload was not valid JSON. The stream is still usable.
    Malformed(String),
    /// A read timed out at a frame boundary — no byte of the next frame
    /// had arrived. The stream is still in sync; the caller decides
    /// whether the connection's idle deadline has passed.
    IdleTimeout,
    /// A read timed out *mid-frame*: the peer sent a partial header or
    /// payload and then stopped (the slowloris pattern). The stream can
    /// never get back in sync — fatal for the connection.
    Stalled,
    /// An underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized { length, max } => {
                write!(f, "oversized frame: {length} bytes (cap {max})")
            }
            FrameError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            FrameError::IdleTimeout => write!(f, "idle timeout between frames"),
            FrameError::Stalled => write!(f, "peer stalled mid-frame"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: 4-byte big-endian length, then the JSON payload.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> io::Result<()> {
    let bytes = payload.encode().into_bytes();
    let length = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    w.write_all(&length.to_be_bytes())?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads one frame, enforcing the `max` payload cap (see the module docs
/// for the error contract).
///
/// # Errors
///
/// See [`FrameError`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Json, FrameError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header) {
        ReadOutcome::Full => {}
        ReadOutcome::CleanEof => return Err(FrameError::Closed),
        ReadOutcome::PartialEof => return Err(FrameError::Truncated),
        ReadOutcome::TimedOut { partial: false } => return Err(FrameError::IdleTimeout),
        ReadOutcome::TimedOut { partial: true } => return Err(FrameError::Stalled),
        ReadOutcome::Failed(e) => return Err(FrameError::Io(e)),
    }
    let length = u32::from_be_bytes(header) as usize;
    if length > max {
        // Drain the payload so the next read starts at a frame boundary.
        let mut remaining = length as u64;
        let mut sink = io::sink();
        match io::copy(&mut r.take(remaining), &mut sink) {
            Ok(copied) => remaining -= copied,
            Err(e) if is_timeout(&e) => return Err(FrameError::Stalled),
            Err(e) => return Err(FrameError::Io(e)),
        }
        if remaining > 0 {
            return Err(FrameError::Truncated);
        }
        return Err(FrameError::Oversized { length, max });
    }
    let mut payload = vec![0u8; length];
    match read_exact_or_eof(r, &mut payload) {
        ReadOutcome::Full => {}
        ReadOutcome::CleanEof | ReadOutcome::PartialEof => return Err(FrameError::Truncated),
        ReadOutcome::TimedOut { .. } => return Err(FrameError::Stalled),
        ReadOutcome::Failed(e) => return Err(FrameError::Io(e)),
    }
    let text = String::from_utf8(payload)
        .map_err(|e| FrameError::Malformed(format!("payload is not UTF-8: {e}")))?;
    muml_obs::json::parse(&text)
        .map_err(|e| FrameError::Malformed(format!("payload is not JSON: {e:?}")))
}

enum ReadOutcome {
    Full,
    CleanEof,
    PartialEof,
    TimedOut { partial: bool },
    Failed(io::Error),
}

/// Whether an I/O error is a socket read/write timeout. Blocking sockets
/// report an expired `set_read_timeout` as `WouldBlock` on Unix and
/// `TimedOut` on Windows; treat both as the same event.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// `read_exact` distinguishing EOF-before-anything from EOF-mid-buffer,
/// and timeout-before-anything from timeout-mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::PartialEof
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                return ReadOutcome::TimedOut {
                    partial: filled > 0,
                }
            }
            Err(e) => return ReadOutcome::Failed(e),
        }
    }
    ReadOutcome::Full
}

/// A job's scheduling class. Within the daemon, all `High` work runs
/// before any `Normal` work, which runs before any `Low` work; *within* a
/// class, clients are served round-robin (see DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served before everything else (interactive checks).
    High,
    /// The default class (campaign traffic).
    #[default]
    Normal,
    /// Served only when nothing else is waiting (bulk sweeps).
    Low,
}

impl Priority {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Scheduling rank: lower runs first.
    pub fn rank(&self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Priority> {
        match name {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// What happened to a cancelled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelState {
    /// The job was still queued; it was removed and recorded as
    /// `cancelled` without ever running.
    Removed,
    /// The job was running; its [`muml_core::CancelToken`] was signalled
    /// and the job will finish cooperatively.
    Signalled,
    /// The job had already finished; nothing to cancel.
    AlreadyDone,
}

impl CancelState {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            CancelState::Removed => "removed",
            CancelState::Signalled => "signalled",
            CancelState::AlreadyDone => "already-done",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<CancelState> {
        match name {
            "removed" => Some(CancelState::Removed),
            "signalled" => Some(CancelState::Signalled),
            "already-done" => Some(CancelState::AlreadyDone),
            _ => None,
        }
    }
}

/// A client → daemon request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; answered with `Accepted { job }` or `Rejected`.
    Submit {
        /// The declarative job description.
        request: JobRequest,
        /// Its scheduling class.
        priority: Priority,
    },
    /// Block until the job finishes; answered with its `Verdict`.
    Wait {
        /// The daemon-assigned job id.
        job: u64,
    },
    /// Cancel a queued or running job; answered with `Cancelled`.
    Cancel {
        /// The daemon-assigned job id.
        job: u64,
    },
    /// Fetch the bounded verdict history; answered with `History`.
    History,
    /// Fetch daemon counters; answered with `Stats`.
    Stats,
    /// Turn this connection into a live event stream; answered with
    /// `Subscribed`, then a stream of `Event` frames.
    Subscribe,
    /// Ask the daemon to shut down; answered with `ShuttingDown`.
    Shutdown,
}

impl Request {
    /// The wire encoding: `{"v": 1, "method": ..., <fields>}`.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![("v".to_owned(), Json::Int(PROTOCOL_VERSION))];
        match self {
            Request::Submit { request, priority } => {
                obj.push(("method".to_owned(), Json::Str("submit".into())));
                obj.push(("request".to_owned(), request.to_json()));
                obj.push(("priority".to_owned(), Json::Str(priority.as_str().into())));
            }
            Request::Wait { job } => {
                obj.push(("method".to_owned(), Json::Str("wait".into())));
                obj.push(("job".to_owned(), Json::from_u64(*job)));
            }
            Request::Cancel { job } => {
                obj.push(("method".to_owned(), Json::Str("cancel".into())));
                obj.push(("job".to_owned(), Json::from_u64(*job)));
            }
            Request::History => obj.push(("method".to_owned(), Json::Str("history".into()))),
            Request::Stats => obj.push(("method".to_owned(), Json::Str("stats".into()))),
            Request::Subscribe => obj.push(("method".to_owned(), Json::Str("subscribe".into()))),
            Request::Shutdown => obj.push(("method".to_owned(), Json::Str("shutdown".into()))),
        }
        Json::Object(obj)
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnsupportedVersion`] for a foreign `"v"`,
    /// [`ServeError::UnknownMethod`] for an unrecognised `"method"`, and
    /// [`ServeError::Malformed`] for structural problems — all of which a
    /// server answers on the still-healthy connection.
    pub fn from_json(json: &Json) -> Result<Request, ServeError> {
        let version =
            json.get("v")
                .and_then(Json::as_int)
                .ok_or_else(|| ServeError::Malformed {
                    detail: "missing protocol version `v`".into(),
                })?;
        if version != PROTOCOL_VERSION {
            return Err(ServeError::UnsupportedVersion { got: version });
        }
        let method =
            json.get("method")
                .and_then(Json::as_str)
                .ok_or_else(|| ServeError::Malformed {
                    detail: "missing `method`".into(),
                })?;
        let job_id = || -> Result<u64, ServeError> {
            json.get("job")
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| ServeError::Malformed {
                    detail: "missing job id".into(),
                })
        };
        match method {
            "submit" => {
                let request = json.get("request").ok_or_else(|| ServeError::Malformed {
                    detail: "missing `request`".into(),
                })?;
                let request = JobRequest::from_json(request).map_err(ServeError::from)?;
                let priority = match json.get("priority") {
                    None | Some(Json::Null) => Priority::Normal,
                    Some(Json::Str(name)) => {
                        Priority::parse(name).ok_or_else(|| ServeError::Malformed {
                            detail: format!("unknown priority `{name}`"),
                        })?
                    }
                    Some(_) => {
                        return Err(ServeError::Malformed {
                            detail: "`priority` must be a string".into(),
                        })
                    }
                };
                Ok(Request::Submit { request, priority })
            }
            "wait" => Ok(Request::Wait { job: job_id()? }),
            "cancel" => Ok(Request::Cancel { job: job_id()? }),
            "history" => Ok(Request::History),
            "stats" => Ok(Request::Stats),
            "subscribe" => Ok(Request::Subscribe),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServeError::UnknownMethod {
                method: other.to_owned(),
            }),
        }
    }
}

/// One finished job, as recorded in the daemon's history and returned by
/// `wait`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictRecord {
    /// The daemon-assigned job id.
    pub job: u64,
    /// The request as submitted.
    pub request: JobRequest,
    /// Outcome name — one of [`muml_fleet::JobOutcome::names`] or
    /// `"cancelled"` for client-cancelled jobs.
    pub outcome: String,
    /// The violated property for `real_fault` outcomes.
    pub property: Option<String>,
    /// Verification iterations performed.
    pub iterations: usize,
    /// Wall-clock nanoseconds from dispatch to verdict (0 for jobs
    /// cancelled while queued).
    pub nanos: u64,
    /// Executions the job took (retries included).
    pub attempts: usize,
}

impl VerdictRecord {
    /// The wire encoding.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("job".to_owned(), Json::from_u64(self.job)),
            ("request".to_owned(), self.request.to_json()),
            ("outcome".to_owned(), Json::Str(self.outcome.clone())),
            (
                "property".to_owned(),
                match &self.property {
                    Some(p) => Json::Str(p.clone()),
                    None => Json::Null,
                },
            ),
            ("iterations".to_owned(), Json::from_usize(self.iterations)),
            ("nanos".to_owned(), Json::from_u64(self.nanos)),
            ("attempts".to_owned(), Json::from_usize(self.attempts)),
        ])
    }

    /// Decodes the wire encoding.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] when required fields are missing.
    pub fn from_json(json: &Json) -> Result<VerdictRecord, ServeError> {
        let malformed = |detail: &str| ServeError::Malformed {
            detail: detail.to_owned(),
        };
        let request = json
            .get("request")
            .ok_or_else(|| malformed("verdict missing `request`"))?;
        Ok(VerdictRecord {
            job: json
                .get("job")
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| malformed("verdict missing `job`"))?,
            request: JobRequest::from_json(request).map_err(ServeError::from)?,
            outcome: json
                .get("outcome")
                .and_then(Json::as_str)
                .ok_or_else(|| malformed("verdict missing `outcome`"))?
                .to_owned(),
            property: json
                .get("property")
                .and_then(Json::as_str)
                .map(str::to_owned),
            iterations: json
                .get("iterations")
                .and_then(Json::as_int)
                .and_then(|v| usize::try_from(v).ok())
                .unwrap_or(0),
            nanos: json
                .get("nanos")
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .unwrap_or(0),
            attempts: json
                .get("attempts")
                .and_then(Json::as_int)
                .and_then(|v| usize::try_from(v).ok())
                .unwrap_or(0),
        })
    }
}

/// Daemon counters returned by `stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs accepted since start.
    pub submitted: u64,
    /// Jobs finished (verdict, error, or cancellation) since start.
    pub completed: u64,
    /// Submissions shed by admission control since start.
    pub rejected: u64,
    /// Jobs cancelled by clients since start.
    pub cancelled: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Registered scenario labels.
    pub scenarios: Vec<String>,
}

impl ServerStats {
    /// The wire encoding.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("submitted".to_owned(), Json::from_u64(self.submitted)),
            ("completed".to_owned(), Json::from_u64(self.completed)),
            ("rejected".to_owned(), Json::from_u64(self.rejected)),
            ("cancelled".to_owned(), Json::from_u64(self.cancelled)),
            ("queued".to_owned(), Json::from_usize(self.queued)),
            ("running".to_owned(), Json::from_usize(self.running)),
            (
                "scenarios".to_owned(),
                Json::Array(self.scenarios.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }

    /// Decodes the wire encoding (missing counters default to zero).
    pub fn from_json(json: &Json) -> ServerStats {
        let counter = |key: &str| {
            json.get(key)
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .unwrap_or(0)
        };
        let scenarios = match json.get("scenarios") {
            Some(Json::Array(items)) => items
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_owned)
                .collect(),
            _ => Vec::new(),
        };
        ServerStats {
            submitted: counter("submitted"),
            completed: counter("completed"),
            rejected: counter("rejected"),
            cancelled: counter("cancelled"),
            queued: counter("queued") as usize,
            running: counter("running") as usize,
            scenarios,
        }
    }
}

/// A daemon → client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submission passed admission; the job is queued under this id.
    Accepted {
        /// The daemon-assigned job id.
        job: u64,
    },
    /// The request was refused — always with a typed reason, never by
    /// hanging or dropping the connection.
    Rejected {
        /// Why.
        error: ServeError,
    },
    /// A finished job (reply to `wait`).
    Verdict(VerdictRecord),
    /// Reply to `cancel`.
    Cancelled {
        /// The job id.
        job: u64,
        /// What the cancellation did.
        state: CancelState,
    },
    /// Reply to `history`: newest-last bounded verdict log.
    History {
        /// The recorded verdicts.
        entries: Vec<VerdictRecord>,
    },
    /// Reply to `stats`.
    Stats(ServerStats),
    /// Reply to `subscribe`; `Event` frames follow.
    Subscribed,
    /// One live telemetry event on a subscribed connection.
    Event {
        /// `"fleet"` for job-lifecycle events, `"loop"` for per-iteration
        /// session events.
        stream: String,
        /// The job the event belongs to.
        job: u64,
        /// The event payload ([`muml_obs::FleetEvent::to_json`] or
        /// [`muml_obs::LoopEvent::to_json`]).
        payload: Json,
    },
    /// Reply to `shutdown`.
    ShuttingDown,
}

impl Response {
    /// The wire encoding: `{"v": 1, "reply": ..., <fields>}`.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![("v".to_owned(), Json::Int(PROTOCOL_VERSION))];
        match self {
            Response::Accepted { job } => {
                obj.push(("reply".to_owned(), Json::Str("accepted".into())));
                obj.push(("job".to_owned(), Json::from_u64(*job)));
            }
            Response::Rejected { error } => {
                obj.push(("reply".to_owned(), Json::Str("rejected".into())));
                obj.push(("error".to_owned(), error.to_json()));
            }
            Response::Verdict(record) => {
                obj.push(("reply".to_owned(), Json::Str("verdict".into())));
                obj.push(("verdict".to_owned(), record.to_json()));
            }
            Response::Cancelled { job, state } => {
                obj.push(("reply".to_owned(), Json::Str("cancelled".into())));
                obj.push(("job".to_owned(), Json::from_u64(*job)));
                obj.push(("state".to_owned(), Json::Str(state.as_str().into())));
            }
            Response::History { entries } => {
                obj.push(("reply".to_owned(), Json::Str("history".into())));
                obj.push((
                    "entries".to_owned(),
                    Json::Array(entries.iter().map(VerdictRecord::to_json).collect()),
                ));
            }
            Response::Stats(stats) => {
                obj.push(("reply".to_owned(), Json::Str("stats".into())));
                obj.push(("stats".to_owned(), stats.to_json()));
            }
            Response::Subscribed => {
                obj.push(("reply".to_owned(), Json::Str("subscribed".into())));
            }
            Response::Event {
                stream,
                job,
                payload,
            } => {
                obj.push(("reply".to_owned(), Json::Str("event".into())));
                obj.push(("stream".to_owned(), Json::Str(stream.clone())));
                obj.push(("job".to_owned(), Json::from_u64(*job)));
                obj.push(("payload".to_owned(), payload.clone()));
            }
            Response::ShuttingDown => {
                obj.push(("reply".to_owned(), Json::Str("shutting-down".into())));
            }
        }
        Json::Object(obj)
    }

    /// Decodes a reply frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnsupportedVersion`] / [`ServeError::Malformed`] on
    /// foreign or structurally broken frames.
    pub fn from_json(json: &Json) -> Result<Response, ServeError> {
        let malformed = |detail: String| ServeError::Malformed { detail };
        let version = json
            .get("v")
            .and_then(Json::as_int)
            .ok_or_else(|| malformed("missing protocol version `v`".into()))?;
        if version != PROTOCOL_VERSION {
            return Err(ServeError::UnsupportedVersion { got: version });
        }
        let reply = json
            .get("reply")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("missing `reply`".into()))?;
        let job_id = || -> Result<u64, ServeError> {
            json.get("job")
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| malformed("missing job id".into()))
        };
        match reply {
            "accepted" => Ok(Response::Accepted { job: job_id()? }),
            "rejected" => {
                let error = json
                    .get("error")
                    .ok_or_else(|| malformed("rejection missing `error`".into()))?;
                Ok(Response::Rejected {
                    error: ServeError::from_json(error),
                })
            }
            "verdict" => {
                let record = json
                    .get("verdict")
                    .ok_or_else(|| malformed("missing `verdict`".into()))?;
                Ok(Response::Verdict(VerdictRecord::from_json(record)?))
            }
            "cancelled" => {
                let state = json
                    .get("state")
                    .and_then(Json::as_str)
                    .and_then(CancelState::parse)
                    .ok_or_else(|| malformed("missing or unknown cancel state".into()))?;
                Ok(Response::Cancelled {
                    job: job_id()?,
                    state,
                })
            }
            "history" => {
                let entries = match json.get("entries") {
                    Some(Json::Array(items)) => items
                        .iter()
                        .map(VerdictRecord::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(malformed("history missing `entries`".into())),
                };
                Ok(Response::History { entries })
            }
            "stats" => {
                let stats = json
                    .get("stats")
                    .ok_or_else(|| malformed("missing `stats`".into()))?;
                Ok(Response::Stats(ServerStats::from_json(stats)))
            }
            "subscribed" => Ok(Response::Subscribed),
            "event" => Ok(Response::Event {
                stream: json
                    .get("stream")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed("event missing `stream`".into()))?
                    .to_owned(),
                job: job_id()?,
                payload: json
                    .get("payload")
                    .cloned()
                    .ok_or_else(|| malformed("event missing `payload`".into()))?,
            }),
            "shutting-down" => Ok(Response::ShuttingDown),
            other => Err(malformed(format!("unknown reply `{other}`"))),
        }
    }
}

/// A convenient sample request for tests and examples.
#[doc(hidden)]
pub fn sample_request(id: usize) -> JobRequest {
    JobRequest::new(id, format!("correct/sample-{id}"))
        .with_scenario("railcab-convoy")
        .with_pattern("DistanceCoordination")
        .with_variant("correct")
        .with_max_iterations(128)
        .with_deadline(Duration::from_secs(30))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let payload = Request::Submit {
            request: sample_request(7),
            priority: Priority::High,
        }
        .to_json();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(
            u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize,
            wire.len() - 4
        );
        let mut cursor = Cursor::new(wire);
        let decoded = read_frame(&mut cursor, MAX_FRAME_DEFAULT).unwrap();
        assert_eq!(decoded, payload);
        // The stream is now at a clean boundary.
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_DEFAULT),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_frames_are_skipped_in_sync() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Json::Str("x".repeat(512))).unwrap();
        let follow_up = Json::Str("still here".into());
        write_frame(&mut wire, &follow_up).unwrap();
        let mut cursor = Cursor::new(wire);
        match read_frame(&mut cursor, 64) {
            Err(FrameError::Oversized { length, max }) => {
                assert!(length > 64);
                assert_eq!(max, 64);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
        // The oversized payload was drained: the next frame decodes fine.
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), follow_up);
    }

    #[test]
    fn truncated_frames_are_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Json::Str("about to be cut".into())).unwrap();
        wire.truncate(wire.len() - 3);
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_DEFAULT),
            Err(FrameError::Truncated)
        ));
        // A header cut mid-way is also truncation, not a clean close.
        let mut cursor = Cursor::new(vec![0u8, 0, 1]);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_DEFAULT),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn garbage_payloads_are_malformed_not_fatal() {
        let mut wire = Vec::new();
        let garbage = b"not json at all";
        wire.extend_from_slice(&(garbage.len() as u32).to_be_bytes());
        wire.extend_from_slice(garbage);
        write_frame(&mut wire, &Json::Bool(true)).unwrap();
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_DEFAULT),
            Err(FrameError::Malformed(_))
        ));
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_DEFAULT).unwrap(),
            Json::Bool(true)
        );
    }

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Submit {
                request: sample_request(0),
                priority: Priority::Low,
            },
            Request::Wait { job: 9 },
            Request::Cancel { job: 10 },
            Request::History,
            Request::Stats,
            Request::Subscribe,
            Request::Shutdown,
        ]
    }

    fn sample_verdict(job: u64) -> VerdictRecord {
        VerdictRecord {
            job,
            request: sample_request(job as usize),
            outcome: "real_fault".into(),
            property: Some("AG safe".into()),
            iterations: 12,
            nanos: 34_567,
            attempts: 2,
        }
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Accepted { job: 3 },
            Response::Rejected {
                error: ServeError::QueueFull {
                    pending: 256,
                    limit: 256,
                },
            },
            Response::Verdict(sample_verdict(3)),
            Response::Cancelled {
                job: 4,
                state: CancelState::Signalled,
            },
            Response::History {
                entries: vec![sample_verdict(1), sample_verdict(2)],
            },
            Response::Stats(ServerStats {
                submitted: 100,
                completed: 90,
                rejected: 7,
                cancelled: 3,
                queued: 6,
                running: 4,
                scenarios: vec!["railcab-convoy".into()],
            }),
            Response::Subscribed,
            Response::Event {
                stream: "fleet".into(),
                job: 5,
                payload: Json::Object(vec![("kind".into(), Json::Str("job_started".into()))]),
            },
            Response::ShuttingDown,
        ]
    }

    #[test]
    fn every_request_variant_round_trips() {
        for request in all_requests() {
            let decoded = Request::from_json(&request.to_json()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        for response in all_responses() {
            let decoded = Response::from_json(&response.to_json()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn foreign_versions_and_methods_yield_typed_errors() {
        let future = Json::Object(vec![
            ("v".to_owned(), Json::Int(99)),
            ("method".to_owned(), Json::Str("submit".into())),
        ]);
        assert_eq!(
            Request::from_json(&future),
            Err(ServeError::UnsupportedVersion { got: 99 })
        );
        let alien = Json::Object(vec![
            ("v".to_owned(), Json::Int(PROTOCOL_VERSION)),
            ("method".to_owned(), Json::Str("frobnicate".into())),
        ]);
        assert_eq!(
            Request::from_json(&alien),
            Err(ServeError::UnknownMethod {
                method: "frobnicate".into()
            })
        );
        let missing = Json::Object(vec![("v".to_owned(), Json::Int(PROTOCOL_VERSION))]);
        assert!(matches!(
            Request::from_json(&missing),
            Err(ServeError::Malformed { .. })
        ));
    }

    #[test]
    fn submit_defaults_to_normal_priority() {
        let mut obj = match (Request::Submit {
            request: sample_request(0),
            priority: Priority::High,
        })
        .to_json()
        {
            Json::Object(fields) => fields,
            _ => unreachable!(),
        };
        obj.retain(|(k, _)| k != "priority");
        match Request::from_json(&Json::Object(obj)).unwrap() {
            Request::Submit { priority, .. } => assert_eq!(priority, Priority::Normal),
            other => panic!("{other:?}"),
        }
    }
}
