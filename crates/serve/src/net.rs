//! Socket transport for the daemon: TCP and Unix-domain listeners
//! speaking the length-prefixed frame protocol of [`crate::protocol`].
//!
//! Each accepted connection gets its own thread and its own client
//! identity (for the scheduler's per-client fairness and admission
//! accounting). Malformed or oversized frames are answered with typed
//! [`Response::Rejected`] replies — a bad request never disconnects a
//! client, and never takes the daemon down. Only transport-level failures
//! (EOF, truncated frame, I/O error) end a connection.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use crate::error::ServeError;
use crate::protocol::{read_frame, write_frame, FrameError, Request, Response};
use crate::server::Daemon;

/// A duplex byte stream over either transport.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Arms the per-read/write socket timeouts (slowloris defence — see
    /// [`crate::ServeConfig::io_timeout`]).
    fn set_io_timeout(&self, timeout: Option<Duration>) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.set_read_timeout(timeout);
                let _ = s.set_write_timeout(timeout);
            }
            Stream::Unix(s) => {
                let _ = s.set_read_timeout(timeout);
                let _ = s.set_write_timeout(timeout);
            }
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

struct ServerInner {
    daemon: Daemon,
    stopping: AtomicBool,
    stop_signal: Mutex<bool>,
    stopped: Condvar,
    next_client: AtomicU64,
    conns: Mutex<Vec<Stream>>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerInner {
    /// Flips the stop flag and unblocks every parked thread: acceptors
    /// (via self-connect), connection readers (via socket shutdown), and
    /// [`Server::wait`] callers (via the condvar).
    fn begin_stop(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            conn.shutdown();
        }
        *self
            .stop_signal
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.stopped.notify_all();
    }
}

/// A daemon bound to its sockets.
///
/// Dropping the handle does *not* stop the server; call [`Server::stop`]
/// (or let a client's `shutdown` request trigger it) first.
pub struct Server {
    inner: Arc<ServerInner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tcp_addr", &self.inner.tcp_addr)
            .field("unix_path", &self.inner.unix_path)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the daemon to a TCP address and/or a Unix socket path and
    /// starts accepting connections. At least one transport must be
    /// given. A pre-existing file at the Unix path is removed first (a
    /// stale socket from a crashed daemon would otherwise block binding).
    ///
    /// # Errors
    ///
    /// Propagates bind failures; fails with [`io::ErrorKind::InvalidInput`]
    /// when neither transport is requested.
    pub fn bind(daemon: Daemon, tcp: Option<&str>, unix: Option<&Path>) -> io::Result<Server> {
        if tcp.is_none() && unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "muml-serve needs at least one of --tcp / --unix",
            ));
        }
        let tcp_listener = match tcp {
            Some(addr) => {
                let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
                Some(TcpListener::bind(&addrs[..])?)
            }
            None => None,
        };
        let unix_listener = match unix {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                Some(UnixListener::bind(path)?)
            }
            None => None,
        };
        let inner = Arc::new(ServerInner {
            daemon,
            stopping: AtomicBool::new(false),
            stop_signal: Mutex::new(false),
            stopped: Condvar::new(),
            next_client: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            tcp_addr: tcp_listener.as_ref().and_then(|l| l.local_addr().ok()),
            unix_path: unix.map(Path::to_path_buf),
        });
        let mut acceptors = Vec::new();
        if let Some(listener) = tcp_listener {
            let inner = Arc::clone(&inner);
            acceptors.push(thread::spawn(move || {
                accept_loop(inner, move || {
                    listener.accept().map(|(s, _)| {
                        // Frames are small request/reply pairs; Nagle
                        // would add ~40ms per round trip.
                        let _ = s.set_nodelay(true);
                        Stream::Tcp(s)
                    })
                });
            }));
        }
        if let Some(listener) = unix_listener {
            let inner = Arc::clone(&inner);
            acceptors.push(thread::spawn(move || {
                accept_loop(inner, move || {
                    listener.accept().map(|(s, _)| Stream::Unix(s))
                });
            }));
        }
        inner
            .threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(acceptors);
        Ok(Server { inner })
    }

    /// The bound TCP address (with the OS-assigned port when bound to
    /// port 0), if TCP was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.inner.tcp_addr
    }

    /// The bound Unix socket path, if requested.
    pub fn unix_path(&self) -> Option<&Path> {
        self.inner.unix_path.as_deref()
    }

    /// Blocks until the server begins stopping (a client sent `shutdown`,
    /// or another thread called [`Server::stop`]), then joins all server
    /// threads and the daemon's workers.
    pub fn wait(&self) {
        let mut stopped = self
            .inner
            .stop_signal
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*stopped {
            stopped = self
                .inner
                .stopped
                .wait(stopped)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(stopped);
        self.join_threads();
    }

    /// Stops the server: shuts the daemon down, closes listeners and live
    /// connections, and joins every thread. Safe to call more than once.
    pub fn stop(&self) {
        self.inner.daemon.shutdown();
        self.inner.begin_stop();
        self.join_threads();
    }

    fn join_threads(&self) {
        let handles: Vec<_> = self
            .inner
            .threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.inner.daemon.join();
        if let Some(path) = &self.inner.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_loop(inner: Arc<ServerInner>, accept: impl Fn() -> io::Result<Stream>) {
    loop {
        let stream = match accept() {
            Ok(stream) => stream,
            Err(_) => {
                if inner.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.stopping.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            inner
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(clone);
        }
        let client = inner.next_client.fetch_add(1, Ordering::SeqCst);
        let conn_inner = Arc::clone(&inner);
        let handle = thread::spawn(move || handle_conn(conn_inner, client, stream));
        inner
            .threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
}

fn handle_conn(inner: Arc<ServerInner>, client: u64, mut stream: Stream) {
    serve_conn(&inner, client, &mut stream);
    // The acceptor holds a clone of this socket (for shutdown-on-stop), so
    // dropping our handle is not enough — shut the connection down so the
    // peer observes the disconnect.
    stream.shutdown();
}

fn serve_conn(inner: &Arc<ServerInner>, client: u64, stream: &mut Stream) {
    let config = inner.daemon.config();
    let max_frame = config.max_frame;
    let idle_deadline = config.idle_timeout;
    stream.set_io_timeout(config.io_timeout);
    // Idle accounting is anchored to the last *complete* frame: partial
    // bytes trickling in do not reset the clock.
    let mut last_frame = std::time::Instant::now();
    loop {
        if inner.stopping.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(stream, max_frame) {
            Ok(frame) => {
                last_frame = std::time::Instant::now();
                frame
            }
            // Recoverable: the stream is still in sync, answer typed.
            Err(FrameError::Oversized { length, max }) => {
                let reply = Response::Rejected {
                    error: ServeError::OversizedFrame { length, max },
                };
                if write_frame(stream, &reply.to_json()).is_err() {
                    return;
                }
                continue;
            }
            Err(FrameError::Malformed(detail)) => {
                let reply = Response::Rejected {
                    error: ServeError::Malformed { detail },
                };
                if write_frame(stream, &reply.to_json()).is_err() {
                    return;
                }
                continue;
            }
            // A timeout at a frame boundary: the stream is in sync, so
            // only the idle deadline (when configured) ends the
            // connection.
            Err(FrameError::IdleTimeout) => match idle_deadline {
                Some(deadline) if last_frame.elapsed() >= deadline => return,
                _ => continue,
            },
            // Fatal for this connection only: a peer that stalled
            // mid-frame (slowloris) can never resynchronize.
            Err(
                FrameError::Closed
                | FrameError::Truncated
                | FrameError::Stalled
                | FrameError::Io(_),
            ) => return,
        };
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(error) => {
                let reply = Response::Rejected { error };
                if write_frame(stream, &reply.to_json()).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Submit { request, priority } => {
                let reply = match inner.daemon.submit(client, &request, priority) {
                    Ok(job) => Response::Accepted { job },
                    Err(error) => Response::Rejected { error },
                };
                if write_frame(stream, &reply.to_json()).is_err() {
                    return;
                }
            }
            Request::Wait { job } => {
                let reply = match inner.daemon.wait(job) {
                    Ok(record) => Response::Verdict(record),
                    Err(error) => Response::Rejected { error },
                };
                if write_frame(stream, &reply.to_json()).is_err() {
                    return;
                }
            }
            Request::Cancel { job } => {
                let reply = match inner.daemon.cancel(job) {
                    Ok(state) => Response::Cancelled { job, state },
                    Err(error) => Response::Rejected { error },
                };
                if write_frame(stream, &reply.to_json()).is_err() {
                    return;
                }
            }
            Request::History => {
                let reply = Response::History {
                    entries: inner.daemon.history(),
                };
                if write_frame(stream, &reply.to_json()).is_err() {
                    return;
                }
            }
            Request::Stats => {
                let reply = Response::Stats(inner.daemon.stats());
                if write_frame(stream, &reply.to_json()).is_err() {
                    return;
                }
            }
            Request::Subscribe => {
                let events = inner.daemon.subscribe();
                if write_frame(stream, &Response::Subscribed.to_json()).is_err() {
                    return;
                }
                // The connection becomes an event pump until it drops,
                // the daemon shuts down, or the server stops.
                loop {
                    match events.recv_timeout(Duration::from_millis(100)) {
                        Ok(event) => {
                            if write_frame(stream, &event.to_json()).is_err() {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if inner.stopping.load(Ordering::SeqCst) {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            }
            Request::Shutdown => {
                inner.daemon.shutdown();
                let _ = write_frame(stream, &Response::ShuttingDown.to_json());
                // Wake `Server::wait` and close everything; joining is
                // the waiter's job (we're one of the joined threads).
                inner.begin_stop();
                return;
            }
        }
    }
}
