//! Blocking client for the daemon's wire protocol.
//!
//! [`ServeClient`] speaks the same length-prefixed JSON frames as the
//! server over TCP or a Unix socket, and surfaces every failure — typed
//! server rejections and transport faults alike — as a [`ServeError`].

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use muml_fleet::JobRequest;
use muml_obs::json::Json;

use crate::error::ServeError;
use crate::protocol::{
    read_frame, write_frame, CancelState, FrameError, Priority, Request, Response, ServerStats,
    VerdictRecord, MAX_FRAME_DEFAULT,
};

/// The client's transport.
#[derive(Debug)]
enum ClientStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking connection to a `muml-serve` daemon.
///
/// One connection is one scheduling client: the daemon's per-client
/// fairness and admission limits key on it. Calls are synchronous
/// request/reply; [`ServeClient::subscribe`] consumes the connection and
/// turns it into an event stream.
#[derive(Debug)]
pub struct ServeClient {
    stream: ClientStream,
    max_frame: usize,
}

fn frame_to_serve(error: FrameError) -> ServeError {
    match error {
        FrameError::Closed => ServeError::Transport {
            detail: "server closed the connection".into(),
        },
        FrameError::Truncated => ServeError::Transport {
            detail: "truncated frame".into(),
        },
        FrameError::Oversized { length, max } => ServeError::OversizedFrame { length, max },
        FrameError::Malformed(detail) => ServeError::Malformed { detail },
        // The client never arms socket timeouts itself, but a caller may
        // have set them on the raw socket; map both to transport errors.
        FrameError::IdleTimeout | FrameError::Stalled => ServeError::Transport {
            detail: "socket timeout".into(),
        },
        FrameError::Io(e) => ServeError::from(e),
    }
}

impl ServeClient {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] on connection failure.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr).map_err(ServeError::from)?;
        stream.set_nodelay(true).map_err(ServeError::from)?;
        Ok(ServeClient {
            stream: ClientStream::Tcp(stream),
            max_frame: MAX_FRAME_DEFAULT,
        })
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] on connection failure.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<ServeClient, ServeError> {
        let stream = UnixStream::connect(path).map_err(ServeError::from)?;
        Ok(ServeClient {
            stream: ClientStream::Unix(stream),
            max_frame: MAX_FRAME_DEFAULT,
        })
    }

    /// Sets the maximum reply-frame size this client will accept.
    #[must_use]
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame.max(64);
        self
    }

    /// One request/reply round trip. Server-side rejections come back as
    /// `Ok(Response::Rejected { .. })`; the `Err` arm is transport-only.
    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &request.to_json()).map_err(ServeError::from)?;
        let frame = read_frame(&mut self.stream, self.max_frame).map_err(frame_to_serve)?;
        Response::from_json(&frame)
    }

    /// Submits a job and returns its daemon-assigned id.
    ///
    /// # Errors
    ///
    /// The daemon's typed rejection (admission, resolution, shutdown) or
    /// a transport failure.
    pub fn submit(&mut self, request: &JobRequest, priority: Priority) -> Result<u64, ServeError> {
        match self.call(&Request::Submit {
            request: request.clone(),
            priority,
        })? {
            Response::Accepted { job } => Ok(job),
            Response::Rejected { error } => Err(error),
            other => Err(unexpected(&other)),
        }
    }

    /// Blocks until the job's verdict is available.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] or a transport failure.
    pub fn wait(&mut self, job: u64) -> Result<VerdictRecord, ServeError> {
        match self.call(&Request::Wait { job })? {
            Response::Verdict(record) => Ok(record),
            Response::Rejected { error } => Err(error),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels a job (dequeues it, or signals it if already running).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] or a transport failure.
    pub fn cancel(&mut self, job: u64) -> Result<CancelState, ServeError> {
        match self.call(&Request::Cancel { job })? {
            Response::Cancelled { state, .. } => Ok(state),
            Response::Rejected { error } => Err(error),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the daemon's bounded verdict history, oldest first.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn history(&mut self) -> Result<Vec<VerdictRecord>, ServeError> {
        match self.call(&Request::History)? {
            Response::History { entries } => Ok(entries),
            Response::Rejected { error } => Err(error),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Rejected { error } => Err(error),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to shut down (queued jobs are cancelled, running
    /// ones signalled, the server stops accepting connections).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Rejected { error } => Err(error),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends a raw pre-encoded frame and returns the decoded reply.
    /// Intended for protocol testing (unknown methods, foreign versions).
    ///
    /// # Errors
    ///
    /// Transport failures; malformed replies.
    pub fn call_raw(&mut self, frame: &Json) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, frame).map_err(ServeError::from)?;
        let reply = read_frame(&mut self.stream, self.max_frame).map_err(frame_to_serve)?;
        Response::from_json(&reply)
    }

    /// Turns this connection into a live event stream. Consumes the
    /// client: after subscribing, the connection only carries events.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn subscribe(mut self) -> Result<EventStream, ServeError> {
        match self.call(&Request::Subscribe)? {
            Response::Subscribed => Ok(EventStream {
                stream: self.stream,
                max_frame: self.max_frame,
            }),
            Response::Rejected { error } => Err(error),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ServeError {
    ServeError::Malformed {
        detail: format!("unexpected reply: {}", response.to_json().encode()),
    }
}

/// A subscribed connection yielding daemon events until the server
/// closes it (daemon shutdown) or an I/O error occurs.
#[derive(Debug)]
pub struct EventStream {
    stream: ClientStream,
    max_frame: usize,
}

impl Iterator for EventStream {
    type Item = Response;

    fn next(&mut self) -> Option<Response> {
        loop {
            let frame = read_frame(&mut self.stream, self.max_frame).ok()?;
            match Response::from_json(&frame) {
                Ok(response) => return Some(response),
                Err(_) => continue,
            }
        }
    }
}
