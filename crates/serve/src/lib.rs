//! `muml-serve` — a long-running verification daemon with a wire-stable
//! job API.
//!
//! The in-process fleet (`muml_fleet::run_fleet`) is batch-shaped: build
//! all jobs, run them, collect a report. This crate turns the same
//! machinery into a *resident* service for integration campaigns that
//! arrive over time: a daemon listens on a TCP and/or Unix socket,
//! clients submit declarative [`JobRequest`](muml_fleet::JobRequest)s
//! (pure data — the wire schema, the fleet input, and the bench-campaign
//! cell are one type), and a scenario [`JobRegistry`](muml_fleet::JobRegistry)
//! re-attaches the executable half server-side.
//!
//! The pieces:
//!
//! - [`protocol`] — the length-prefixed JSON frame protocol
//!   (version-tagged requests/replies, [`protocol::VerdictRecord`],
//!   [`protocol::Priority`] classes).
//! - [`error`] — [`ServeError`], the one `#[non_exhaustive]`
//!   wire-encodable error with stable string codes that every failure
//!   (admission, resolution, session, transport) maps onto.
//! - [`journal`] — the durable job journal: checksummed, length-prefixed
//!   `accepted`/`started`/`finished` records with torn-tail recovery, so a
//!   killed daemon replays its verdict history and re-queues unfinished
//!   jobs on restart.
//! - [`server`] — the [`Daemon`]: priority scheduling with per-client
//!   round-robin fairness, non-blocking admission control, worker pool,
//!   verdict history, live event broadcast.
//! - [`net`] — the socket front end ([`Server`]).
//! - [`client`] — the blocking [`ServeClient`] and its
//!   [`client::EventStream`].
//! - [`scenarios`] — built-in resolvers (the RailCab convoy campaign).
//!
//! A request on the wire is four bytes of big-endian payload length
//! followed by a JSON object; see `DESIGN.md` §14 for the full grammar,
//! the admission-control policy, and the fairness invariant.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod journal;
pub mod net;
pub mod protocol;
pub mod scenarios;
pub mod server;

pub use client::{EventStream, ServeClient};
pub use error::ServeError;
pub use journal::{Journal, JournalRecord, JournalReplay, JOURNAL_VERSION};
pub use net::Server;
pub use protocol::{
    CancelState, Priority, Request, Response, ServerStats, VerdictRecord, MAX_FRAME_DEFAULT,
    PROTOCOL_VERSION,
};
pub use scenarios::{railcab_registry, RAILCAB_PATTERN, RAILCAB_SCENARIO};
pub use server::{Daemon, ReplayStats, ServeConfig};
