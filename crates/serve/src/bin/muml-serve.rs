//! The `muml-serve` binary: bind the verification daemon to sockets and
//! serve until a client asks for shutdown (or the process is killed).
//!
//! ```text
//! muml-serve [--tcp ADDR] [--unix PATH] [--workers N]
//!            [--max-pending N] [--max-pending-per-client N]
//!            [--store DIR] [--journal FILE]
//! ```
//!
//! With no transport flags it binds TCP on `127.0.0.1:0` and prints the
//! OS-assigned port, so scripts can scrape the address.

use std::path::PathBuf;
use std::process::ExitCode;

use muml_serve::{railcab_registry, Daemon, ServeConfig, Server};

struct Args {
    tcp: Option<String>,
    unix: Option<PathBuf>,
    config: ServeConfig,
    help: bool,
}

fn usage() -> &'static str {
    "usage: muml-serve [--tcp ADDR] [--unix PATH] [--workers N] \
     [--max-pending N] [--max-pending-per-client N] [--store DIR] \
     [--journal FILE]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut tcp = None;
    let mut unix = None;
    let mut config = ServeConfig::default();
    let mut iter = argv.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--tcp" => tcp = Some(value("--tcp")?),
            "--unix" => unix = Some(PathBuf::from(value("--unix")?)),
            "--workers" => {
                let n = parse_count("--workers", &value("--workers")?)?;
                config = config.with_workers(n);
            }
            "--max-pending" => {
                let n = parse_count("--max-pending", &value("--max-pending")?)?;
                config = config.with_max_pending(n);
            }
            "--max-pending-per-client" => {
                let n = parse_count(
                    "--max-pending-per-client",
                    &value("--max-pending-per-client")?,
                )?;
                config = config.with_max_pending_per_client(n);
            }
            "--store" => {
                config = config.with_store(PathBuf::from(value("--store")?));
            }
            "--journal" => {
                config = config.with_journal(PathBuf::from(value("--journal")?));
            }
            "--help" | "-h" => {
                return Ok(Args {
                    tcp,
                    unix,
                    config,
                    help: true,
                })
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if tcp.is_none() && unix.is_none() {
        tcp = Some("127.0.0.1:0".to_owned());
    }
    Ok(Args {
        tcp,
        unix,
        config,
        help: false,
    })
}

fn parse_count(flag: &str, raw: &str) -> Result<usize, String> {
    raw.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer, got `{raw}`"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let daemon = Daemon::start(args.config, railcab_registry());
    if let Some(replay) = daemon.journal_replay() {
        println!(
            "muml-serve: journal replayed {} records ({} finished, {} resubmitted, {} bytes truncated)",
            replay.records, replay.finished, replay.resubmitted, replay.truncated_bytes
        );
    }
    let server = match Server::bind(daemon, args.tcp.as_deref(), args.unix.as_deref()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("muml-serve: bind failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = server.tcp_addr() {
        println!("muml-serve: listening on tcp {addr}");
    }
    if let Some(path) = server.unix_path() {
        println!("muml-serve: listening on unix {}", path.display());
    }
    server.wait();
    println!("muml-serve: shut down");
    ExitCode::SUCCESS
}
