//! The durable job journal: crash-safe intent logging for the daemon.
//!
//! Every admitted [`JobRequest`](muml_fleet::JobRequest) is appended to an
//! on-disk journal *before* the submit reply goes back to the client, and
//! every verdict is appended before it enters the in-memory history. After
//! a crash (power loss, OOM-kill, plain SIGKILL) the restarting daemon
//! replays the journal: finished jobs rebuild the verdict history exactly
//! as it was recorded, and accepted-but-unfinished jobs are re-resolved
//! through the [`JobRegistry`](muml_fleet::JobRegistry) and re-enqueued
//! under their original ids.
//!
//! # Record grammar
//!
//! Three record types, mirroring the job lifecycle:
//!
//! - `accepted` — the admission decision: original job id, client id,
//!   priority class, and the full wire [`JobRequest`].
//! - `started` — a worker picked the job up (replay treats a started-but-
//!   unfinished job the same as a queued one: it re-runs).
//! - `finished` — the complete [`VerdictRecord`], including the recorded
//!   `nanos`, so a replayed history is bit-identical to the pre-crash one.
//!
//! # Frame format
//!
//! Each record is a binary frame:
//!
//! ```text
//! [4-byte BE payload length][8-byte BE FNV-1a-64 of payload][payload JSON]
//! ```
//!
//! On open, the journal scans frames from the start. The first frame that
//! is torn (partial header, partial payload, checksum mismatch, or
//! undecodable JSON) marks the *recovery horizon*: the file is truncated
//! back to the last good frame boundary and appends resume there. A torn
//! tail is expected after a crash mid-`append` and is never an error.
//!
//! DESIGN.md §18 documents the recovery invariant and the fault matrix
//! the chaos campaign drives through this module.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use muml_fleet::JobRequest;
use muml_obs::json::{parse, Json};

use crate::protocol::{Priority, VerdictRecord};

/// Journal format version, stamped into every record payload.
pub const JOURNAL_VERSION: u64 = 1;

/// One journal record: a point on a job's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// The daemon admitted a job (logged before the submit reply).
    Accepted {
        /// The job id the daemon assigned.
        job: u64,
        /// The submitting client's id (fairness key on replay).
        client: u64,
        /// The admission priority class.
        priority: Priority,
        /// The full wire request (re-resolved through the registry on
        /// replay).
        request: JobRequest,
    },
    /// A worker picked the job up.
    Started {
        /// The job id.
        job: u64,
    },
    /// The job produced a verdict (logged before it enters the history).
    Finished {
        /// The complete verdict record, `nanos` and all.
        record: VerdictRecord,
    },
}

impl JournalRecord {
    /// The record's job id.
    pub fn job(&self) -> u64 {
        match self {
            JournalRecord::Accepted { job, .. } | JournalRecord::Started { job } => *job,
            JournalRecord::Finished { record } => record.job,
        }
    }

    /// Stable type tag (`accepted` / `started` / `finished`).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalRecord::Accepted { .. } => "accepted",
            JournalRecord::Started { .. } => "started",
            JournalRecord::Finished { .. } => "finished",
        }
    }

    /// The JSON payload of the record's frame.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("v".to_owned(), Json::from_u64(JOURNAL_VERSION)),
            ("type".to_owned(), Json::Str(self.kind().to_owned())),
        ];
        match self {
            JournalRecord::Accepted {
                job,
                client,
                priority,
                request,
            } => {
                fields.push(("job".to_owned(), Json::from_u64(*job)));
                fields.push(("client".to_owned(), Json::from_u64(*client)));
                fields.push((
                    "priority".to_owned(),
                    Json::Str(priority.as_str().to_owned()),
                ));
                fields.push(("request".to_owned(), request.to_json()));
            }
            JournalRecord::Started { job } => {
                fields.push(("job".to_owned(), Json::from_u64(*job)));
            }
            JournalRecord::Finished { record } => {
                fields.push(("record".to_owned(), record.to_json()));
            }
        }
        Json::Object(fields)
    }

    /// Decodes a frame payload. `None` for anything malformed — the
    /// journal treats undecodable payloads as torn tail, not as errors.
    pub fn from_json(json: &Json) -> Option<JournalRecord> {
        if json.get("v").and_then(Json::as_int) != Some(JOURNAL_VERSION as i64) {
            return None;
        }
        let job = |json: &Json| {
            json.get("job")
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
        };
        match json.get("type").and_then(Json::as_str)? {
            "accepted" => Some(JournalRecord::Accepted {
                job: job(json)?,
                client: json
                    .get("client")
                    .and_then(Json::as_int)
                    .and_then(|v| u64::try_from(v).ok())?,
                priority: Priority::parse(json.get("priority").and_then(Json::as_str)?)?,
                request: JobRequest::from_json(json.get("request")?).ok()?,
            }),
            "started" => Some(JournalRecord::Started { job: job(json)? }),
            "finished" => Some(JournalRecord::Finished {
                record: VerdictRecord::from_json(json.get("record")?).ok()?,
            }),
            _ => None,
        }
    }
}

/// FNV-1a 64 over the payload bytes (same hash family as the store's
/// content addresses; hand-rolled — no external crates in this workspace).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one record as a binary frame (length + checksum + payload).
fn encode_frame(record: &JournalRecord) -> Vec<u8> {
    let payload = record.to_json().encode();
    let bytes = payload.as_bytes();
    let mut frame = Vec::with_capacity(12 + bytes.len());
    frame.extend_from_slice(&u32::try_from(bytes.len()).unwrap_or(u32::MAX).to_be_bytes());
    frame.extend_from_slice(&fnv1a64(bytes).to_be_bytes());
    frame.extend_from_slice(bytes);
    frame
}

/// What replaying a journal found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalReplay {
    /// All intact records, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn tail truncated from the file on open (0 for a clean
    /// shutdown).
    pub truncated_bytes: u64,
}

impl JournalReplay {
    /// The finished verdicts, in append order (the pre-crash history).
    pub fn finished(&self) -> Vec<&VerdictRecord> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Finished { record } => Some(record),
                _ => None,
            })
            .collect()
    }

    /// Accepted records with no matching finished record: the jobs the
    /// crash interrupted, in admission order.
    pub fn unfinished(&self) -> Vec<&JournalRecord> {
        let done: std::collections::HashSet<u64> = self
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Finished { record } => Some(record.job),
                _ => None,
            })
            .collect();
        self.records
            .iter()
            .filter(|r| matches!(r, JournalRecord::Accepted { .. }) && !done.contains(&r.job()))
            .collect()
    }

    /// The highest job id seen (0 when the journal is empty); the daemon
    /// resumes its id counter above this.
    pub fn max_job_id(&self) -> u64 {
        self.records
            .iter()
            .map(JournalRecord::job)
            .max()
            .unwrap_or(0)
    }
}

/// An append-only, checksummed record log with torn-tail recovery.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replays every
    /// intact record, truncates any torn tail, and returns the journal
    /// positioned for appends plus what the replay found.
    ///
    /// # Errors
    ///
    /// Only real I/O errors (open, read, truncate) fail; torn frames are
    /// recovered, not reported.
    pub fn open(path: &Path) -> io::Result<(Journal, JournalReplay)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, good_len) = scan(&bytes);
        let truncated = bytes.len() as u64 - good_len as u64;
        if truncated > 0 {
            file.set_len(good_len as u64)?;
            file.sync_data()?;
        }
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            JournalReplay {
                records,
                truncated_bytes: truncated,
            },
        ))
    }

    /// Appends one record and flushes it to stable storage before
    /// returning. The frame's checksum makes a crash mid-append
    /// recoverable: the next open truncates the partial frame.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures (e.g. `ENOSPC`).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        self.file.write_all(&encode_frame(record))?;
        self.file.sync_data()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scans `bytes` for intact frames; returns the decoded records and the
/// byte offset of the end of the last intact frame.
fn scan(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 12 {
        let len = u32::from_be_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        let Some(end) = offset.checked_add(12).and_then(|s| s.checked_add(len)) else {
            break;
        };
        if end > bytes.len() {
            break; // partial payload: torn tail
        }
        let expected = u64::from_be_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
            bytes[offset + 8],
            bytes[offset + 9],
            bytes[offset + 10],
            bytes[offset + 11],
        ]);
        let payload = &bytes[offset + 12..end];
        if fnv1a64(payload) != expected {
            break; // checksum mismatch: torn tail
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Some(record) = parse(text)
            .ok()
            .and_then(|json| JournalRecord::from_json(&json))
        else {
            break;
        };
        records.push(record);
        offset = end;
    }
    (records, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "muml-journal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sample_records() -> Vec<JournalRecord> {
        let request = JobRequest::new(7, "railcab/faulty")
            .with_scenario("railcab-convoy")
            .with_variant("faulty")
            .with_max_iterations(64);
        vec![
            JournalRecord::Accepted {
                job: 1,
                client: 3,
                priority: Priority::High,
                request: request.clone(),
            },
            JournalRecord::Started { job: 1 },
            JournalRecord::Finished {
                record: VerdictRecord {
                    job: 1,
                    request,
                    outcome: "proven".to_owned(),
                    property: None,
                    iterations: 12,
                    nanos: 987_654,
                    attempts: 1,
                },
            },
            JournalRecord::Accepted {
                job: 2,
                client: 3,
                priority: Priority::Normal,
                request: JobRequest::new(8, "railcab/nominal").with_scenario("railcab-convoy"),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_json() {
        for record in sample_records() {
            let json = record.to_json();
            let back = JournalRecord::from_json(&json).expect("decodes");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn append_then_open_replays_in_order() {
        let dir = tmpdir("replay");
        let path = dir.join("serve.journal");
        {
            let (mut journal, replay) = Journal::open(&path).expect("open fresh");
            assert!(replay.records.is_empty());
            assert_eq!(replay.truncated_bytes, 0);
            for record in sample_records() {
                journal.append(&record).expect("append");
            }
        }
        let (_, replay) = Journal::open(&path).expect("reopen");
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.finished().len(), 1);
        let unfinished = replay.unfinished();
        assert_eq!(unfinished.len(), 1);
        assert_eq!(unfinished[0].job(), 2);
        assert_eq!(replay.max_job_id(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        // Write the full journal once to learn its byte length, then for
        // every possible truncation point check that reopen recovers the
        // longest intact prefix and physically truncates the file.
        let dir = tmpdir("torn");
        let full_path = dir.join("full.journal");
        {
            let (mut journal, _) = Journal::open(&full_path).expect("open");
            for record in sample_records() {
                journal.append(&record).expect("append");
            }
        }
        let full = std::fs::read(&full_path).expect("read full journal");
        // Frame boundaries: scan the intact file.
        let (all, good_len) = scan(&full);
        assert_eq!(all.len(), 4);
        assert_eq!(good_len, full.len());

        for cut in 0..full.len() {
            let path = dir.join(format!("cut-{cut}.journal"));
            std::fs::write(&path, &full[..cut]).expect("write prefix");
            let (_, replay) = Journal::open(&path).expect("open torn");
            let (expect_records, expect_len) = scan(&full[..cut]);
            assert_eq!(replay.records, expect_records, "cut at {cut}");
            assert_eq!(
                replay.truncated_bytes,
                (cut - expect_len) as u64,
                "cut at {cut}"
            );
            // The file itself was truncated back to the good prefix.
            assert_eq!(
                std::fs::metadata(&path).expect("stat").len(),
                expect_len as u64,
                "cut at {cut}"
            );
            // Reopening after recovery is clean.
            let (_, again) = Journal::open(&path).expect("reopen recovered");
            assert_eq!(again.truncated_bytes, 0, "cut at {cut}");
            assert_eq!(again.records, expect_records, "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_byte_stops_replay_at_the_frame_before() {
        let dir = tmpdir("corrupt");
        let path = dir.join("serve.journal");
        {
            let (mut journal, _) = Journal::open(&path).expect("open");
            for record in sample_records() {
                journal.append(&record).expect("append");
            }
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a byte inside the *last* frame's payload: checksum must
        // catch it and recovery must keep the first three records.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let (_, replay) = Journal::open(&path).expect("open corrupted");
        assert_eq!(replay.records.len(), 3);
        assert!(replay.truncated_bytes > 0);
    }

    #[test]
    fn appends_resume_after_recovery() {
        let dir = tmpdir("resume");
        let path = dir.join("serve.journal");
        let records = sample_records();
        {
            let (mut journal, _) = Journal::open(&path).expect("open");
            journal.append(&records[0]).expect("append");
            journal.append(&records[1]).expect("append");
        }
        // Tear the second frame.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear");
        {
            let (mut journal, replay) = Journal::open(&path).expect("recover");
            assert_eq!(replay.records.len(), 1);
            journal.append(&records[2]).expect("append after recovery");
        }
        let (_, replay) = Journal::open(&path).expect("final open");
        assert_eq!(replay.records, vec![records[0].clone(), records[2].clone()]);
    }
}
