//! The unified, wire-encodable client-facing error type.
//!
//! Every failure a client can observe — framing, admission, scheduling,
//! resolution, session — is one [`ServeError`] with a *stable string code*
//! ([`ServeError::code`]): clients dispatch on the code, humans read the
//! rendered message, and neither breaks when a variant gains a field
//! (the enum is `#[non_exhaustive]`). Internal error types
//! ([`muml_core::CoreError`], [`muml_fleet::ResolveError`], I/O) are
//! *mapped*, not stringified ad hoc, so the code set is closed and
//! documented here.

use std::fmt;

use muml_core::CoreError;
use muml_fleet::ResolveError;
use muml_obs::json::Json;

/// A client-facing error with a stable wire code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The frame's `"v"` tag names a protocol version this daemon does
    /// not speak.
    UnsupportedVersion {
        /// The version the client sent.
        got: i64,
    },
    /// The frame's `"method"` is not one this daemon knows. Answered with
    /// a typed error (not a disconnect) so old servers degrade gracefully
    /// under new clients.
    UnknownMethod {
        /// The unrecognised method name.
        method: String,
    },
    /// The frame was valid JSON but structurally not a request (missing
    /// fields, wrong types, undecodable job request).
    Malformed {
        /// What failed to decode.
        detail: String,
    },
    /// The frame's length prefix exceeds the daemon's frame cap. The
    /// daemon skips the payload and keeps the connection.
    OversizedFrame {
        /// The declared payload length.
        length: usize,
        /// The daemon's cap.
        max: usize,
    },
    /// The submitted request names a scenario with no registered resolver.
    UnknownScenario {
        /// The unresolvable scenario label.
        scenario: String,
    },
    /// The scenario's resolver rejected the request coordinates.
    InvalidRequest {
        /// What the resolver objected to.
        detail: String,
    },
    /// Admission control: the daemon-wide pending-job limit is reached.
    /// Back off and resubmit; the daemon never blocks a submission.
    QueueFull {
        /// Jobs currently pending or running.
        pending: usize,
        /// The admission limit.
        limit: usize,
    },
    /// Admission control: this client's pending-job limit is reached,
    /// protecting other clients' share of the queue.
    ClientLimit {
        /// This client's pending jobs.
        pending: usize,
        /// The per-client limit.
        limit: usize,
    },
    /// The job id is not (or no longer) known to the daemon.
    UnknownJob {
        /// The unknown job id.
        job: u64,
    },
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
    /// The job's session failed. `code` is a stable sub-code naming the
    /// [`CoreError`] variant; `message` is its rendering.
    Session {
        /// Stable sub-code (`cancelled`, `iteration-limit`, …).
        code: String,
        /// Human-readable rendering of the underlying error.
        message: String,
    },
    /// The transport failed (connection reset, short write, …). Produced
    /// client-side; a daemon never sends this.
    Transport {
        /// The I/O failure, rendered.
        detail: String,
    },
}

impl ServeError {
    /// The stable wire code — the only thing clients should dispatch on.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnsupportedVersion { .. } => "unsupported-version",
            ServeError::UnknownMethod { .. } => "unknown-method",
            ServeError::Malformed { .. } => "malformed-request",
            ServeError::OversizedFrame { .. } => "oversized-frame",
            ServeError::UnknownScenario { .. } => "unknown-scenario",
            ServeError::InvalidRequest { .. } => "invalid-request",
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::ClientLimit { .. } => "client-limit",
            ServeError::UnknownJob { .. } => "unknown-job",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Session { .. } => "session-error",
            ServeError::Transport { .. } => "transport",
        }
    }

    /// The wire encoding: `{"code": ..., "message": ..., <fields>}`.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("code".to_owned(), Json::Str(self.code().to_owned())),
            ("message".to_owned(), Json::Str(self.to_string())),
        ];
        match self {
            ServeError::UnsupportedVersion { got } => {
                obj.push(("got".to_owned(), Json::Int(*got)));
            }
            ServeError::UnknownMethod { method } => {
                obj.push(("method".to_owned(), Json::Str(method.clone())));
            }
            ServeError::Malformed { detail }
            | ServeError::InvalidRequest { detail }
            | ServeError::Transport { detail } => {
                obj.push(("detail".to_owned(), Json::Str(detail.clone())));
            }
            ServeError::OversizedFrame { length, max } => {
                obj.push(("length".to_owned(), Json::from_usize(*length)));
                obj.push(("max".to_owned(), Json::from_usize(*max)));
            }
            ServeError::UnknownScenario { scenario } => {
                obj.push(("scenario".to_owned(), Json::Str(scenario.clone())));
            }
            ServeError::QueueFull { pending, limit }
            | ServeError::ClientLimit { pending, limit } => {
                obj.push(("pending".to_owned(), Json::from_usize(*pending)));
                obj.push(("limit".to_owned(), Json::from_usize(*limit)));
            }
            ServeError::UnknownJob { job } => {
                obj.push(("job".to_owned(), Json::from_u64(*job)));
            }
            ServeError::ShuttingDown => {}
            ServeError::Session { code, message } => {
                obj.push(("session_code".to_owned(), Json::Str(code.clone())));
                obj.push(("session_message".to_owned(), Json::Str(message.clone())));
            }
        }
        Json::Object(obj)
    }

    /// Decodes the wire encoding produced by [`ServeError::to_json`].
    /// Unknown codes decode to [`ServeError::Malformed`] rather than
    /// failing, so a newer server's errors still surface client-side.
    pub fn from_json(json: &Json) -> ServeError {
        let code = json.get("code").and_then(Json::as_str).unwrap_or("");
        let detail = || {
            json.get("detail")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned()
        };
        let count = |key: &str| {
            json.get(key)
                .and_then(Json::as_int)
                .and_then(|v| usize::try_from(v).ok())
                .unwrap_or(0)
        };
        match code {
            "unsupported-version" => ServeError::UnsupportedVersion {
                got: json.get("got").and_then(Json::as_int).unwrap_or(-1),
            },
            "unknown-method" => ServeError::UnknownMethod {
                method: json
                    .get("method")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            },
            "malformed-request" => ServeError::Malformed { detail: detail() },
            "oversized-frame" => ServeError::OversizedFrame {
                length: count("length"),
                max: count("max"),
            },
            "unknown-scenario" => ServeError::UnknownScenario {
                scenario: json
                    .get("scenario")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            },
            "invalid-request" => ServeError::InvalidRequest { detail: detail() },
            "queue-full" => ServeError::QueueFull {
                pending: count("pending"),
                limit: count("limit"),
            },
            "client-limit" => ServeError::ClientLimit {
                pending: count("pending"),
                limit: count("limit"),
            },
            "unknown-job" => ServeError::UnknownJob {
                job: json
                    .get("job")
                    .and_then(Json::as_int)
                    .and_then(|v| u64::try_from(v).ok())
                    .unwrap_or(0),
            },
            "shutting-down" => ServeError::ShuttingDown,
            "session-error" => ServeError::Session {
                code: json
                    .get("session_code")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
                message: json
                    .get("session_message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            },
            "transport" => ServeError::Transport { detail: detail() },
            other => ServeError::Malformed {
                detail: format!("unknown error code `{other}`"),
            },
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got}")
            }
            ServeError::UnknownMethod { method } => write!(f, "unknown method `{method}`"),
            ServeError::Malformed { detail } => write!(f, "malformed request: {detail}"),
            ServeError::OversizedFrame { length, max } => {
                write!(f, "frame of {length} bytes exceeds the {max}-byte cap")
            }
            ServeError::UnknownScenario { scenario } => {
                write!(f, "no resolver registered for scenario `{scenario}`")
            }
            ServeError::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            ServeError::QueueFull { pending, limit } => {
                write!(f, "admission limit reached: {pending}/{limit} jobs pending")
            }
            ServeError::ClientLimit { pending, limit } => write!(
                f,
                "per-client admission limit reached: {pending}/{limit} jobs pending"
            ),
            ServeError::UnknownJob { job } => write!(f, "unknown job {job}"),
            ServeError::ShuttingDown => write!(f, "daemon is shutting down"),
            ServeError::Session { code, message } => {
                write!(f, "session failed ({code}): {message}")
            }
            ServeError::Transport { detail } => write!(f, "transport failure: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ResolveError> for ServeError {
    fn from(e: ResolveError) -> Self {
        match e {
            ResolveError::UnknownScenario { scenario } => ServeError::UnknownScenario { scenario },
            ResolveError::Invalid { detail } => ServeError::InvalidRequest { detail },
            ResolveError::Malformed { detail } => ServeError::Malformed { detail },
            other => ServeError::InvalidRequest {
                detail: other.to_string(),
            },
        }
    }
}

impl From<&CoreError> for ServeError {
    fn from(e: &CoreError) -> Self {
        let code = match e {
            CoreError::NotCompositional { .. } => "not-compositional",
            CoreError::IterationLimit(_) => "iteration-limit",
            CoreError::Nondeterministic { .. } => "nondeterministic",
            CoreError::Learning(_) => "learning",
            CoreError::Automata(_) => "automata",
            CoreError::Logic(_) => "logic",
            CoreError::InterfaceMismatch { .. } => "interface-mismatch",
            CoreError::Cancelled { .. } => "cancelled",
            _ => "core",
        };
        ServeError::Session {
            code: code.to_owned(),
            message: e.to_string(),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Transport {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ServeError> {
        vec![
            ServeError::UnsupportedVersion { got: 9 },
            ServeError::UnknownMethod {
                method: "frobnicate".into(),
            },
            ServeError::Malformed {
                detail: "missing `method`".into(),
            },
            ServeError::OversizedFrame {
                length: 2_000_000,
                max: 1_048_576,
            },
            ServeError::UnknownScenario {
                scenario: "warehouse".into(),
            },
            ServeError::InvalidRequest {
                detail: "unknown variant `wobbly`".into(),
            },
            ServeError::QueueFull {
                pending: 256,
                limit: 256,
            },
            ServeError::ClientLimit {
                pending: 64,
                limit: 64,
            },
            ServeError::UnknownJob { job: 41 },
            ServeError::ShuttingDown,
            ServeError::Session {
                code: "cancelled".into(),
                message: "run cancelled after 3 iterations".into(),
            },
            ServeError::Transport {
                detail: "connection reset".into(),
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_with_a_distinct_code() {
        let variants = all_variants();
        let mut codes: Vec<&str> = variants.iter().map(ServeError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len(), "codes must be distinct");
        for error in variants {
            let encoded = error.to_json();
            // Every encoding carries a code and a human-readable message.
            assert!(encoded.get("code").is_some());
            assert!(encoded.get("message").and_then(Json::as_str).is_some());
            let decoded = ServeError::from_json(&encoded);
            assert_eq!(decoded, error, "round trip of {}", error.code());
        }
    }

    #[test]
    fn unknown_codes_degrade_to_malformed() {
        let alien = Json::Object(vec![(
            "code".to_owned(),
            Json::Str("from-the-future".into()),
        )]);
        match ServeError::from_json(&alien) {
            ServeError::Malformed { detail } => {
                assert!(detail.contains("from-the-future"), "{detail}")
            }
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn core_errors_map_to_stable_session_codes() {
        let cancelled = ServeError::from(&CoreError::Cancelled { iterations: 5 });
        match &cancelled {
            ServeError::Session { code, message } => {
                assert_eq!(code, "cancelled");
                assert!(message.contains("5 iterations"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        let cap = ServeError::from(&CoreError::IterationLimit(12));
        assert!(matches!(
            &cap,
            ServeError::Session { code, .. } if code == "iteration-limit"
        ));
        assert_eq!(cap.code(), "session-error");
    }

    #[test]
    fn resolve_errors_map_to_admission_codes() {
        let unknown: ServeError = ResolveError::UnknownScenario {
            scenario: "warehouse".into(),
        }
        .into();
        assert_eq!(unknown.code(), "unknown-scenario");
        let invalid: ServeError = ResolveError::Invalid {
            detail: "bad variant".into(),
        }
        .into();
        assert_eq!(invalid.code(), "invalid-request");
    }
}
