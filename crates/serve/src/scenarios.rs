//! Built-in scenario resolvers.
//!
//! The daemon side of the wire split: a client ships a pure-data
//! [`JobRequest`], and the registry built here re-attaches the executable
//! half — building the universe, context automaton, and (possibly
//! fault-injected) legacy component *inside the worker thread*, exactly as
//! `muml_bench::campaign` used to do inline. Resolution validates the
//! request's coordinates (variant, fault, pattern) upfront, so a bad
//! request is a typed rejection at submit time, not a worker panic at run
//! time.

use muml_automata::Universe;
use muml_core::store::ComponentSignature;
use muml_core::{IntegrationConfig, IntegrationSession, LegacyUnit};
use muml_fleet::{JobRegistry, JobRequest, JobWork, ResolveError};
use muml_legacy::{fault_matrix, inject, LatentComponent};
use muml_railcab::{front_context, shuttle_variants};

/// Scenario label of the RailCab convoy-coordination campaign.
pub const RAILCAB_SCENARIO: &str = "railcab-convoy";
/// Pattern label of the RailCab campaign.
pub const RAILCAB_PATTERN: &str = "DistanceCoordination";

/// A registry with every built-in scenario registered (currently the
/// RailCab convoy scenario under [`RAILCAB_SCENARIO`]).
pub fn railcab_registry() -> JobRegistry {
    let mut registry = JobRegistry::new();
    registry.register(RAILCAB_SCENARIO, resolve_railcab);
    registry
}

fn resolve_railcab(request: &JobRequest) -> Result<JobWork, ResolveError> {
    if !request.pattern.is_empty() && request.pattern != RAILCAB_PATTERN {
        return Err(ResolveError::Invalid {
            detail: format!(
                "scenario `{RAILCAB_SCENARIO}` checks pattern `{RAILCAB_PATTERN}`, \
                 not `{}`",
                request.pattern
            ),
        });
    }
    let variant = *shuttle_variants()
        .iter()
        .find(|v| v.name == request.variant)
        .ok_or_else(|| ResolveError::Invalid {
            detail: format!("unknown shuttle variant `{}`", request.variant),
        })?;
    // Faults carry state/signal *names*, so one resolved against a
    // throwaway universe re-resolves cleanly inside the worker's own.
    let fault = match &request.fault {
        None => None,
        Some(name) => {
            let u = Universe::new();
            let matrix = fault_matrix(&(variant.build)(&u), &u);
            Some(
                matrix
                    .into_iter()
                    .find(|f| f.describe() == *name)
                    .ok_or_else(|| ResolveError::Invalid {
                        detail: format!("unknown fault `{name}` for variant `{}`", request.variant),
                    })?,
            )
        }
    };
    let latency = request.latency;
    let max_iterations = request.max_iterations;
    let trace_cache = request.trace_cache;
    let test_parallelism = request.test_parallelism;
    let build = variant.build;
    Ok(Box::new(move |ctx| {
        let u = Universe::new();
        let context = front_context(&u);
        let mut shuttle = build(&u);
        if let Some(f) = &fault {
            inject(&mut shuttle, &u, f)?;
        }
        // Signed *after* fault injection: the fingerprint keys the actual
        // rule set under test, so each fault cell gets its own snapshot.
        let signature = ComponentSignature::of_component(&shuttle, &u);
        let mut component = LatentComponent::new(shuttle, latency);
        let mut loop_sink = ctx.loop_sink.clone();
        let mut config = IntegrationConfig::default()
            .with_max_iterations(max_iterations)
            .with_trace_cache(trace_cache)
            .with_test_parallelism(test_parallelism);
        let mut unit = LegacyUnit::new(&mut component, muml_railcab::scenario::rear_port_map(&u));
        if let Some(store) = &ctx.store {
            config = config.with_shared_store(std::sync::Arc::clone(store));
            unit = unit.with_signature(signature);
        }
        let mut session = IntegrationSession::new(&u, &context)
            .formula(muml_railcab::scenario::pattern_constraint(&u))
            .unit(unit)
            .config(config)
            .cancel_token(ctx.cancel.clone());
        if let Some(sink) = loop_sink.as_mut() {
            session = session.sink(sink);
        }
        session.run()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use muml_fleet::JobContext;
    use std::time::Duration;

    fn baseline(variant: &str) -> JobRequest {
        JobRequest::new(0, format!("{variant}/baseline"))
            .with_scenario(RAILCAB_SCENARIO)
            .with_pattern(RAILCAB_PATTERN)
            .with_variant(variant)
            .with_max_iterations(10_000)
            .with_latency(Duration::ZERO)
    }

    #[test]
    fn resolves_and_runs_a_baseline_request() {
        let registry = railcab_registry();
        assert_eq!(registry.scenarios(), [RAILCAB_SCENARIO]);
        let job = registry.resolve(&baseline("correct")).unwrap();
        let report = (job.work)(&JobContext::default()).unwrap();
        assert!(matches!(
            report.verdict,
            muml_core::IntegrationVerdict::Proven
        ));
    }

    #[test]
    fn trace_cache_and_parallelism_knobs_thread_through() {
        let registry = railcab_registry();
        let uncached = registry
            .resolve(&baseline("correct").with_trace_cache(false))
            .unwrap();
        let uncached_report = (uncached.work)(&JobContext::default()).unwrap();
        assert!(matches!(
            uncached_report.verdict,
            muml_core::IntegrationVerdict::Proven
        ));
        assert_eq!(uncached_report.stats.trace_cache_hits, 0);

        let cached = registry
            .resolve(&baseline("correct").with_test_parallelism(4))
            .unwrap();
        let cached_report = (cached.work)(&JobContext::default()).unwrap();
        assert!(matches!(
            cached_report.verdict,
            muml_core::IntegrationVerdict::Proven
        ));
        assert!(
            cached_report.stats.driven_steps <= uncached_report.stats.driven_steps,
            "cache must not drive more rig steps ({} > {})",
            cached_report.stats.driven_steps,
            uncached_report.stats.driven_steps,
        );
    }

    #[test]
    fn rejects_unknown_coordinates_with_typed_errors() {
        let registry = railcab_registry();
        let bad_variant = registry.resolve(&baseline("hovercraft")).unwrap_err();
        assert!(matches!(bad_variant, ResolveError::Invalid { .. }));
        assert!(bad_variant.to_string().contains("hovercraft"));

        let bad_fault = registry
            .resolve(&baseline("correct").with_fault("melt[reactor]"))
            .unwrap_err();
        assert!(bad_fault.to_string().contains("melt[reactor]"));

        let bad_pattern = registry
            .resolve(&baseline("correct").with_pattern("Telephone"))
            .unwrap_err();
        assert!(bad_pattern.to_string().contains("Telephone"));

        let bad_scenario = registry
            .resolve(&baseline("correct").with_scenario("warehouse"))
            .unwrap_err();
        assert!(matches!(bad_scenario, ResolveError::UnknownScenario { .. }));
    }

    #[test]
    fn known_faults_resolve() {
        let u = Universe::new();
        let variant = shuttle_variants()
            .iter()
            .find(|v| v.name == "correct")
            .unwrap();
        let faults = fault_matrix(&(variant.build)(&u), &u);
        assert!(!faults.is_empty());
        let registry = railcab_registry();
        let request = baseline("correct").with_fault(faults[0].describe());
        registry.resolve(&request).unwrap();
    }
}
